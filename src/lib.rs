//! # nbb — *No Bits Left Behind* (CIDR 2011) in Rust
//!
//! A from-scratch reproduction of Wu, Curino & Madden's CIDR 2011 vision
//! paper: reclaiming the three classes of waste in database systems.
//!
//! | Waste class | Technique | Entry point |
//! |-------------|-----------|-------------|
//! | Unused space (§2) | B+Tree index caches in leaf free space | [`btree::BTree::lookup_cached`] |
//! | Locality (§3) | Hot/cold clustering & partitioning | [`partition::cluster_hot_tuples`], [`partition::HotColdStore`] |
//! | Encoding (§4) | Schema-as-hint optimization, semantic IDs | [`encoding::analyze_table`], [`encoding::SemanticIdLayout`] |
//!
//! The crates re-exported here are usable independently:
//!
//! * [`storage`] — pages, heaps, disks (with latency models), and a
//!   **lock-striped buffer pool**: page ids hash to independent shards,
//!   each with its own frame table, free list, clock hand, and padded
//!   atomic counters, so concurrent readers contend only on stripe
//!   collisions;
//! * [`btree`] — the Figure-1 B+Tree with the index cache; one
//!   tree-level `RwLock` (whose value is the root) lets lookups share
//!   the read side while splits hold the write side;
//! * [`encoding`] — §4 codecs, analyzer, semantic ids;
//! * [`partition`] — §3 trackers, policies, clustering, vertical splits;
//! * [`workload`] — zipfian samplers and the synthetic Wikipedia;
//! * [`core`] — the table/database facade (with the `pool_shards` knob)
//!   and the waste audit.
//!
//! ## Concurrency model
//!
//! Read paths are designed to run in parallel: `Table::project_via_index`
//! takes a tree-level read lock, descends to a leaf, and touches pages
//! through per-shard pool mutexes and per-frame latches; index→heap
//! pointer chases re-verify the fetched tuple's key so racing deletes
//! read as "gone" instead of serving foreign bytes. Write paths are
//! concurrent too: disjoint-key writers crab through striped per-leaf
//! latches (only splits escalate to the exclusive structure lock), and
//! **same-key writers serialize through key-level write intents** —
//! each put/update/delete installs an intent on the keys it addresses
//! and racing writers park on it with a pre-granted handoff, making
//! per-key writes through one index linearizable end to end. The
//! `tests/concurrent_access.rs` stress test pins down the
//! reader/writer contract (no lost invalidations, cache answers always
//! match the heap), and `tests/same_key_storms.rs` pins the writer
//! contract (zero aborted ops, one winner per racing delete, a
//! consistent final row).
//!
//! See `examples/quickstart.rs` for a 5-minute tour, and the `nbb-bench`
//! crate for the binaries that regenerate every figure in the paper
//! (plus `benches/concurrent_reads.rs` for the sharding scaling curves).

pub use nbb_btree as btree;
pub use nbb_core as core;
pub use nbb_encoding as encoding;
pub use nbb_partition as partition;
pub use nbb_storage as storage;
pub use nbb_workload as workload;
