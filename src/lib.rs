//! # nbb — *No Bits Left Behind* (CIDR 2011) in Rust
//!
//! A from-scratch reproduction of Wu, Curino & Madden's CIDR 2011 vision
//! paper: reclaiming the three classes of waste in database systems.
//!
//! | Waste class | Technique | Entry point |
//! |-------------|-----------|-------------|
//! | Unused space (§2) | B+Tree index caches in leaf free space | [`btree::BTree::lookup_cached`] |
//! | Locality (§3) | Hot/cold clustering & partitioning | [`partition::cluster_hot_tuples`], [`partition::HotColdStore`] |
//! | Encoding (§4) | Schema-as-hint optimization, semantic IDs | [`encoding::analyze_table`], [`encoding::SemanticIdLayout`] |
//!
//! The crates re-exported here are usable independently:
//!
//! * [`storage`] — pages, heaps, buffer pool, disks (with latency models);
//! * [`btree`] — the Figure-1 B+Tree with the index cache;
//! * [`encoding`] — §4 codecs, analyzer, semantic ids;
//! * [`partition`] — §3 trackers, policies, clustering, vertical splits;
//! * [`workload`] — zipfian samplers and the synthetic Wikipedia;
//! * [`core`] — the table/database facade and the waste audit.
//!
//! See `examples/quickstart.rs` for a 5-minute tour, and the `nbb-bench`
//! crate for the binaries that regenerate every figure in the paper.

pub use nbb_btree as btree;
pub use nbb_core as core;
pub use nbb_encoding as encoding;
pub use nbb_partition as partition;
pub use nbb_storage as storage;
pub use nbb_workload as workload;
