//! `nbb-audit` — the waste-detection tool the paper's §1 envisions,
//! runnable against a demo database built from the synthetic Wikipedia.
//!
//! ```sh
//! cargo run --release --bin nbb-audit -- [pages] [revs_per_page] [seed]
//! ```
//!
//! Builds the page + revision tables, runs a short mixed workload, and
//! prints one combined audit per table covering all three waste
//! classes (unused space, locality, encoding), plus the recommended
//! fixes and their projected savings.

use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec};
use nbb::core::waste;
use nbb::encoding::{ColumnDef, DeclaredType, Schema, Value};
use nbb::storage::RecordId;
use nbb::workload::{RevisionRow, WikiGenerator, REVISION_ROW_WIDTH};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_pages: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1_000);
    let revs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2011);
    println!("nbb-audit: {n_pages} pages x ~{revs} revisions (seed {seed})\n");

    let db = Database::open(DbConfig::default());
    let mut gen = WikiGenerator::new(seed);
    let mut pages = gen.pages(n_pages);
    let revisions = gen.revisions(&mut pages, revs);

    // revision table: keyed by big-endian rev_id, caching rev_page.
    let rev_t = db.create_table("revision", REVISION_ROW_WIDTH).expect("table");
    for r in &revisions {
        let mut row = r.encode();
        row[..8].copy_from_slice(&r.id.to_be_bytes());
        rev_t.insert(&row).expect("insert");
    }
    rev_t
        .create_index(IndexSpec::cached(
            "by_rev_id",
            FieldSpec::new(0, 8),
            vec![FieldSpec::new(8, 8)],
        ))
        .expect("index");

    // Warm the system with the hot-set workload so the audit sees
    // realistic cache occupancy.
    let idx = rev_t.index_tree("by_rev_id").expect("index handle");
    let mut hot_rids = Vec::new();
    for p in &pages {
        let key = p.latest_rev.to_be_bytes();
        rev_t.project_via_index("by_rev_id", &key).expect("query");
        rev_t.project_via_index("by_rev_id", &key).expect("query");
        let ptr = idx.tree().get(&key).expect("get").expect("hot indexed");
        hot_rids.push(RecordId::from_u64(ptr));
    }

    // Encoding audit decodes the stored tuples back to logical values.
    let schema = Schema {
        table: "revision".into(),
        columns: vec![
            ColumnDef::new("rev_id", DeclaredType::Int64),
            ColumnDef::new("rev_page", DeclaredType::Int64),
            ColumnDef::new("rev_text_id", DeclaredType::Int64),
            ColumnDef::new("rev_comment", DeclaredType::Str { width: 40 }),
            ColumnDef::new("rev_user", DeclaredType::Int64),
            ColumnDef::new("rev_timestamp", DeclaredType::Str { width: 14 }),
            ColumnDef::new("rev_minor_edit", DeclaredType::Bool),
            ColumnDef::new("rev_deleted", DeclaredType::Bool),
            ColumnDef::new("rev_len", DeclaredType::Int64),
            ColumnDef::new("rev_parent_id", DeclaredType::Int64),
        ],
    };
    let decode: &dyn Fn(&[u8]) -> Vec<Value> = &|b: &[u8]| {
        // The key prefix is big-endian; restore for decoding.
        let mut row = b.to_vec();
        let id = u64::from_be_bytes(b[..8].try_into().expect("key"));
        row[..8].copy_from_slice(&id.to_le_bytes());
        let r = RevisionRow::decode(&row).expect("stored row decodes");
        vec![
            Value::Int(r.id as i64),
            Value::Int(r.page_id as i64),
            Value::Int(r.text_id as i64),
            Value::Str(r.comment),
            Value::Int(r.user as i64),
            Value::Str(r.timestamp),
            Value::Bool(r.minor_edit),
            Value::Bool(r.deleted),
            Value::Int(r.len as i64),
            Value::Int(r.parent_id as i64),
        ]
    };

    let report =
        waste::audit(&rev_t, &["by_rev_id"], Some(&hot_rids), Some((&schema, decode, 10_000)))
            .expect("audit");
    print!("{}", report.render());

    // Recommendations, in the paper's three categories.
    println!("\nrecommendations:");
    let loc = report.locality.as_ref().expect("locality audited");
    if loc.hot_per_page < 3.0 {
        println!(
            "  [locality] hot tuples average {:.2}/page over {} pages: cluster them \
             (Table::relocate) or split a hot partition (HotColdStore) — see example \
             hot_cold_revisions",
            loc.hot_per_page, loc.pages_with_hot
        );
    }
    let idx_rep = &report.unused.indexes[0];
    println!(
        "  [unused space] index '{}' holds {} free bytes; the cache is using {}/{} slots \
         ({:.0}%) — free capacity for {} more cached tuples at zero I/O cost",
        idx_rep.name,
        idx_rep.free_bytes,
        idx_rep.cache_occupied,
        idx_rep.cache_slots,
        idx_rep.cache_occupied as f64 * 100.0 / idx_rep.cache_slots.max(1) as f64,
        idx_rep.cache_slots - idx_rep.cache_occupied,
    );
    let enc = report.encoding.as_ref().expect("encoding audited");
    let mut worst: Vec<_> = enc.columns.iter().collect();
    worst.sort_by(|a, b| b.bytes_saved().total_cmp(&a.bytes_saved()));
    for c in worst.iter().take(3) {
        println!(
            "  [encoding] column '{}': {} ({:.0}% waste, {:.1} KB recoverable)",
            c.name,
            c.reason,
            c.waste_fraction() * 100.0,
            c.bytes_saved() / 1024.0
        );
    }
    println!(
        "\ntotal encoding waste: {:.1}% ({:.1} KB -> {:.1} KB)",
        enc.waste_fraction() * 100.0,
        enc.declared_bytes() / 1024.0,
        enc.optimized_bytes() / 1024.0
    );
}
