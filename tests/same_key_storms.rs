//! Same-key writer storms: the key-level write-intent contract, end to
//! end through the table layer.
//!
//! What PR 3/4 left racy — N writers hammering *one* key interleaving
//! their index→heap→index sequences — is now serialized by write
//! intents ([`nbb::btree::KeyIntents`]): the first writer installs an
//! intent, racing writers park on it and resume via pre-granted
//! handoff. These tests pin the contract from the public API:
//!
//! * **zero aborted or dropped ops** — every storm op returns `Ok`,
//!   racing deleters split into exactly one `true` and N-1 clean
//!   `false`s (the pre-intent code silently dropped losers' rows);
//! * **a consistent final row** — heap, primary and secondary indexes
//!   agree after the storm, and the row is one writer's tuple, whole;
//! * **observable contention** — `TableStats::intent_parks` /
//!   `intent_handoffs` count the serialized writers.
//!
//! The deterministic test uses the GateDisk/observed-parked technique
//! from `nbb-storage/tests/overlapped_io.rs`: the first writer blocks
//! inside a gated heap fault, the test *observes* every other writer
//! parked on the intent via the stats counter, and only then opens the
//! gate — no sleep window to lose a race against a loaded host.

use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec, Table};
use nbb::storage::disk::{DiskManager, DiskModel, InMemoryDisk, LatencyDisk};
use nbb::storage::error::Result;
use nbb::storage::stats::IoStats;
use nbb::storage::{BufferPool, Page, PageId};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};

/// Disk whose reads block at a gate until released (the overlapped_io
/// technique), so a writer can be frozen mid-heap-fault while the test
/// observes its rivals parked on the key's write intent.
struct GateDisk {
    inner: InMemoryDisk,
    reads_held: Mutex<bool>,
    cv: Condvar,
}

impl GateDisk {
    fn new(page_size: usize) -> Self {
        GateDisk {
            inner: InMemoryDisk::new(page_size),
            reads_held: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn hold_reads(&self) {
        *self.reads_held.lock() = true;
    }

    fn release_reads(&self) {
        *self.reads_held.lock() = false;
        self.cv.notify_all();
    }
}

impl DiskManager for GateDisk {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn allocate(&self) -> Result<PageId> {
        self.inner.allocate()
    }
    fn read(&self, id: PageId, buf: &mut Page) -> Result<()> {
        let mut held = self.reads_held.lock();
        while *held {
            self.cv.wait(&mut held);
        }
        drop(held);
        self.inner.read(id, buf)
    }
    fn write(&self, id: PageId, page: &Page) -> Result<()> {
        self.inner.write(id, page)
    }
    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
    fn stats(&self) -> IoStats {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

/// 24-byte tuple: key(8) | group(8) | value(8).
fn tuple(key: u64, group: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&group.to_be_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t
}

const KEY: u64 = 42;

#[test]
fn observed_parked_storm_serializes_same_key_updates() {
    const WRITERS: u64 = 6;
    let gate = Arc::new(GateDisk::new(4096));
    // write_behind = 0 so the eviction below lands on the (ungated)
    // write path and the storm's heap access must *read* through the
    // gate — freezing the intent holder mid-fault.
    let heap_pool =
        Arc::new(BufferPool::with_options(Arc::clone(&gate) as Arc<dyn DiskManager>, 4, 1, 0, 0));
    let index_disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    let index_pool = Arc::new(BufferPool::new(index_disk, 64));
    let t = Table::create("t", 24, heap_pool, index_pool).unwrap();
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    let rid = t.insert(&tuple(KEY, 0, 0)).unwrap();
    // Force the row's heap page cold, then gate the re-read: the first
    // storm writer blocks inside its heap fault *while holding the
    // key's intent*.
    t.heap().pool().evict_page(rid.page).unwrap();
    gate.hold_reads();

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let t = &t;
            s.spawn(move || {
                let pk = t.index("pk").unwrap();
                let updated = pk.update(&KEY.to_be_bytes(), &tuple(KEY, w, w + 100)).unwrap();
                assert!(updated, "writer {w}: the row exists throughout, every update lands");
            });
        }
        // Deterministic, no sleeps: writers register their park before
        // waiting, so once the counter reads N-1 every rival is
        // provably parked on the held intent.
        while t.stats().intent_parks < WRITERS - 1 {
            std::thread::yield_now();
        }
        gate.release_reads();
    });

    let s = t.stats();
    assert_eq!(s.updates, WRITERS, "zero dropped ops: every writer updated the row");
    assert_eq!(s.intent_parks, WRITERS - 1, "every rival parked exactly once");
    assert_eq!(s.intent_handoffs, WRITERS - 1, "every release handed the key to a parked rival");
    // Final row is one writer's tuple, whole (no torn interleaving).
    let row = t.get_via_index("pk", &KEY.to_be_bytes()).unwrap().expect("row survives");
    let w = u64::from_be_bytes(row[8..16].try_into().unwrap());
    assert!(w < WRITERS);
    assert_eq!(row, tuple(KEY, w, w + 100), "row must be exactly one writer's tuple");
    assert!(t.index_tree("pk").unwrap().tree().intents().is_idle(), "no leaked intents");
}

#[test]
fn racing_deleters_split_one_true_rest_false() {
    const DELETERS: usize = 8;
    const ROUNDS: usize = 40;
    let db = Database::open(DbConfig {
        page_size: 4096,
        heap_frames: 32,
        index_frames: 32,
        ..DbConfig::default()
    });
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::plain("pk", FieldSpec::new(0, 8))).unwrap();
    t.create_index(IndexSpec::plain("by_group", FieldSpec::new(8, 8))).unwrap();

    let wins = AtomicU64::new(0);
    for round in 0..ROUNDS {
        t.insert(&tuple(KEY, round as u64, 7)).unwrap();
        let barrier = Barrier::new(DELETERS);
        std::thread::scope(|s| {
            for _ in 0..DELETERS {
                let t = &t;
                let barrier = &barrier;
                let wins = &wins;
                s.spawn(move || {
                    let pk = t.index("pk").unwrap();
                    barrier.wait();
                    // The tentpole contract: a losing deleter gets a
                    // clean `false` (it observed the winner's completed
                    // delete), never an error, never a half-deleted row.
                    if pk.delete(&KEY.to_be_bytes()).unwrap() {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            wins.swap(0, Ordering::Relaxed),
            1,
            "round {round}: exactly one racing deleter wins"
        );
        assert!(t.get_via_index("pk", &KEY.to_be_bytes()).unwrap().is_none());
        assert!(
            t.get_via_index("by_group", &(round as u64).to_be_bytes()).unwrap().is_none(),
            "round {round}: secondary index fully maintained by the winning delete"
        );
    }
    assert_eq!(t.heap().live_tuple_count().unwrap(), 0);
    // (No intent_parks floor here: over a zero-latency disk a one-core
    // host can legitimately schedule the deleters back to back. The
    // observed-parked test and the LatencyDisk storm assert contention
    // deterministically.)
    assert_eq!(t.stats().deletes, ROUNDS as u64);
}

#[test]
fn mixed_put_update_delete_storm_stays_consistent() {
    const WRITERS: u64 = 8;
    const ROUNDS: u64 = 30;
    // Io-bound regime: a blocking disk stretches every op across real
    // time, so the storm exercises park/handoff chains under load.
    let model = DiskModel { read_ns: 50_000, write_ns: 50_000 };
    let heap: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(4096, model));
    let index: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(4096, model));
    // Pools far below the working set: every storm op faults through
    // the blocking disk, so the intent holder sits in real I/O while
    // its rivals arrive — contention is structural, not a scheduling
    // accident.
    let db = Database::with_disks(
        DbConfig {
            page_size: 4096,
            heap_frames: 4,
            index_frames: 4,
            disk_model: None,
            ..DbConfig::default()
        },
        heap,
        index,
    )
    .unwrap();
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::plain("pk", FieldSpec::new(0, 8))).unwrap();
    t.create_index(IndexSpec::plain("by_group", FieldSpec::new(8, 8))).unwrap();
    // Base rows on distinct keys/groups keep the tree multi-leaf so the
    // storm's maintenance crosses real structure (and overflow the
    // 4-frame pools).
    const BASE: u64 = 256;
    for k in 0..BASE {
        t.insert(&tuple(1000 + k, 1000 + k, 0)).unwrap();
    }

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let t = &t;
            s.spawn(move || {
                let pk = t.index("pk").unwrap();
                for r in 0..ROUNDS {
                    // Every op targets the ONE hot key; groups are
                    // writer-unique so secondary maintenance is
                    // distinguishable per writer.
                    match (w + r) % 3 {
                        0 => {
                            pk.put(&tuple(KEY, w, r)).unwrap();
                        }
                        1 => {
                            // May race a delete: a clean `false` is the
                            // serialized outcome, an error is a bug.
                            pk.update(&KEY.to_be_bytes(), &tuple(KEY, w, r + 1)).unwrap();
                        }
                        _ => {
                            pk.delete(&KEY.to_be_bytes()).unwrap();
                        }
                    }
                }
            });
        }
    });

    // Consistency sweep: heap, pk, and the secondary agree exactly.
    let hot = t.get_via_index("pk", &KEY.to_be_bytes()).unwrap();
    let mut live_hot = 0u64;
    let mut heap_copy = None;
    t.scan(|_, row| {
        if u64::from_be_bytes(row[..8].try_into().unwrap()) == KEY {
            live_hot += 1;
            heap_copy = Some(row.to_vec());
        }
        true
    })
    .unwrap();
    match &hot {
        Some(row) => {
            assert_eq!(live_hot, 1, "exactly one live hot row");
            assert_eq!(heap_copy.as_ref(), Some(row), "pk and heap agree");
            let group = u64::from_be_bytes(row[8..16].try_into().unwrap());
            assert!(group < WRITERS, "row is one writer's tuple");
            assert_eq!(
                t.get_via_index("by_group", &group.to_be_bytes()).unwrap().as_ref(),
                Some(row),
                "secondary index points at the surviving row"
            );
        }
        None => assert_eq!(live_hot, 0, "deleted row must not linger in the heap"),
    }
    // No writer's secondary entry survived except (at most) the live one.
    for w in 0..WRITERS {
        let via_group = t.get_via_index("by_group", &w.to_be_bytes()).unwrap();
        if let Some(row) = via_group {
            assert_eq!(Some(row), hot, "stale secondary entry for writer {w}");
        }
    }
    assert_eq!(t.heap().live_tuple_count().unwrap() as u64, BASE + live_hot);
    let s = t.stats();
    assert!(s.intent_parks > 0, "a one-key storm must park rivals: {s:?}");
    assert_eq!(s.intent_parks, s.intent_handoffs, "every park resolves via a handoff");
    assert!(t.index_tree("pk").unwrap().tree().intents().is_idle(), "no leaked intents");
    assert!(t.index_tree("pk").unwrap().tree().check_invariants().unwrap().is_ok());
}

#[test]
fn racing_puts_leave_exactly_one_row() {
    const WRITERS: u64 = 8;
    let db = Database::open(DbConfig::default());
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::plain("pk", FieldSpec::new(0, 8))).unwrap();
    let barrier = Barrier::new(WRITERS as usize);
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let t = &t;
            let barrier = &barrier;
            s.spawn(move || {
                let pk = t.index("pk").unwrap();
                barrier.wait();
                pk.put(&tuple(KEY, w, w)).unwrap();
            });
        }
    });
    // Serialized puts: one insert, the rest in-place updates — never
    // two heap rows for one key.
    assert_eq!(t.heap().live_tuple_count().unwrap(), 1, "upsert storm must not duplicate rows");
    let row = t.get_via_index("pk", &KEY.to_be_bytes()).unwrap().unwrap();
    let w = u64::from_be_bytes(row[8..16].try_into().unwrap());
    assert_eq!(row, tuple(KEY, w, w));
    let s = t.stats();
    assert_eq!(s.inserts, 1);
    assert_eq!(s.updates, WRITERS - 1);
}
