//! Concurrency stress: N reader threads racing one writer through the
//! cached-index projection path.
//!
//! The §2.1.2 contract under test: a projection answered from the index
//! cache (`index_only`) must never be stale. Concretely, once an update
//! to key `k` has *completed*, no later-starting read of `k` may observe
//! an older version — a violation means an invalidation was lost (or a
//! stale populate won a race against the predicate log).
//!
//! The writer bumps per-key version counters (publishing a floor AFTER
//! each update completes) and churns a disjoint key range with
//! delete/re-insert cycles. Readers assert every observed payload (a)
//! belongs to the key they asked for, and (b) carries a version at least
//! the floor published before their read began.

use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec, Table};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Keys the writer updates in place.
const UPDATE_KEYS: u64 = 48;
/// Keys (above `UPDATE_KEYS`) the writer deletes and re-inserts.
const CHURN_KEYS: u64 = 32;
const WRITER_ROUNDS: u64 = 4_000;
const READER_THREADS: usize = 4;

/// 24-byte tuple: key(8) | tagged-version(8) | filler(8). The cached
/// field is the tagged version: key in the high 16 bits, version below —
/// so a reader can detect both stale values and cross-key corruption.
fn tagged(key: u64, version: u64) -> u64 {
    (key << 48) | (version & 0xFFFF_FFFF_FFFF)
}

fn tuple(key: u64, version: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&tagged(key, version).to_le_bytes());
    t.extend_from_slice(&[0u8; 8]);
    t
}

fn build(pool_shards: usize, heap_frames: usize, index_frames: usize) -> (Database, Arc<Table>) {
    let db = Database::open(DbConfig {
        page_size: 4096,
        heap_frames,
        index_frames,
        pool_shards,
        ..DbConfig::default()
    });
    let t = db.create_table("t", 24).unwrap();
    for k in 0..UPDATE_KEYS + CHURN_KEYS {
        t.insert(&tuple(k, 0)).unwrap();
    }
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
        .unwrap();
    (db, t)
}

/// Decodes a projection payload into (key_tag, version).
fn decode(payload: &[u8]) -> (u64, u64) {
    let v = u64::from_le_bytes(payload[..8].try_into().unwrap());
    (v >> 48, v & 0xFFFF_FFFF_FFFF)
}

fn run_stress(pool_shards: usize, heap_frames: usize, index_frames: usize) {
    let (_db, table) = build(pool_shards, heap_frames, index_frames);
    let floors: Arc<Vec<AtomicU64>> =
        Arc::new((0..UPDATE_KEYS).map(|_| AtomicU64::new(0)).collect());
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Readers: hammer the projection path, checking freshness
        // against the floor read BEFORE the projection started.
        let mut readers = Vec::new();
        for ti in 0..READER_THREADS {
            let table = Arc::clone(&table);
            let floors = Arc::clone(&floors);
            let done = Arc::clone(&done);
            readers.push(s.spawn(move || {
                let mut x = 0x9E37_79B9u64.wrapping_add(ti as u64);
                let mut reads = 0u64;
                let mut hits = 0u64;
                while !done.load(Ordering::Acquire) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let k = x % (UPDATE_KEYS + CHURN_KEYS);
                    if k < UPDATE_KEYS {
                        let floor = floors[k as usize].load(Ordering::Acquire);
                        let p = table
                            .project_via_index("pk", &k.to_be_bytes())
                            .unwrap()
                            .expect("update keys are never deleted");
                        let (tag, version) = decode(&p.payload);
                        assert_eq!(tag, k, "projection returned another key's bytes");
                        assert!(
                            version >= floor,
                            "lost invalidation: key {k} read version {version} \
                             after version {floor} was committed (index_only={})",
                            p.index_only
                        );
                        hits += u64::from(p.index_only);
                    } else {
                        // Churned key: may be absent, but when present the
                        // payload must belong to it.
                        if let Some(p) = table.project_via_index("pk", &k.to_be_bytes()).unwrap() {
                            let (tag, _) = decode(&p.payload);
                            assert_eq!(tag, k, "projection returned another key's bytes");
                        }
                    }
                    reads += 1;
                }
                (reads, hits)
            }));
        }

        // Writer: in-place updates with a published floor, plus
        // delete/re-insert churn that exercises RID reuse.
        let writer = {
            let table = Arc::clone(&table);
            let floors = Arc::clone(&floors);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut versions = vec![0u64; UPDATE_KEYS as usize];
                let mut x = 7u64;
                for round in 0..WRITER_ROUNDS {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let k = x % UPDATE_KEYS;
                    versions[k as usize] += 1;
                    let v = versions[k as usize];
                    assert!(table.update_via_index("pk", &k.to_be_bytes(), &tuple(k, v)).unwrap());
                    // Publish only after the update (heap write + index
                    // invalidation) has completed: from here on, readers
                    // must never see an older version.
                    floors[k as usize].store(v, Ordering::Release);

                    if round % 5 == 0 {
                        let ck = UPDATE_KEYS + (x >> 8) % CHURN_KEYS;
                        assert!(table.delete_via_index("pk", &ck.to_be_bytes()).unwrap());
                        table.insert(&tuple(ck, round)).unwrap();
                    }
                }
                done.store(true, Ordering::Release);
            })
        };

        writer.join().unwrap();
        let mut total_reads = 0u64;
        let mut total_hits = 0u64;
        for r in readers {
            let (reads, hits) = r.join().unwrap();
            total_reads += reads;
            total_hits += hits;
        }
        assert!(total_reads > 0, "readers must have run");
        // Not a correctness property, but if the cache never answered a
        // single read the test lost its point — flag it loudly.
        assert!(total_hits > 0, "no index-only answers across {total_reads} racing reads");
    });

    // Quiesced verification: every key's projection must match its heap
    // tuple, both on the populate path and the subsequent cache hit.
    for k in 0..UPDATE_KEYS + CHURN_KEYS {
        let heap_tuple = table.get_via_index("pk", &k.to_be_bytes()).unwrap().unwrap();
        let expect = &heap_tuple[8..16];
        for pass in 0..2 {
            let p = table.project_via_index("pk", &k.to_be_bytes()).unwrap().unwrap();
            assert_eq!(p.payload, expect, "key {k} pass {pass}: projection disagrees with heap");
        }
    }
}

#[test]
fn readers_vs_writer_no_lost_invalidations() {
    // Everything resident: isolates the cache-invalidation protocol.
    run_stress(8, 256, 256);
}

#[test]
fn readers_vs_writer_under_memory_pressure() {
    // Tiny pools: frames churn, so cache writes race evictions too.
    run_stress(2, 32, 32);
}

// ---------------------------------------------------------------------
// Multi-writer: N batched writers on disjoint key ranges vs readers
// ---------------------------------------------------------------------

/// Multi-writer stress over the batched write path. Each writer owns a
/// disjoint key range and rounds through `put_many` (upsert) version
/// bumps, `delete_many`/re-insert churn on the upper half of its
/// range, and `get_many` read-backs — so per-leaf latches, escalated
/// splits, and the grouped heap appends all contend across threads.
/// Readers race `get_many`/`project_via_index` over every range,
/// asserting (a) any observed tuple belongs to the key that was asked
/// for and (b) stable keys never read older than the writer's
/// published floor (a violation means a lost invalidation or a torn
/// batched write).
#[test]
fn disjoint_range_batch_writers_vs_readers() {
    const WRITERS: u64 = 4;
    const RANGE: u64 = 256;
    /// Keys below this offset within a range are never deleted, so
    /// readers can assert version floors on them.
    const STABLE: u64 = 128;
    const ROUNDS: u64 = 40;
    const READER_THREADS: usize = 3;

    let db = Database::open(DbConfig {
        page_size: 4096,
        heap_frames: 512,
        index_frames: 512,
        pool_shards: 8,
        ..DbConfig::default()
    });
    let table = db.create_table("t", 24).unwrap();
    table
        .create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
        .unwrap();
    // Seed every range at version 0 in one batch per writer.
    for w in 0..WRITERS {
        let base = w * RANGE;
        let tuples: Vec<Vec<u8>> = (base..base + RANGE).map(|key| tuple(key, 0)).collect();
        table.insert_many(&tuples).unwrap();
    }

    let floors: Arc<Vec<AtomicU64>> =
        Arc::new((0..WRITERS * RANGE).map(|_| AtomicU64::new(0)).collect());
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let mut readers = Vec::new();
        for ti in 0..READER_THREADS {
            let table = Arc::clone(&table);
            let floors = Arc::clone(&floors);
            let done = Arc::clone(&done);
            readers.push(s.spawn(move || {
                let mut x = 0xA5A5_5A5Au64.wrapping_add(ti as u64);
                let mut reads = 0u64;
                while !done.load(Ordering::Acquire) {
                    // A batch of keys spanning every writer's range.
                    let mut keys = Vec::with_capacity(16);
                    let mut floor_snapshot = Vec::with_capacity(16);
                    for _ in 0..16 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let key = x % (WRITERS * RANGE);
                        floor_snapshot.push((key, floors[key as usize].load(Ordering::Acquire)));
                        keys.push(key.to_be_bytes());
                    }
                    let pk = table.index("pk").unwrap();
                    let got = pk.get_many(&keys).unwrap();
                    for (i, t) in got.iter().enumerate() {
                        let (key, floor) = floor_snapshot[i];
                        let stable = key % RANGE < STABLE;
                        let Some(t) = t else {
                            assert!(!stable, "stable key {key} vanished");
                            continue;
                        };
                        let (tag, version) = decode(&t[8..16]);
                        assert_eq!(tag, key, "get_many returned another key's tuple");
                        if stable {
                            assert!(
                                version >= floor,
                                "stale read: key {key} version {version} after floor {floor}"
                            );
                        }
                    }
                    // Exercise the §2.1 cache path too: a stale
                    // index-only answer here means a batched write lost
                    // an invalidation.
                    let (key, floor) = floor_snapshot[0];
                    if key % RANGE < STABLE {
                        let p = pk.project(&key.to_be_bytes()).unwrap().expect("stable key");
                        let (tag, version) = decode(&p.payload);
                        assert_eq!(tag, key, "projection returned another key's bytes");
                        assert!(
                            version >= floor,
                            "lost invalidation: key {key} projected version {version} \
                             after floor {floor} (index_only={})",
                            p.index_only
                        );
                    }
                    reads += 1;
                }
                reads
            }));
        }

        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let table = Arc::clone(&table);
            let floors = Arc::clone(&floors);
            writers.push(s.spawn(move || {
                let base = w * RANGE;
                let pk = table.index("pk").unwrap();
                for round in 1..=ROUNDS {
                    // Upsert the stable half at the new version, then
                    // publish the floors (readers from here on must not
                    // see anything older).
                    let tuples: Vec<Vec<u8>> =
                        (base..base + STABLE).map(|key| tuple(key, round)).collect();
                    pk.put_many(&tuples).unwrap();
                    for key in base..base + STABLE {
                        floors[key as usize].store(round, Ordering::Release);
                    }
                    // Churn the volatile half: batch-delete, then
                    // re-insert — RID recycling races the readers.
                    let doomed: Vec<[u8; 8]> =
                        (base + STABLE..base + RANGE).map(|key| key.to_be_bytes()).collect();
                    let removed = pk.delete_many(&doomed).unwrap();
                    assert!(removed.iter().all(|&b| b), "own range: deletes cannot miss");
                    let reborn: Vec<Vec<u8>> =
                        (base + STABLE..base + RANGE).map(|key| tuple(key, round)).collect();
                    table.insert_many(&reborn).unwrap();
                    // Read-back through the batched path.
                    let keys: Vec<[u8; 8]> =
                        (base..base + RANGE).map(|key| key.to_be_bytes()).collect();
                    for (i, t) in pk.get_many(&keys).unwrap().into_iter().enumerate() {
                        let t = t.expect("own range: key must exist");
                        let (tag, version) = decode(&t[8..16]);
                        assert_eq!(tag, base + i as u64);
                        assert_eq!(version, round, "own write must be visible");
                    }
                }
            }));
        }
        for wtr in writers {
            wtr.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let mut total_reads = 0u64;
        for r in readers {
            total_reads += r.join().unwrap();
        }
        assert!(total_reads > 0, "readers must have run");
    });

    // Quiesced: every key at its final version, indexes consistent.
    let pk = table.index("pk").unwrap();
    let keys: Vec<[u8; 8]> = (0..WRITERS * RANGE).map(|key| key.to_be_bytes()).collect();
    for (i, t) in pk.get_many(&keys).unwrap().into_iter().enumerate() {
        let t = t.unwrap_or_else(|| panic!("key {i} missing after quiesce"));
        let (tag, version) = decode(&t[8..16]);
        assert_eq!(tag, i as u64);
        assert_eq!(version, ROUNDS);
    }
    pk.tree().check_invariants().unwrap().unwrap();
    let s = table.stats();
    assert!(
        s.write_batches < s.inserts + s.updates + s.deletes,
        "batched writes must amortize: {s:?}"
    );
}
