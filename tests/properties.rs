//! Cross-crate property tests: the whole-table model check, vertical
//! partitioning round trips, and encoding round trips on generated
//! Wikipedia rows.

use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec};
use nbb::encoding::{analyze_column, decode_column, encode_column, DeclaredType, Value};
use nbb::partition::{optimize, QueryClass, VerticalTable};
use nbb::storage::{BufferPool, DiskManager, HeapFile, InMemoryDisk};
use nbb::workload::WikiGenerator;
use proptest::prelude::*;
use std::sync::Arc;

fn k(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

fn tuple(id: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&k(id));
    t.extend_from_slice(&value.to_le_bytes());
    t.extend_from_slice(&[0u8; 8]);
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn table_with_cached_index_matches_model(
        ops in prop::collection::vec((0u8..4, 0u64..80, 0u64..100_000), 1..300)
    ) {
        let db = Database::open(DbConfig {
            page_size: 4096, heap_frames: 32, index_frames: 32, ..DbConfig::default()
        });
        let t = db.create_table("t", 24).unwrap();
        t.create_index(IndexSpec::cached(
            "pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)],
        )).unwrap();
        let mut model = std::collections::HashMap::new();
        for (op, id, v) in ops {
            match op {
                0 => {
                    model.entry(id).or_insert_with(|| {
                        t.insert(&tuple(id, v)).unwrap();
                        v
                    });
                }
                1 => {
                    if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(id) {
                        prop_assert!(t.update_via_index("pk", &k(id), &tuple(id, v)).unwrap());
                        e.insert(v);
                    }
                }
                2 => {
                    let deleted = t.delete_via_index("pk", &k(id)).unwrap();
                    prop_assert_eq!(deleted, model.remove(&id).is_some());
                }
                _ => {
                    let got = t.project_via_index("pk", &k(id)).unwrap();
                    match (got, model.get(&id)) {
                        (Some(p), Some(mv)) => prop_assert_eq!(p.payload, mv.to_le_bytes().to_vec()),
                        (None, None) => {}
                        (g, m) => prop_assert!(false, "mismatch: {:?} vs {:?}", g, m),
                    }
                }
            }
        }
    }

    #[test]
    fn vertical_table_round_trips_any_partitioning(
        widths in prop::collection::vec(1usize..16, 2..6),
        rows in prop::collection::vec(any::<u8>(), 1..40),
        seed in any::<u64>(),
    ) {
        // Build a random valid partitioning of the columns.
        let ncols = widths.len();
        let mut x = seed | 1;
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for c in 0..ncols {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if groups.is_empty() || x % 3 == 0 {
                groups.push(vec![c]);
            } else {
                let gi = (x as usize / 7) % groups.len();
                groups[gi].push(c);
            }
        }
        let heaps: Vec<HeapFile> = groups.iter().map(|_| {
            let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(1024));
            HeapFile::create(Arc::new(BufferPool::new(disk, 32))).unwrap()
        }).collect();
        let vt = VerticalTable::new(groups, widths.clone(), heaps);
        let row_width: usize = widths.iter().sum();
        let mut ids = Vec::new();
        for r in &rows {
            let row: Vec<u8> = (0..row_width).map(|i| r.wrapping_add(i as u8)).collect();
            ids.push((vt.insert(&row).unwrap(), row));
        }
        for (id, row) in &ids {
            prop_assert_eq!(&vt.read_row(*id).unwrap(), row);
        }
    }

    #[test]
    fn optimizer_output_is_always_a_valid_partitioning(
        widths in prop::collection::vec(1usize..64, 1..8),
        nqueries in 0usize..5,
        seed in any::<u64>(),
    ) {
        let ncols = widths.len();
        let mut x = seed | 1;
        let mut workload = Vec::new();
        for _ in 0..nqueries {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let cols: Vec<usize> = (0..ncols).filter(|c| (x >> c) & 1 == 1).collect();
            if !cols.is_empty() {
                workload.push(QueryClass { columns: cols, weight: (x % 100) as f64 + 1.0 });
            }
        }
        let parts = optimize(&widths, &workload, 16.0);
        // Disjoint cover of all columns.
        let mut seen = vec![false; ncols];
        for g in &parts {
            for &c in g {
                prop_assert!(!seen[c], "column {} twice", c);
                seen[c] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inference_recommendations_always_round_trip(
        kind in 0u8..4,
        n in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut x = seed | 1;
        let values: Vec<Value> = (0..n).map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match kind {
                0 => Value::Int((x % 10_000) as i64 - 5_000),
                1 => Value::Bool(x % 2 == 0),
                2 => Value::Str(nbb::encoding::timestamp::format_epoch(x % 1_000_000)),
                _ => Value::Str(format!("tag-{}", x % 7)),
            }
        }).collect();
        let declared = match kind {
            0 => DeclaredType::Int64,
            1 => DeclaredType::Bool,
            _ => DeclaredType::Str { width: 20 },
        };
        let analysis = analyze_column("c", declared, &values);
        let encoded = encode_column(&values, &analysis.recommended);
        let decoded = decode_column(&encoded);
        // Bool-kind columns may decode as Bool(x) for Int 0/1 inputs;
        // normalize both sides to a comparable form.
        let norm = |v: &Value| match v {
            Value::Bool(b) => Value::Int(i64::from(*b)),
            other => other.clone(),
        };
        let a: Vec<Value> = values.iter().map(norm).collect();
        let b: Vec<Value> = decoded.iter().map(norm).collect();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn wiki_rows_survive_heap_and_decode() {
    // Generated rows -> heap bytes -> decode: everything equal.
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
    let heap = HeapFile::create(Arc::new(BufferPool::new(disk, 64))).unwrap();
    let mut gen = WikiGenerator::new(3);
    let mut pages = gen.pages(100);
    let revisions = gen.revisions(&mut pages, 5);
    let mut rids = Vec::new();
    for r in &revisions {
        rids.push((heap.insert(&r.encode()).unwrap(), r.clone()));
    }
    for (rid, r) in &rids {
        let bytes = heap.get(*rid).unwrap();
        let decoded = nbb::workload::RevisionRow::decode(&bytes).unwrap();
        assert_eq!(&decoded, r);
    }
}
