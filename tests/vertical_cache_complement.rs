//! §3.2's stated purpose, measured: "separating the cached fields from
//! the uncached fields can complement index caching by minimizing the
//! amount of redundant data read into memory when queries access fields
//! not found in the index."
//!
//! Wide tuples = 16 hot bytes (the index-cached fields) + 240 cold blob
//! bytes. A workload that mostly reads hot fields (with occasional cache
//! misses) drags whole 256-byte rows through the buffer pool when the
//! table is row-stored, but only 16-byte rows when the hot columns live
//! in their own vertical partition.

use nbb::partition::{optimize, QueryClass, VerticalTable};
use nbb::storage::{BufferPool, DiskManager, DiskModel, HeapFile, SimulatedDisk};
use std::sync::Arc;

const HOT_W: usize = 16;
const COLD_W: usize = 240;
const N_ROWS: usize = 2_000;

fn sim_pool(frames: usize) -> (Arc<BufferPool>, Arc<dyn DiskManager>) {
    let disk: Arc<dyn DiskManager> =
        Arc::new(SimulatedDisk::new(4096, DiskModel { read_ns: 1000, write_ns: 0 }));
    (Arc::new(BufferPool::new(Arc::clone(&disk), frames)), disk)
}

fn row(i: usize) -> Vec<u8> {
    let mut r = Vec::with_capacity(HOT_W + COLD_W);
    r.extend_from_slice(&(i as u64).to_le_bytes());
    r.extend_from_slice(&(i as u64 ^ 0xFF).to_le_bytes());
    r.extend_from_slice(&vec![i as u8; COLD_W]);
    r
}

#[test]
fn optimizer_recommends_the_complementary_split() {
    // 95% of queries read the hot columns (cache misses re-fetching the
    // cached fields), 5% read everything.
    let widths = [8usize, 8, COLD_W];
    let wl = [
        QueryClass { columns: vec![0, 1], weight: 95.0 },
        QueryClass { columns: vec![0, 1, 2], weight: 5.0 },
    ];
    let parts = optimize(&widths, &wl, 32.0);
    assert_eq!(
        parts,
        vec![vec![0, 1], vec![2]],
        "the optimizer must separate cached fields from the blob"
    );
}

#[test]
fn vertical_split_cuts_io_for_hot_field_misses() {
    // Row store: every hot-field fetch faults a page holding ~16 rows.
    let (row_pool, row_disk) = sim_pool(8);
    let row_heap = HeapFile::create(row_pool).unwrap();
    let mut row_rids = Vec::new();
    for i in 0..N_ROWS {
        row_rids.push(row_heap.insert(&row(i)).unwrap());
    }

    // Vertical: hot partition rows are 16 bytes -> ~250 rows/page.
    let (vert_pool, vert_disk) = sim_pool(8);
    let (cold_pool, _) = sim_pool(8);
    let hot_heap = HeapFile::create(vert_pool).unwrap();
    let cold_heap = HeapFile::create(cold_pool).unwrap();
    let vt = VerticalTable::new(
        vec![vec![0, 1], vec![2]],
        vec![8, 8, COLD_W],
        vec![hot_heap, cold_heap],
    );
    let mut vt_ids = Vec::new();
    for i in 0..N_ROWS {
        vt_ids.push(vt.insert(&row(i)).unwrap());
    }

    // Same pseudo-random hot-field access stream against both layouts.
    row_disk.reset_stats();
    vert_disk.reset_stats();
    let mut x = 0x1234_5678_9ABC_DEF0u64;
    for _ in 0..5_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let i = (x % N_ROWS as u64) as usize;
        // Row store: read the full tuple to get 16 bytes.
        let full = row_heap.get(row_rids[i]).unwrap();
        assert_eq!(&full[..8], &(i as u64).to_le_bytes());
        // Vertical: read only the hot partition.
        let (cols, touched) = vt.read_columns(vt_ids[i], &[0, 1]).unwrap();
        assert_eq!(cols[0], (i as u64).to_le_bytes());
        assert_eq!(touched, 1, "hot-field reads must touch one partition");
    }
    let row_reads = row_disk.stats().reads;
    let vert_reads = vert_disk.stats().reads;
    assert!(
        vert_reads * 4 < row_reads,
        "vertical hot partition should slash I/O: {vert_reads} vs {row_reads}"
    );
}

#[test]
fn full_row_reconstruction_still_works_and_costs_merges() {
    let (pool_a, _) = sim_pool(32);
    let (pool_b, _) = sim_pool(32);
    let vt = VerticalTable::new(
        vec![vec![0, 1], vec![2]],
        vec![8, 8, COLD_W],
        vec![HeapFile::create(pool_a).unwrap(), HeapFile::create(pool_b).unwrap()],
    );
    let mut ids = Vec::new();
    for i in 0..100 {
        ids.push(vt.insert(&row(i)).unwrap());
    }
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(vt.read_row(*id).unwrap(), row(i), "row {i}");
        let (_, touched) = vt.read_columns(*id, &[0, 2]).unwrap();
        assert_eq!(touched, 2, "cross-partition projections pay the merge");
    }
}
