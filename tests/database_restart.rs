//! Whole-database restart: persist the catalog, drop all in-memory
//! state, reopen from the same disks, and verify tables, indexes, and
//! cache-consistency semantics all survive.

use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec};
use nbb::storage::{DiskManager, FileDisk, InMemoryDisk};
use std::sync::Arc;

fn k(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

fn tuple(id: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&k(id));
    t.extend_from_slice(&value.to_le_bytes());
    t.extend_from_slice(&[0xAB; 8]);
    t
}

fn cfg() -> DbConfig {
    DbConfig { page_size: 4096, heap_frames: 64, index_frames: 64, ..DbConfig::default() }
}

fn restart_cycle(heap_disk: Arc<dyn DiskManager>, index_disk: Arc<dyn DiskManager>) {
    {
        let db =
            Database::with_disks(cfg(), Arc::clone(&heap_disk), Arc::clone(&index_disk)).unwrap();
        let a = db.create_table("alpha", 24).unwrap();
        a.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
            .unwrap();
        let b = db.create_table("beta", 24).unwrap();
        b.create_index(IndexSpec::plain("pk", FieldSpec::new(0, 8))).unwrap();
        for i in 0..1_500u64 {
            a.insert(&tuple(i, i * 2)).unwrap();
            b.insert(&tuple(i, i * 3)).unwrap();
        }
        // Warm alpha's index cache so stale bytes exist on disk.
        for i in 0..1_500u64 {
            a.project_via_index("pk", &k(i)).unwrap();
        }
        db.persist().unwrap();
    } // everything in memory dropped

    let db = Database::reopen(cfg(), heap_disk, index_disk).unwrap();
    assert_eq!(db.table_names(), vec!["alpha", "beta"]);
    let a = db.table("alpha").unwrap();
    let b = db.table("beta").unwrap();
    for i in (0..1_500u64).step_by(73) {
        assert_eq!(a.get_via_index("pk", &k(i)).unwrap().unwrap(), tuple(i, i * 2));
        assert_eq!(b.get_via_index("pk", &k(i)).unwrap().unwrap(), tuple(i, i * 3));
    }
    // The reopened cached index still works (fresh epoch, then warm).
    let p1 = a.project_via_index("pk", &k(7)).unwrap().unwrap();
    assert!(!p1.index_only, "restart must start cold");
    assert_eq!(p1.payload, 14u64.to_le_bytes());
    let p2 = a.project_via_index("pk", &k(7)).unwrap().unwrap();
    assert!(p2.index_only, "cache must repopulate after restart");
    // Structural invariants survived the round trip.
    a.index_tree("pk").unwrap().tree().check_invariants().unwrap().unwrap();
    b.index_tree("pk").unwrap().tree().check_invariants().unwrap().unwrap();
    // And the reopened database accepts new work.
    a.insert(&tuple(9_999, 1)).unwrap();
    assert!(a.get_via_index("pk", &k(9_999)).unwrap().is_some());
}

#[test]
fn restart_in_memory() {
    restart_cycle(Arc::new(InMemoryDisk::new(4096)), Arc::new(InMemoryDisk::new(4096)));
}

#[test]
fn restart_from_real_files() {
    let dir = std::env::temp_dir().join(format!("nbb_db_restart_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let hp = dir.join("heap.db");
    let ip = dir.join("index.db");
    restart_cycle(
        Arc::new(FileDisk::create(&hp, 4096).unwrap()),
        Arc::new(FileDisk::create(&ip, 4096).unwrap()),
    );
    std::fs::remove_file(&hp).ok();
    std::fs::remove_file(&ip).ok();
}

#[test]
fn repersist_after_more_work() {
    // persist -> reopen -> mutate -> persist -> reopen: both catalogs valid.
    let heap_disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    let index_disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    {
        let db =
            Database::with_disks(cfg(), Arc::clone(&heap_disk), Arc::clone(&index_disk)).unwrap();
        let t = db.create_table("t", 24).unwrap();
        t.create_index(IndexSpec::plain("pk", FieldSpec::new(0, 8))).unwrap();
        for i in 0..500u64 {
            t.insert(&tuple(i, i)).unwrap();
        }
        db.persist().unwrap();
    }
    {
        let db = Database::reopen(cfg(), Arc::clone(&heap_disk), Arc::clone(&index_disk)).unwrap();
        let t = db.table("t").unwrap();
        for i in 500..900u64 {
            t.insert(&tuple(i, i)).unwrap();
        }
        assert!(t.delete_via_index("pk", &k(3)).unwrap());
        db.persist().unwrap();
    }
    let db = Database::reopen(cfg(), heap_disk, index_disk).unwrap();
    let t = db.table("t").unwrap();
    assert!(t.get_via_index("pk", &k(3)).unwrap().is_none());
    for i in (0..900u64).step_by(111) {
        if i != 3 {
            assert_eq!(t.get_via_index("pk", &k(i)).unwrap().unwrap(), tuple(i, i), "key {i}");
        }
    }
}

#[test]
fn reopen_without_catalog_fails_cleanly() {
    let heap_disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    let index_disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    heap_disk.allocate().unwrap(); // a page, but no catalog header
    assert!(Database::reopen(cfg(), heap_disk, index_disk).is_err());
}

#[test]
fn with_disks_refuses_populated_disks() {
    let heap_disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    let index_disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    heap_disk.allocate().unwrap();
    assert!(Database::with_disks(cfg(), heap_disk, index_disk).is_err());
}
