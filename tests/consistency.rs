//! Adversarial consistency tests: the index cache must never serve a
//! value that differs from the heap, under any interleaving of updates,
//! deletes, RID reuse, eviction, and crash-invalidation.

use nbb::btree::{BTree, BTreeOptions, CacheConfig};
use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec, Table};
use nbb::storage::{BufferPool, DiskManager, InMemoryDisk};
use std::collections::HashMap;
use std::sync::Arc;

fn k(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// tuple: id(8 BE) | value(8 LE) | junk(8)
fn tuple(id: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&k(id));
    t.extend_from_slice(&value.to_le_bytes());
    t.extend_from_slice(&[0x77; 8]);
    t
}

fn cached_table(heap_frames: usize, index_frames: usize) -> (Database, Arc<Table>) {
    let db = Database::open(DbConfig {
        page_size: 4096,
        heap_frames,
        index_frames,
        ..DbConfig::default()
    });
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
        .unwrap();
    (db, t)
}

#[test]
fn long_adversarial_interleaving_never_serves_stale() {
    let (_db, t) = cached_table(256, 256);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    let mut x = 0xA5A5_5A5A_1234_5678u64;
    for step in 0..30_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let id = x % 200;
        match x % 11 {
            0 | 1 => {
                truth.entry(id).or_insert_with(|| {
                    let v = x >> 32;
                    t.insert(&tuple(id, v)).unwrap();
                    v
                });
            }
            2 => {
                if truth.contains_key(&id) {
                    let v = x >> 32;
                    assert!(t.update_via_index("pk", &k(id), &tuple(id, v)).unwrap());
                    truth.insert(id, v);
                }
            }
            3 => {
                let existed = t.delete_via_index("pk", &k(id)).unwrap();
                assert_eq!(existed, truth.remove(&id).is_some(), "step {step}");
            }
            _ => {
                let got = t.project_via_index("pk", &k(id)).unwrap();
                match (got, truth.get(&id)) {
                    (Some(p), Some(v)) => assert_eq!(
                        p.payload,
                        v.to_le_bytes(),
                        "STALE CACHE at step {step}, id {id}"
                    ),
                    (None, None) => {}
                    (g, m) => panic!("presence mismatch at step {step}: {g:?} vs {m:?}"),
                }
            }
        }
    }
    let stats = t.stats();
    assert!(stats.index_only_answers > 0, "cache must have been exercised: {stats:?}");
}

#[test]
fn stale_never_served_under_memory_pressure() {
    // Tiny pools: constant eviction, so non-dirty cache writes are lost
    // and CSN state reloads from disk continually.
    let (_db, t) = cached_table(3, 3);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    let mut x = 0x1357_9BDF_2468_ACE0u64;
    for step in 0..8_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let id = x % 500;
        match x % 7 {
            0 => {
                truth.entry(id).or_insert_with(|| {
                    t.insert(&tuple(id, x >> 32)).unwrap();
                    x >> 32
                });
            }
            1 => {
                if truth.contains_key(&id) {
                    t.update_via_index("pk", &k(id), &tuple(id, x >> 33)).unwrap();
                    truth.insert(id, x >> 33);
                }
            }
            _ => {
                if let Some(p) = t.project_via_index("pk", &k(id)).unwrap() {
                    assert_eq!(
                        p.payload,
                        truth[&id].to_le_bytes(),
                        "stale under eviction at step {step}"
                    );
                } else {
                    assert!(!truth.contains_key(&id), "lost tuple at step {step}");
                }
            }
        }
    }
}

#[test]
fn concurrent_readers_and_writers_on_shared_tree() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
    let pool = Arc::new(BufferPool::new(disk, 128));
    let tree = Arc::new(
        BTree::create(
            pool,
            8,
            BTreeOptions {
                cache: Some(CacheConfig { payload_size: 8, bucket_slots: 8, log_threshold: 16 }),
                cache_seed: 99,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let n = 64u64;
    let versions: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    for i in 0..n {
        tree.insert(&k(i), i).unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    // Writer: bump version then invalidate.
    {
        let tree = Arc::clone(&tree);
        let versions = Arc::clone(&versions);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut x = 1u64;
            while !stop.load(Ordering::Relaxed) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let id = x % n;
                versions[id as usize].fetch_add(1, Ordering::SeqCst);
                tree.invalidate(&k(id), id).unwrap();
            }
        }));
    }
    // Readers: cached value must never exceed current version, and a
    // populate must never resurrect an older version over a newer one.
    for t_id in 0..3 {
        let tree = Arc::clone(&tree);
        let versions = Arc::clone(&versions);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut x: u64 = 77 + t_id;
            for _ in 0..20_000 {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let id = x % n;
                let m = tree.lookup_cached(&k(id)).unwrap();
                if let Some(pl) = &m.payload {
                    let got = u64::from_le_bytes(pl[..8].try_into().unwrap());
                    let now = versions[id as usize].load(Ordering::SeqCst);
                    assert!(got <= now, "cache from the future: {got} > {now}");
                } else {
                    // Read "heap" (the version array), then populate.
                    let v = versions[id as usize].load(Ordering::SeqCst);
                    let _ = tree.cache_populate(m.leaf, id, &v.to_le_bytes(), m.token);
                }
            }
        }));
    }
    // Let readers finish, then stop the writer.
    for h in handles.drain(1..) {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    // Quiesce and verify: full invalidation, then every lookup misses.
    tree.invalidate_all_caches();
    for i in 0..n {
        assert!(tree.lookup_cached(&k(i)).unwrap().payload.is_none());
    }
}

#[test]
fn rid_reuse_across_tables_is_safe() {
    // Delete a tuple, insert another that reuses its heap slot, and make
    // sure projections resolve the new tuple (never the ghost).
    let (_db, t) = cached_table(64, 64);
    for round in 0..50u64 {
        let id = 1000 + round;
        t.insert(&tuple(id, round)).unwrap();
        // Warm the cache, then delete.
        t.project_via_index("pk", &k(id)).unwrap();
        t.project_via_index("pk", &k(id)).unwrap();
        assert!(t.delete_via_index("pk", &k(id)).unwrap());
        // Reuse: new id, very likely the same heap slot.
        let id2 = 2000 + round;
        t.insert(&tuple(id2, round * 7)).unwrap();
        let p = t.project_via_index("pk", &k(id2)).unwrap().unwrap();
        assert_eq!(p.payload, (round * 7).to_le_bytes(), "round {round}");
        assert!(t.project_via_index("pk", &k(id)).unwrap().is_none());
        assert!(t.delete_via_index("pk", &k(id2)).unwrap());
    }
}
