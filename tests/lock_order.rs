//! Lock-order model check: a mixed storm across every ranked subsystem.
//!
//! In debug builds every ranked lock acquisition is checked against the
//! workspace lattice (`CONCURRENCY.md`): an inversion panics on the
//! spot, naming both locks. This test's job is to make one run cross as
//! many *combinations* of lock paths as possible at once — faults and
//! coalesced fault-joins, evictions through the write-behind queue and
//! the compressed tier, same-key intent parks and handoffs, cached-index
//! promotion/invalidation (the frame-nested ranks), and the `flush_all`
//! barrier — so the ordinary assertion "the storm completed" carries the
//! real payload "no interleaving of these paths violated the lattice".
//!
//! The deterministic inversion tests (panic message naming both locks,
//! leaf latches refusing to nest) live next to the lattice itself in
//! `nbb-storage/src/lockrank.rs`; the checker's own unit tests live in
//! the `parking_lot` shim.

use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec};
use std::sync::atomic::{AtomicU64, Ordering};

fn tuple(key: u64, group: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&group.to_be_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t
}

/// Rows seeded before the storm; far more pages than the pool has
/// frames, so cold reads fault and hot writes evict continuously.
const SEEDED: u64 = 400;
/// Keys the update threads hammer (small set → intent contention).
const HOT_KEYS: u64 = 4;
const UPDATERS: usize = 3;
const READERS: usize = 2;
const ROUNDS: u64 = 60;

#[test]
fn mixed_storm_respects_the_lock_lattice() {
    let db = Database::open(DbConfig {
        page_size: 1024,
        heap_frames: 8,
        index_frames: 8,
        pool_shards: 2,
        write_behind: 4,
        intent_stripes: 4,
        compressed_budget_bytes: 64 * 1024,
        ..DbConfig::default()
    });
    let t = db.create_table("t", 24).unwrap();
    // A cached pk exercises the frame-nested ranks (promotion RNG,
    // invalidation log) from inside pool callbacks; the secondary
    // index makes every logical write a multi-index sequence under
    // one intent.
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    t.create_index(IndexSpec::plain("by_group", FieldSpec::new(8, 8))).unwrap();
    for k in 0..SEEDED {
        t.insert(&tuple(k, k % 7, k)).unwrap();
    }
    // Pools are tiny, so the seed already overflowed them; the storm
    // below re-faults cold pages while updaters keep dirtying others.
    let inserted = AtomicU64::new(SEEDED);

    std::thread::scope(|s| {
        for w in 0..UPDATERS as u64 {
            let t = &t;
            s.spawn(move || {
                let pk = t.index("pk").unwrap();
                for round in 0..ROUNDS {
                    let key = (w + round) % HOT_KEYS;
                    let updated =
                        pk.update(&key.to_be_bytes(), &tuple(key, round % 7, w * 1000 + round));
                    assert!(updated.unwrap(), "hot keys exist throughout");
                }
            });
        }
        for r in 0..READERS as u64 {
            let t = &t;
            s.spawn(move || {
                for round in 0..ROUNDS {
                    // Stride through the cold range: every read is a
                    // likely fault, some served by the compressed tier.
                    let key = (r * 131 + round * 17) % SEEDED;
                    let row = t.get_via_index("pk", &key.to_be_bytes()).unwrap();
                    if key >= HOT_KEYS {
                        let row = row.expect("cold rows are never deleted");
                        assert_eq!(u64::from_be_bytes(row[..8].try_into().unwrap()), key);
                    }
                }
            });
        }
        {
            let t = &t;
            let inserted = &inserted;
            s.spawn(move || {
                let pk = t.index("pk").unwrap();
                for round in 0..ROUNDS {
                    let key = SEEDED + round;
                    t.insert(&tuple(key, key % 7, key)).unwrap();
                    inserted.fetch_add(1, Ordering::Relaxed);
                    if round % 8 == 0 {
                        // Delete/reinsert churns the cached index's
                        // invalidation log under frame latches.
                        assert!(pk.delete(&key.to_be_bytes()).unwrap());
                        t.insert(&tuple(key, key % 7, key + 1)).unwrap();
                    }
                }
            });
        }
        {
            // A concurrent persist drives the flush_all barrier (the
            // ordered map→frame sweep) against live faulting writers.
            let db = &db;
            s.spawn(move || {
                db.persist().unwrap();
            });
        }
    });

    // The storm must actually have crossed the interesting paths —
    // otherwise this test silently degrades into a no-op model check.
    let stats = t.stats();
    let pool = db.heap_pool().stats();
    assert!(pool.misses > 0, "storm never faulted: pool too large for the workload");
    assert!(pool.evictions > 0, "storm never evicted: no map→frame path exercised");
    assert!(pool.writebacks > 0, "storm never wrote back a dirty victim");
    assert_eq!(stats.updates, (UPDATERS as u64) * ROUNDS, "every hot update landed");

    // Every row is whole and findable after the storm.
    for k in 0..inserted.load(Ordering::Relaxed) {
        let row = t.get_via_index("pk", &k.to_be_bytes()).unwrap().expect("row survives");
        assert_eq!(u64::from_be_bytes(row[..8].try_into().unwrap()), k);
    }

    // The checker's stack must be fully unwound on this thread, and the
    // close-path flush (drain write-behind, stop the compressor, flush
    // residents) must itself pass the lattice.
    #[cfg(debug_assertions)]
    assert_eq!(parking_lot::held_rank_count(), 0);
    db.close().unwrap();
}
