//! Integration tests for the handle-based query API: `IndexRef`
//! handles, batched execution, ordered range cursors, typed
//! `RowSchema` tables, and index-spec validation.

use nbb::core::db::{Database, DbConfig};
use nbb::core::query::Batch;
use nbb::core::row::RowSchema;
use nbb::core::table::{FieldSpec, IndexSpec, Table};
use nbb::encoding::{ColumnDef, DeclaredType, Schema, Value};
use nbb::storage::StorageError;
use std::sync::Arc;

fn be_key(id: u64) -> [u8; 8] {
    id.to_be_bytes()
}

/// 32-byte tuple: id(8) | group(8) | value(8) | pad(8).
fn tuple(id: u64, group: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(32);
    t.extend_from_slice(&id.to_be_bytes());
    t.extend_from_slice(&group.to_be_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t.extend_from_slice(&[0xAB; 8]);
    t
}

fn cached_table(db: &Database, rows: u64) -> Arc<Table> {
    let t = db.create_table("t", 32).unwrap();
    t.create_index(IndexSpec::cached(
        "by_id",
        FieldSpec::new(0, 8),
        vec![FieldSpec::new(16, 8)], // cache `value`
    ))
    .unwrap();
    for i in 0..rows {
        t.insert(&tuple(i, i % 7, i * 3)).unwrap();
    }
    t
}

// ---------------------------------------------------------------------
// IndexRef handles
// ---------------------------------------------------------------------

#[test]
fn handle_ops_agree_with_via_index_wrappers() {
    let db = Database::open(DbConfig::default());
    let t = cached_table(&db, 500);
    let by_id = t.index("by_id").unwrap();
    assert_eq!(by_id.name(), "by_id");
    assert_eq!(by_id.spec().key, FieldSpec::new(0, 8));

    // get / project agree with the wrappers.
    for id in [0u64, 17, 499] {
        assert_eq!(by_id.get(&be_key(id)).unwrap(), t.get_via_index("by_id", &be_key(id)).unwrap());
        assert_eq!(
            by_id.project(&be_key(id)).unwrap().unwrap().payload,
            t.project_via_index("by_id", &be_key(id)).unwrap().unwrap().payload,
        );
    }
    assert!(by_id.get(&be_key(9999)).unwrap().is_none());

    // Handles are clonable and update/delete maintain every index.
    let h2 = by_id.clone();
    assert!(h2.update(&be_key(3), &tuple(3, 0, 777)).unwrap());
    assert_eq!(by_id.get(&be_key(3)).unwrap().unwrap(), tuple(3, 0, 777));
    assert!(h2.delete(&be_key(3)).unwrap());
    assert!(by_id.get(&be_key(3)).unwrap().is_none());
    assert!(!h2.delete(&be_key(3)).unwrap());
}

#[test]
fn unknown_index_name_errors_once_at_resolution() {
    let db = Database::open(DbConfig::default());
    let t = cached_table(&db, 10);
    assert!(t.index("nope").is_err());
}

// ---------------------------------------------------------------------
// Batched ops
// ---------------------------------------------------------------------

#[test]
fn get_many_matches_point_gets_including_absentees() {
    let db = Database::open(DbConfig::default());
    let t = cached_table(&db, 2000);
    let by_id = t.index("by_id").unwrap();
    by_id.delete(&be_key(100)).unwrap();
    by_id.delete(&be_key(1500)).unwrap();
    // Unsorted, duplicates, deleted keys, never-present keys.
    let mut keys: Vec<[u8; 8]> = Vec::new();
    let mut x = 7u64;
    for _ in 0..1024 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        keys.push(be_key(x % 2500));
    }
    keys.push(be_key(100));
    keys.push(be_key(100));
    let batch = by_id.get_many(&keys).unwrap();
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(batch[i], by_id.get(k).unwrap(), "position {i}");
    }
}

#[test]
fn project_many_serves_cache_hits_and_populates_misses() {
    let db = Database::open(DbConfig::default());
    let t = cached_table(&db, 3000);
    let by_id = t.index("by_id").unwrap();
    let hot: Vec<[u8; 8]> = (0..256u64).map(|i| be_key(i * 11)).collect();
    let first = by_id.project_many(&hot).unwrap();
    for (i, p) in first.iter().enumerate() {
        let p = p.as_ref().expect("present");
        assert_eq!(p.payload, ((i as u64 * 11) * 3).to_le_bytes());
        assert!(!p.index_only, "cold cache must fetch the heap");
    }
    let second = by_id.project_many(&hot).unwrap();
    let warm = second.iter().filter(|p| p.as_ref().unwrap().index_only).count();
    assert!(warm > hot.len() / 2, "only {warm}/{} served from the cache", hot.len());
    let s = t.stats();
    assert!(s.index_only_answers >= warm as u64);
    // Absent keys come back None, in position.
    let mixed = by_id.project_many(&[be_key(0), be_key(999_999)]).unwrap();
    assert!(mixed[0].is_some() && mixed[1].is_none());
}

#[test]
fn project_many_on_plain_index_projects_from_heap() {
    let db = Database::open(DbConfig::default());
    let t = db.create_table("t", 32).unwrap();
    t.create_index(IndexSpec::plain("by_id", FieldSpec::new(0, 8))).unwrap();
    for i in 0..100u64 {
        t.insert(&tuple(i, 0, i)).unwrap();
    }
    let by_id = t.index("by_id").unwrap();
    let got = by_id.project_many(&[be_key(5), be_key(50)]).unwrap();
    for p in got {
        let p = p.unwrap();
        assert!(!p.index_only);
        assert!(p.payload.is_empty(), "plain index has no cached fields");
    }
}

#[test]
fn execute_groups_heterogeneous_ops_per_index() {
    let db = Database::open(DbConfig::default());
    let t = cached_table(&db, 400);
    t.create_index(IndexSpec::plain("by_group", FieldSpec::new(8, 8))).unwrap();
    // groups are 0..7; ids 0..400.
    let batch = Batch::new()
        .get("by_id", &be_key(10))
        .project("by_id", &be_key(20))
        .get("by_group", &be_key(3))
        .get("by_id", &be_key(999_999))
        .project("by_id", &be_key(30));
    assert_eq!(batch.len(), 5);
    let out = t.execute(batch).unwrap();
    assert_eq!(out[0].tuple().unwrap(), &tuple(10, 3, 30)[..]);
    assert_eq!(out[1].projection().unwrap().payload, 60u64.to_le_bytes());
    // by_group key 3 points at some tuple whose group is 3.
    let g = out[2].tuple().expect("group 3 exists");
    assert_eq!(&g[8..16], &be_key(3));
    assert!(out[3].tuple().is_none(), "absent key is None, in position");
    assert_eq!(out[4].projection().unwrap().payload, 90u64.to_le_bytes());
    // Unknown index fails the whole batch.
    assert!(t.execute(Batch::new().get("nope", &be_key(1))).is_err());
    // Empty batch is fine.
    assert_eq!(t.execute(Batch::new()).unwrap().len(), 0);
}

// ---------------------------------------------------------------------
// Range cursors
// ---------------------------------------------------------------------

#[test]
fn execute_write_ops_then_reads_observe_them() {
    let db = Database::open(DbConfig::default());
    let t = cached_table(&db, 100);
    // One batch mixing every op kind. Documented semantics: put →
    // update → delete → read, so the reads see all of this batch's
    // writes regardless of queue position.
    let out = t
        .execute(
            Batch::new()
                .get("by_id", &be_key(200)) // sees the put below
                .put("by_id", &tuple(200, 1, 2000))
                .update("by_id", &be_key(5), &tuple(5, 5, 555))
                .delete("by_id", &be_key(7))
                .get("by_id", &be_key(5))
                .project("by_id", &be_key(7))
                .update("by_id", &be_key(9999), &tuple(9999, 0, 0)) // absent
                .delete("by_id", &be_key(9998)), // absent
        )
        .unwrap();
    assert_eq!(out[0].tuple().unwrap(), &tuple(200, 1, 2000)[..], "read sees the batch's put");
    let rid = out[1].rid().expect("put returns a rid");
    assert_eq!(t.heap().get(rid).unwrap(), tuple(200, 1, 2000));
    assert_eq!(out[2].applied(), Some(true));
    assert_eq!(out[3].applied(), Some(true));
    assert_eq!(out[4].tuple().unwrap(), &tuple(5, 5, 555)[..], "read sees the batch's update");
    assert!(out[5].projection().is_none(), "read sees the batch's delete");
    assert_eq!(out[6].applied(), Some(false));
    assert_eq!(out[7].applied(), Some(false));
    // Cross-check against the table after the batch.
    assert!(t.get_via_index("by_id", &be_key(7)).unwrap().is_none());
    assert_eq!(t.get_via_index("by_id", &be_key(5)).unwrap().unwrap(), tuple(5, 5, 555));
}

#[test]
fn execute_validates_before_touching_anything() {
    let db = Database::open(DbConfig::default());
    let t = cached_table(&db, 10);
    let live_before = t.heap().live_tuple_count().unwrap();
    // Unknown index name fails the whole batch up front: the put never
    // lands even though it precedes the bad op.
    let err = t
        .execute(Batch::new().put("by_id", &tuple(500, 0, 0)).get("nope", &be_key(1)))
        .unwrap_err();
    assert!(matches!(err, StorageError::Corrupt(_)), "unknown index: {err:?}");
    assert_eq!(t.heap().live_tuple_count().unwrap(), live_before);
    // Wrong tuple width on a later op: same story.
    let err = t
        .execute(Batch::new().put("by_id", &tuple(500, 0, 0)).put("by_id", &[0u8; 3]))
        .unwrap_err();
    assert!(matches!(err, StorageError::Corrupt(_)), "bad width: {err:?}");
    assert_eq!(t.heap().live_tuple_count().unwrap(), live_before);
    // Duplicate keys within one write group surface the named error.
    let err = t
        .execute(Batch::new().put("by_id", &tuple(600, 0, 1)).put("by_id", &tuple(600, 0, 2)))
        .unwrap_err();
    assert!(matches!(err, StorageError::DuplicateKeyInBatch { .. }), "dup: {err:?}");
    assert_eq!(t.heap().live_tuple_count().unwrap(), live_before);
}

#[test]
fn put_many_and_delete_many_through_the_handle() {
    let db = Database::open(DbConfig::default());
    let t = cached_table(&db, 50);
    let by_id = t.index("by_id").unwrap();
    // Upsert across the existing/fresh boundary.
    let tuples: Vec<Vec<u8>> = (40..60u64).map(|i| tuple(i, 2, i + 100)).collect();
    let rids = by_id.put_many(&tuples).unwrap();
    assert_eq!(rids.len(), 20);
    for i in 40..60u64 {
        assert_eq!(by_id.get(&be_key(i)).unwrap().unwrap(), tuple(i, 2, i + 100));
    }
    assert_eq!(t.heap().live_tuple_count().unwrap(), 60, "40..50 updated in place");
    // Single put wrapper agrees.
    let rid = by_id.put(&tuple(41, 3, 999)).unwrap();
    assert_eq!(rid, rids[1], "in-place upsert keeps the rid");
    // Batched delete, duplicates idempotent.
    let doomed: Vec<[u8; 8]> = vec![be_key(41), be_key(58), be_key(41)];
    assert_eq!(by_id.delete_many(&doomed).unwrap(), vec![true, true, false]);
    assert!(by_id.get(&be_key(41)).unwrap().is_none());
    // update_many with an absentee.
    let pairs: Vec<([u8; 8], Vec<u8>)> =
        vec![(be_key(42), tuple(42, 9, 1)), (be_key(41), tuple(41, 9, 1))];
    assert_eq!(by_id.update_many(&pairs).unwrap(), vec![true, false]);
}

#[test]
fn range_on_empty_table_yields_nothing() {
    let db = Database::open(DbConfig::default());
    let t = db.create_table("t", 32).unwrap();
    t.create_index(IndexSpec::cached("by_id", FieldSpec::new(0, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    let by_id = t.index("by_id").unwrap();
    assert_eq!(by_id.range_all().count(), 0);
    assert_eq!(by_id.range(&be_key(5)[..]..&be_key(50)[..]).count(), 0);
    assert_eq!(by_id.range_projected_all().count(), 0);
}

#[test]
fn range_over_single_leaf() {
    let db = Database::open(DbConfig::default());
    // A handful of rows stays within one leaf.
    let t = cached_table(&db, 10);
    let by_id = t.index("by_id").unwrap();
    assert_eq!(by_id.tree().height().unwrap(), 1, "10 rows must fit the root leaf");
    let rows: Vec<u64> = by_id
        .range_all()
        .map(|r| u64::from_be_bytes(r.unwrap().tuple[..8].try_into().unwrap()))
        .collect();
    assert_eq!(rows, (0..10).collect::<Vec<_>>());
    let some: Vec<u64> = by_id
        .range(&be_key(3)[..]..&be_key(7)[..])
        .map(|r| u64::from_be_bytes(r.unwrap().tuple[..8].try_into().unwrap()))
        .collect();
    assert_eq!(some, vec![3, 4, 5, 6]);
}

#[test]
fn range_bounds_falling_between_keys() {
    let db = Database::open(DbConfig::default());
    let t = db.create_table("t", 32).unwrap();
    t.create_index(IndexSpec::plain("by_id", FieldSpec::new(0, 8))).unwrap();
    for i in 0..100u64 {
        t.insert(&tuple(i * 10, 0, i)).unwrap(); // keys 0, 10, ..., 990
    }
    let by_id = t.index("by_id").unwrap();
    let ids = |lo: [u8; 8], hi: [u8; 8]| -> Vec<u64> {
        by_id
            .range(&lo[..]..&hi[..])
            .map(|r| u64::from_be_bytes(r.unwrap().key[..8].try_into().unwrap()))
            .collect()
    };
    // Both bounds between keys.
    assert_eq!(ids(be_key(35), be_key(65)), vec![40, 50, 60]);
    // Inclusive upper on an exact key.
    let upto: Vec<u64> = by_id
        .range(&be_key(35)[..]..=&be_key(60)[..])
        .map(|r| u64::from_be_bytes(r.unwrap().key[..8].try_into().unwrap()))
        .collect();
    assert_eq!(upto, vec![40, 50, 60]);
    // Bounds beyond either end.
    assert_eq!(ids(be_key(995), be_key(10_000)), Vec::<u64>::new());
    assert_eq!(ids(be_key(0), be_key(1)), vec![0]);
}

#[test]
fn range_survives_leaf_splits_mid_iteration() {
    let db = Database::open(DbConfig::default());
    let t = db.create_table("t", 32).unwrap();
    t.create_index(IndexSpec::plain("by_id", FieldSpec::new(0, 8))).unwrap();
    // Even ids 0..4000 by 2s; odd ids inserted mid-scan force splits.
    for i in 0..2000u64 {
        t.insert(&tuple(i * 2, 0, i)).unwrap();
    }
    let by_id = t.index("by_id").unwrap();
    let leaves_before = by_id.tree().index_stats().unwrap().leaf_pages;
    let mut cursor = by_id.range_all();
    let mut seen: Vec<u64> = Vec::new();
    // Consume a prefix...
    for _ in 0..100 {
        let row = cursor.next().unwrap().unwrap();
        seen.push(u64::from_be_bytes(row.key[..8].try_into().unwrap()));
    }
    // ...then split leaves across the whole key space mid-iteration.
    for i in 0..2000u64 {
        t.insert(&tuple(i * 2 + 1, 0, i)).unwrap();
    }
    assert!(
        by_id.tree().index_stats().unwrap().leaf_pages > leaves_before,
        "the mid-scan inserts must actually split leaves"
    );
    for row in cursor {
        seen.push(u64::from_be_bytes(row.unwrap().key[..8].try_into().unwrap()));
    }
    // Strictly ascending, and every even id from the original load that
    // lies past the consumed prefix must still be there.
    assert!(seen.windows(2).all(|w| w[0] < w[1]), "cursor order must stay ascending");
    let evens: std::collections::HashSet<u64> =
        seen.iter().copied().filter(|v| v % 2 == 0).collect();
    for v in (0..4000u64).step_by(2) {
        assert!(evens.contains(&v), "pre-existing id {v} lost across the split");
    }
}

#[test]
fn projected_range_serves_warm_entries_index_only_and_warms_cold_ones() {
    let db = Database::open(DbConfig::default());
    let t = cached_table(&db, 1000);
    let by_id = t.index("by_id").unwrap();
    let lo = be_key(100);
    let hi = be_key(200);
    // Cold pass: every projection chases the heap, populating the cache.
    let cold: Vec<bool> =
        by_id.range_projected(&lo[..]..&hi[..]).map(|r| r.unwrap().projection.index_only).collect();
    assert_eq!(cold.len(), 100);
    assert!(cold.iter().all(|&io| !io), "first pass must be all heap fetches");
    // Warm pass: a solid majority now comes straight from leaf free space.
    let rows: Vec<_> = by_id.range_projected(&lo[..]..&hi[..]).map(|r| r.unwrap()).collect();
    assert_eq!(rows.len(), 100);
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.projection.payload, ((100 + i as u64) * 3).to_le_bytes());
    }
    let warm = rows.iter().filter(|r| r.projection.index_only).count();
    assert!(warm > 50, "only {warm}/100 rows served from the cache");
    assert!(t.stats().index_only_answers >= warm as u64);
}

#[test]
fn range_skips_rows_deleted_behind_the_index() {
    let db = Database::open(DbConfig::default());
    let t = cached_table(&db, 50);
    let by_id = t.index("by_id").unwrap();
    let mut cursor = by_id.range_all();
    cursor.next().unwrap().unwrap();
    // Delete rows the cursor has not reached yet — through the heap
    // only, leaving the index entries dangling (the index→heap race).
    let heap_only: Vec<u64> = vec![10, 11, 12];
    for id in &heap_only {
        let ptr = by_id.tree().get(&be_key(*id)).unwrap().unwrap();
        t.heap().delete(nbb::storage::RecordId::from_u64(ptr)).unwrap();
    }
    let rest: Vec<u64> =
        cursor.map(|r| u64::from_be_bytes(r.unwrap().key[..8].try_into().unwrap())).collect();
    for id in heap_only {
        assert!(!rest.contains(&id), "row {id} deleted in the heap must be skipped");
    }
    assert!(rest.contains(&13));
}

// ---------------------------------------------------------------------
// RowSchema bridge
// ---------------------------------------------------------------------

fn articles_schema() -> Schema {
    Schema {
        table: "articles".into(),
        columns: vec![
            ColumnDef::new("id", DeclaredType::Int64),
            ColumnDef::new("views", DeclaredType::Int32),
            ColumnDef::new("title", DeclaredType::Str { width: 12 }),
            ColumnDef::new("minor", DeclaredType::Bool),
        ],
    }
}

#[test]
fn row_schema_declares_indexes_and_round_trips_rows() {
    let schema = articles_schema();
    let rows = RowSchema::new(&schema);
    assert_eq!(rows.tuple_width(), 8 + 4 + 12 + 1);
    assert_eq!(rows.field("views").unwrap(), FieldSpec::new(8, 4));

    let db = Database::open(DbConfig::default());
    let t = db.create_table_with(&rows).unwrap();
    assert_eq!(t.name(), "articles");
    let spec = rows.index_spec("by_id", "id", &["views", "minor"]).unwrap();
    assert_eq!(spec.key, FieldSpec::new(0, 8));
    assert_eq!(spec.cached_fields, vec![FieldSpec::new(8, 4), FieldSpec::new(24, 1)]);
    t.create_index(spec.clone()).unwrap();

    for i in 0..300i64 {
        let row = vec![
            Value::Int(i),
            Value::Int(i * 2),
            Value::Str(format!("page_{i}")),
            Value::Bool(i % 3 == 0),
        ];
        t.insert(&rows.encode(&row).unwrap()).unwrap();
    }
    let by_id = t.index("by_id").unwrap();
    let tuple = by_id.get(&rows.key("id", &Value::Int(42)).unwrap()).unwrap().unwrap();
    assert_eq!(
        rows.decode(&tuple).unwrap(),
        vec![Value::Int(42), Value::Int(84), Value::str("page_42"), Value::Bool(true)],
    );

    // Projections decode back to named typed values.
    let p = by_id.project(&rows.key("id", &Value::Int(7)).unwrap()).unwrap().unwrap();
    let fields = rows.decode_projection(&spec, &p.payload).unwrap();
    assert_eq!(
        fields,
        vec![("views".to_string(), Value::Int(14)), ("minor".to_string(), Value::Bool(false))],
    );

    // Typed range bounds: ids 100..110, numeric order == byte order.
    let lo = rows.key("id", &Value::Int(100)).unwrap();
    let hi = rows.key("id", &Value::Int(110)).unwrap();
    let ids: Vec<i64> = by_id
        .range(&lo[..]..&hi[..])
        .map(|r| match rows.decode(&r.unwrap().tuple).unwrap()[0] {
            Value::Int(i) => i,
            ref v => panic!("{v:?}"),
        })
        .collect();
    assert_eq!(ids, (100..110).collect::<Vec<_>>());
}

#[test]
fn row_schema_negative_keys_sort_before_positive() {
    let schema = articles_schema();
    let rows = RowSchema::new(&schema);
    let db = Database::open(DbConfig::default());
    let t = db.create_table_with(&rows).unwrap();
    t.create_index(rows.index_spec("by_id", "id", &[]).unwrap()).unwrap();
    for i in [-5i64, -1, 0, 3, 9] {
        let row = vec![Value::Int(i), Value::Int(0), Value::str("x"), Value::Bool(false)];
        t.insert(&rows.encode(&row).unwrap()).unwrap();
    }
    let by_id = t.index("by_id").unwrap();
    let lo = rows.key("id", &Value::Int(-2)).unwrap();
    let hi = rows.key("id", &Value::Int(4)).unwrap();
    let ids: Vec<i64> = by_id
        .range(&lo[..]..=&hi[..])
        .map(|r| match rows.decode(&r.unwrap().tuple).unwrap()[0] {
            Value::Int(i) => i,
            ref v => panic!("{v:?}"),
        })
        .collect();
    assert_eq!(ids, vec![-1, 0, 3]);
}

#[test]
fn row_schema_type_errors_are_surfaced() {
    let rows = RowSchema::new(&articles_schema());
    assert!(rows.field("nope").is_err());
    assert!(rows.index_spec("x", "nope", &[]).is_err());
    assert!(rows.index_spec("x", "id", &["nope"]).is_err());
    assert!(rows.encode(&[Value::Int(1)]).is_err());
    assert!(rows
        .encode(&[Value::Bool(true), Value::Int(0), Value::str("x"), Value::Bool(false)])
        .is_err());
    assert!(rows.key("id", &Value::str("not an int")).is_err());
    assert!(rows.decode(&[0u8; 3]).is_err());
}

// ---------------------------------------------------------------------
// IndexSpec validation
// ---------------------------------------------------------------------

#[test]
fn invalid_index_specs_return_named_errors() {
    let db = Database::open(DbConfig::default());
    let t = db.create_table("t", 32).unwrap();
    let named = |r: nbb::storage::error::Result<()>| match r {
        Err(StorageError::InvalidIndexSpec { index, reason }) => (index, reason),
        other => panic!("expected InvalidIndexSpec, got {other:?}"),
    };
    // Key out of bounds.
    let (idx, reason) = named(t.create_index(IndexSpec::plain("oob", FieldSpec::new(30, 8))));
    assert_eq!(idx, "oob");
    assert!(reason.contains("30..38"), "{reason}");
    // Empty key.
    let (_, reason) = named(t.create_index(IndexSpec::plain("empty", FieldSpec::new(0, 0))));
    assert!(reason.contains("empty"), "{reason}");
    // Cached field out of bounds.
    let (_, reason) = named(t.create_index(IndexSpec::cached(
        "cf_oob",
        FieldSpec::new(0, 8),
        vec![FieldSpec::new(28, 8)],
    )));
    assert!(reason.contains("cached field"), "{reason}");
    // Cached field overlapping the key.
    let (idx, reason) = named(t.create_index(IndexSpec::cached(
        "overlap",
        FieldSpec::new(0, 8),
        vec![FieldSpec::new(4, 8)],
    )));
    assert_eq!(idx, "overlap");
    assert!(reason.contains("overlap"), "{reason}");
    // A valid spec still works afterwards.
    t.create_index(IndexSpec::cached("ok", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
        .unwrap();
}
