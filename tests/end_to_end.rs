//! End-to-end integration: the full stack from synthetic Wikipedia
//! through cached indexes, clustering, and the waste audit.

use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec};
use nbb::core::waste;
use nbb::storage::DiskModel;
use nbb::workload::{WikiGenerator, REVISION_ROW_WIDTH};

fn be_key(id: u64) -> [u8; 8] {
    id.to_be_bytes()
}

/// Builds the revision table with a big-endian rev_id key prefix.
fn load_revisions(
    db: &Database,
    n_pages: u64,
    revs: usize,
    seed: u64,
) -> (std::sync::Arc<nbb::core::table::Table>, Vec<u64>, usize) {
    let mut gen = WikiGenerator::new(seed);
    let mut pages = gen.pages(n_pages);
    let revisions = gen.revisions(&mut pages, revs);
    let t = db.create_table("revision", REVISION_ROW_WIDTH).unwrap();
    for r in &revisions {
        let mut row = r.encode();
        row[..8].copy_from_slice(&be_key(r.id));
        t.insert(&row).unwrap();
    }
    t.create_index(IndexSpec::cached(
        "by_rev_id",
        FieldSpec::new(0, 8),
        vec![FieldSpec::new(8, 8)], // cache rev_page
    ))
    .unwrap();
    let hot: Vec<u64> = pages.iter().map(|p| p.latest_rev).collect();
    (t, hot, revisions.len())
}

#[test]
fn full_stack_lookup_correctness() {
    let db = Database::open(DbConfig::default());
    let (t, hot, total) = load_revisions(&db, 200, 10, 1);
    // Every revision resolvable; payload equals the stored field.
    for id in 1..=total as u64 {
        let tuple = t.get_via_index("by_rev_id", &be_key(id)).unwrap().unwrap();
        let page_id = u64::from_le_bytes(tuple[8..16].try_into().unwrap());
        let proj = t.project_via_index("by_rev_id", &be_key(id)).unwrap().unwrap();
        assert_eq!(proj.payload, page_id.to_le_bytes());
    }
    // Second pass over the hot set: mostly index-only now.
    let before = t.stats().index_only_answers;
    for id in &hot {
        t.project_via_index("by_rev_id", &be_key(*id)).unwrap().unwrap();
    }
    let after = t.stats().index_only_answers;
    assert!(
        after - before > hot.len() as u64 / 2,
        "warm hot set should answer index-only ({} of {})",
        after - before,
        hot.len()
    );
}

#[test]
fn clustering_plus_partitioning_cut_io_in_order() {
    // The Figure 3 shape through the public API at test scale.
    let run = |cluster: bool, partition: bool| -> u64 {
        let db = Database::open(DbConfig {
            page_size: 8192,
            heap_frames: 12,
            index_frames: 6,
            disk_model: Some(DiskModel { read_ns: 1000, write_ns: 1000 }),
            ..DbConfig::default()
        });
        if partition {
            let mut gen = WikiGenerator::new(5);
            let mut pages = gen.pages(400);
            let revisions = gen.revisions(&mut pages, 10);
            let hotset: std::collections::HashSet<u64> =
                pages.iter().map(|p| p.latest_rev).collect();
            let hot_t = db.create_table("hot", REVISION_ROW_WIDTH).unwrap();
            let cold_t = db.create_table("cold", REVISION_ROW_WIDTH).unwrap();
            for r in &revisions {
                let mut row = r.encode();
                row[..8].copy_from_slice(&be_key(r.id));
                if hotset.contains(&r.id) {
                    hot_t.insert(&row).unwrap();
                } else {
                    cold_t.insert(&row).unwrap();
                }
            }
            hot_t.create_index(IndexSpec::plain("by_rev_id", FieldSpec::new(0, 8))).unwrap();
            db.reset_stats();
            for id in &hotset {
                hot_t.get_via_index("by_rev_id", &be_key(*id)).unwrap().unwrap();
            }
            let (h, i) = db.io_stats();
            return h.reads + i.reads;
        }
        let (t, hot, _) = load_revisions(&db, 400, 10, 5);
        if cluster {
            let idx = t.index_tree("by_rev_id").unwrap();
            for id in &hot {
                let ptr = idx.tree().get(&be_key(*id)).unwrap().unwrap();
                t.relocate(nbb::storage::RecordId::from_u64(ptr)).unwrap();
            }
        }
        db.reset_stats();
        for id in &hot {
            t.get_via_index("by_rev_id", &be_key(*id)).unwrap().unwrap();
        }
        let (h, i) = db.io_stats();
        h.reads + i.reads
    };
    let baseline = run(false, false);
    let clustered = run(true, false);
    let partitioned = run(false, true);
    assert!(clustered < baseline, "clustering must cut I/O: {clustered} vs {baseline}");
    assert!(partitioned < clustered, "partitioning must cut more: {partitioned} vs {clustered}");
}

#[test]
fn waste_audit_covers_all_three_classes() {
    use nbb::encoding::{ColumnDef, DeclaredType, Schema, Value};
    let db = Database::open(DbConfig::default());
    let (t, hot, _) = load_revisions(&db, 100, 10, 9);
    let idx = t.index_tree("by_rev_id").unwrap();
    let hot_rids: Vec<_> = hot
        .iter()
        .map(|id| nbb::storage::RecordId::from_u64(idx.tree().get(&be_key(*id)).unwrap().unwrap()))
        .collect();
    let schema = Schema {
        table: "revision".into(),
        columns: vec![ColumnDef::new("rev_id", DeclaredType::Int64)],
    };
    let decode: &dyn Fn(&[u8]) -> Vec<Value> =
        &|b| vec![Value::Int(i64::from_be_bytes(b[..8].try_into().unwrap()))];
    let report =
        waste::audit(&t, &["by_rev_id"], Some(&hot_rids), Some((&schema, decode, 500))).unwrap();
    // Unused space: a real index with measurable free bytes.
    assert!(report.unused.indexes[0].free_bytes > 0);
    // Locality: scattered hot set -> low utilization.
    let loc = report.locality.as_ref().unwrap();
    assert!(loc.hot_utilization < 0.5, "{loc:?}");
    // Encoding: ids fit far fewer bits than declared.
    let enc = report.encoding.as_ref().unwrap();
    assert!(enc.waste_fraction() > 0.5);
    // Render shows everything.
    let text = report.render();
    assert!(text.contains("[unused space]") && text.contains("[locality]"));
}

#[test]
fn simulated_crash_invalidates_caches_but_preserves_data() {
    let db = Database::open(DbConfig::default());
    let (t, hot, total) = load_revisions(&db, 100, 10, 13);
    for id in &hot {
        t.project_via_index("by_rev_id", &be_key(*id)).unwrap();
        t.project_via_index("by_rev_id", &be_key(*id)).unwrap();
    }
    let idx = t.index_tree("by_rev_id").unwrap();
    assert!(idx.tree().cache_stats().hits > 0);
    // "Crash": all page caches become invalid via the CSN bump.
    idx.tree().invalidate_all_caches();
    let hits_before = idx.tree().cache_stats().hits;
    for id in 1..=total as u64 {
        assert!(
            t.get_via_index("by_rev_id", &be_key(id)).unwrap().is_some(),
            "data must survive the crash"
        );
    }
    // First post-crash cached lookup for each key misses.
    let m = idx.tree().lookup_cached(&be_key(hot[0])).unwrap();
    assert!(m.payload.is_none());
    assert_eq!(idx.tree().cache_stats().hits, hits_before);
}
