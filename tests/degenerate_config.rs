//! The degenerate configuration: one pool stripe, synchronous
//! write-back (`write_behind = 0`), one intent stripe.
//!
//! Every concurrency structure in the engine is striped or queued for
//! parallelism, and each has a single-stripe / disabled mode that the
//! fast paths rarely exercise — exactly the code that rots first. This
//! suite runs a representative workload (mixed singles + batches vs a
//! model, a same-key storm, persist/reopen) with every knob forced to
//! its degenerate value; CI runs it as a dedicated job so a regression
//! here cannot hide behind the default configuration.

use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec};
use std::collections::HashMap;
use std::sync::Barrier;

fn degenerate_config() -> DbConfig {
    DbConfig {
        page_size: 4096,
        heap_frames: 32,
        index_frames: 32,
        pool_shards: 1,
        write_behind: 0,
        flusher_threads: 1,
        intent_stripes: 1,
        compressed_budget_bytes: 0,
        tuning_interval: None,
        readahead: 0,
        ..DbConfig::default()
    }
}

/// 24-byte tuple: key(8) | group(8) | value(8).
fn tuple(key: u64, group: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&group.to_be_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t
}

#[test]
fn knobs_actually_degenerate() {
    let db = Database::open(degenerate_config());
    assert_eq!(db.heap_pool().shards(), 1);
    assert_eq!(db.index_pool().shards(), 1);
    assert_eq!(db.heap_pool().write_behind(), 0);
    assert_eq!(db.index_pool().write_behind(), 0);
    let t = db.create_table("t", 24).unwrap();
    assert_eq!(t.intent_stripes(), 1, "intent stripe knob must thread through");
}

#[test]
fn mixed_workload_matches_model_on_degenerate_config() {
    let db = Database::open(degenerate_config());
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    let pk = t.index("pk").unwrap();
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut x = 7u64;
    for step in 0..4000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let id = x % 200;
        match x % 8 {
            0 => {
                let v = x % 10_000;
                pk.put(&tuple(id, 0, v)).unwrap();
                model.insert(id, v);
            }
            1 => {
                let existed = pk.delete(&id.to_be_bytes()).unwrap();
                assert_eq!(existed, model.remove(&id).is_some(), "step {step}");
            }
            2 => {
                // Batched leg: 8 sequential keys through put_many.
                let base = (x >> 8) % 200;
                let batch: Vec<Vec<u8>> = (base..base + 8).map(|k| tuple(k, 1, k + step)).collect();
                pk.put_many(&batch).unwrap();
                for k in base..base + 8 {
                    model.insert(k, k + step);
                }
            }
            3 => {
                let base = (x >> 8) % 200;
                let keys: Vec<[u8; 8]> = (base..base + 4).map(|k| k.to_be_bytes()).collect();
                let gone = pk.delete_many(&keys).unwrap();
                for (j, k) in (base..base + 4).enumerate() {
                    assert_eq!(gone[j], model.remove(&k).is_some(), "step {step} key {k}");
                }
            }
            _ => {
                let got = pk.project(&id.to_be_bytes()).unwrap();
                match (got, model.get(&id)) {
                    (Some(p), Some(v)) => assert_eq!(p.payload, v.to_le_bytes(), "step {step}"),
                    (None, None) => {}
                    (g, m) => panic!("step {step} id {id}: {:?} vs {m:?}", g.map(|p| p.payload)),
                }
            }
        }
    }
    assert_eq!(t.heap().live_tuple_count().unwrap(), model.len());
    assert!(t.index_tree("pk").unwrap().tree().check_invariants().unwrap().is_ok());
}

#[test]
fn same_key_storm_on_single_intent_stripe() {
    const WRITERS: u64 = 8;
    const ROUNDS: u64 = 50;
    let db = Database::open(degenerate_config());
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::plain("pk", FieldSpec::new(0, 8))).unwrap();
    let barrier = Barrier::new(WRITERS as usize);
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let t = &t;
            let barrier = &barrier;
            s.spawn(move || {
                let pk = t.index("pk").unwrap();
                barrier.wait();
                for r in 0..ROUNDS {
                    match (w + r) % 3 {
                        0 => {
                            pk.put(&tuple(9, w, r)).unwrap();
                        }
                        1 => {
                            pk.update(&9u64.to_be_bytes(), &tuple(9, w, r)).unwrap();
                        }
                        _ => {
                            pk.delete(&9u64.to_be_bytes()).unwrap();
                        }
                    }
                }
            });
        }
    });
    let live = t.heap().live_tuple_count().unwrap();
    let via_pk = t.get_via_index("pk", &9u64.to_be_bytes()).unwrap();
    assert_eq!(live, usize::from(via_pk.is_some()), "heap and index agree after the storm");
    assert!(t.index_tree("pk").unwrap().tree().intents().is_idle());
}

/// The compression axis: the compressed frame tier composed with every
/// other knob at its degenerate value. Budget 0 must be *bit-identical*
/// to the pre-tier engine — dormant counters and byte-for-byte equal
/// durable state — while a nonzero budget on the same single-stripe,
/// synchronous-write-back config must actually serve refaults from
/// memory without perturbing a single durable byte.
#[test]
fn compression_axis_budget_zero_is_bit_identical_and_budget_on_serves_faults() {
    use nbb::storage::{DiskManager, InMemoryDisk, Page, PageId};
    use std::sync::Arc;
    const ROWS: u64 = 20_000;

    // One deterministic workload, parameterized only by the budget: the
    // 32-frame degenerate pools hold ~1/8 of the pages this creates, so
    // the read-back phase is all refaults.
    fn run(budget: usize) -> (Arc<InMemoryDisk>, Arc<InMemoryDisk>, u64) {
        let heap = Arc::new(InMemoryDisk::new(4096));
        let index = Arc::new(InMemoryDisk::new(4096));
        let config = DbConfig { compressed_budget_bytes: budget, ..degenerate_config() };
        let db = Database::with_disks(
            config,
            Arc::clone(&heap) as Arc<dyn DiskManager>,
            Arc::clone(&index) as Arc<dyn DiskManager>,
        )
        .unwrap();
        let t = db.create_table("t", 24).unwrap();
        t.create_index(IndexSpec::plain("pk", FieldSpec::new(0, 8))).unwrap();
        for k in 0..ROWS {
            t.insert(&tuple(k, k % 5, k * 3)).unwrap();
        }
        // persist() is a flush barrier and therefore also drains the
        // compressor queue: the read-back faults against a settled tier.
        db.persist().unwrap();
        for k in (0..ROWS).step_by(7) {
            assert_eq!(
                t.get_via_index("pk", &k.to_be_bytes()).unwrap().unwrap(),
                tuple(k, k % 5, k * 3)
            );
        }
        let stats = t.stats();
        if budget == 0 {
            assert_eq!(stats.pool_compressed_hits, 0, "budget 0 must leave the tier dormant");
            assert_eq!(stats.pool_compressed_pages, 0);
            assert_eq!(stats.pool_decompress_stalls, 0);
        }
        let hits = stats.pool_compressed_hits;
        drop(t);
        db.close().unwrap();
        (heap, index, hits)
    }

    let (heap_off, index_off, _) = run(0);
    let (heap_on, index_on, hits_on) = run(1 << 20);
    assert!(hits_on > 0, "the budget-on run must serve refaults from the tier");

    // The tier is a pure read-side accelerator: every durable byte must
    // come out identical with it on or off.
    for (name, off, on) in [("heap", heap_off, heap_on), ("index", index_off, index_on)] {
        assert_eq!(off.num_pages(), on.num_pages(), "{name} page counts diverged");
        for id in 0..off.num_pages() {
            let mut a = Page::new(4096);
            let mut b = Page::new(4096);
            off.read(PageId(id), &mut a).unwrap();
            on.read(PageId(id), &mut b).unwrap();
            assert_eq!(a.bytes(), b.bytes(), "{name} page {id} diverged under compression");
        }
    }
}

/// The flusher axis: a real write-behind queue drained by *several*
/// claimer threads, composed with every other knob at its degenerate
/// value. Each queued slot must be written exactly once no matter which
/// thread claims it, and close() must remain a full drain barrier, so a
/// reopen sees the last version of every row.
#[test]
fn flusher_axis_many_threads_drain_every_queued_write() {
    use nbb::storage::{DiskManager, InMemoryDisk};
    use std::sync::Arc;
    let heap: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    let index: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    let config = DbConfig { write_behind: 8, flusher_threads: 4, ..degenerate_config() };
    let db = Database::with_disks(config.clone(), Arc::clone(&heap), Arc::clone(&index)).unwrap();
    assert_eq!(db.heap_pool().flusher_threads(), 4);
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::plain("pk", FieldSpec::new(0, 8))).unwrap();
    // Insert, then overwrite every row: the 32-frame pool evicts dirty
    // pages through the queue repeatedly, and only the *last* version
    // of each row may survive the drain.
    for k in 0..2000u64 {
        t.insert(&tuple(k, 0, k)).unwrap();
    }
    let pk = t.index("pk").unwrap();
    for k in 0..2000u64 {
        pk.update(&k.to_be_bytes(), &tuple(k, 1, k * 2)).unwrap();
    }
    db.close().unwrap();

    let db = Database::reopen(config, heap, index).unwrap();
    let t = db.table("t").unwrap();
    let mut rows = 0u64;
    let mut sum = 0u64;
    t.scan(|_, tuple| {
        rows += 1;
        sum += u64::from_le_bytes(tuple[16..24].try_into().unwrap());
        true
    })
    .unwrap();
    assert_eq!(rows, 2000, "multi-threaded drain lost rows");
    assert_eq!(sum, (0..2000u64).map(|k| k * 2).sum::<u64>(), "a stale version survived");
}

/// The tuning axis: the background controller live (1 ms interval)
/// underneath a mixed read/write workload, with multiple flushers and
/// every other knob degenerate. The tuner may only move cache-space
/// budgets — correctness of every read and every durable byte must be
/// untouched while it reallocates under our feet.
#[test]
fn tuning_axis_controller_runs_under_a_live_workload() {
    use std::time::Duration;
    let config = DbConfig {
        flusher_threads: 2,
        write_behind: 4,
        tuning_interval: Some(Duration::from_millis(1)),
        ..degenerate_config()
    };
    let db = Database::open(config);
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    t.create_index(IndexSpec::cached("grp", FieldSpec::new(8, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    let pk = t.index("pk").unwrap();
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut x = 13u64;
    for step in 0..3000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let id = x % 150;
        match x % 6 {
            0 | 1 => {
                let v = x % 10_000;
                pk.put(&tuple(id, id, v)).unwrap();
                model.insert(id, v);
            }
            2 => {
                let existed = pk.delete(&id.to_be_bytes()).unwrap();
                assert_eq!(existed, model.remove(&id).is_some(), "step {step}");
            }
            _ => {
                let got = pk.project(&id.to_be_bytes()).unwrap();
                match (got, model.get(&id)) {
                    (Some(p), Some(v)) => assert_eq!(p.payload, v.to_le_bytes(), "step {step}"),
                    (None, None) => {}
                    (g, m) => panic!("step {step} id {id}: {:?} vs {m:?}", g.map(|p| p.payload)),
                }
            }
        }
    }
    assert_eq!(t.heap().live_tuple_count().unwrap(), model.len());
    // Shutdown while the tuner is mid-interval must not hang or panic.
    drop(db);
}

#[test]
fn persist_reopen_round_trips_on_degenerate_config() {
    use nbb::storage::{DiskManager, InMemoryDisk};
    use std::sync::Arc;
    let heap: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    let index: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    let config = degenerate_config();
    let db = Database::with_disks(config.clone(), Arc::clone(&heap), Arc::clone(&index)).unwrap();
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::plain("pk", FieldSpec::new(0, 8))).unwrap();
    for k in 0..300u64 {
        t.insert(&tuple(k, k % 7, k * 2)).unwrap();
    }
    db.close().unwrap();
    let db = Database::reopen(config, heap, index).unwrap();
    let t = db.table("t").unwrap();
    assert_eq!(t.intent_stripes(), 1, "attach must thread the stripe knob too");
    for k in (0..300u64).step_by(37) {
        assert_eq!(
            t.get_via_index("pk", &k.to_be_bytes()).unwrap().unwrap(),
            tuple(k, k % 7, k * 2)
        );
    }
}
