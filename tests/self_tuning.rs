//! End-to-end coverage for the self-tuning free-space controller.
//!
//! Two contracts matter at the database boundary:
//!
//! 1. **Off means off.** `tuning_interval: None` (the default) must be
//!    bit-identical to the pre-tuner engine: no thread, no surfaces, no
//!    decisions, and byte-for-byte identical durable state — and even
//!    turning the knob *on* without a tick firing must not perturb a
//!    single durable byte.
//! 2. **On means convergent.** Under a workload that starves one
//!    cached index while another earns all the hits, manual
//!    [`Database::tuning_tick`] rounds must reallocate leaf cache
//!    space toward the hot index within a small number of ticks, and
//!    the decision must be visible in the waste report.

use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec};
use nbb::storage::{DiskManager, InMemoryDisk, Page, PageId};
use std::sync::Arc;
use std::time::Duration;

/// 24-byte tuple: key(8) | group(8) | value(8).
fn tuple(key: u64, group: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&group.to_be_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t
}

/// One deterministic workload, parameterized only by the tuning knob.
/// The interval (when on) is an hour, so the background thread wakes
/// zero times during the run: any byte difference would be caused by
/// the mere presence of the tuner machinery, which is exactly what
/// must not happen.
fn run(tuning: Option<Duration>) -> (Arc<InMemoryDisk>, Arc<InMemoryDisk>, Vec<String>) {
    let heap = Arc::new(InMemoryDisk::new(4096));
    let index = Arc::new(InMemoryDisk::new(4096));
    let config = DbConfig {
        page_size: 4096,
        heap_frames: 32,
        index_frames: 32,
        tuning_interval: tuning,
        ..DbConfig::default()
    };
    let db = Database::with_disks(
        config,
        Arc::clone(&heap) as Arc<dyn DiskManager>,
        Arc::clone(&index) as Arc<dyn DiskManager>,
    )
    .unwrap();
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    for k in 0..3000u64 {
        t.insert(&tuple(k, k % 5, k * 3)).unwrap();
    }
    let pk = t.index("pk").unwrap();
    for k in (0..3000u64).step_by(3) {
        pk.project(&k.to_be_bytes()).unwrap().unwrap();
        pk.project(&k.to_be_bytes()).unwrap().unwrap(); // second hit: cached
    }
    let decisions = db.tuner_decisions();
    db.close().unwrap();
    (heap, index, decisions)
}

#[test]
fn tuning_off_is_byte_identical_to_tuning_armed_but_idle() {
    let (heap_off, index_off, decisions_off) = run(None);
    let (heap_on, index_on, decisions_idle) = run(Some(Duration::from_secs(3600)));
    assert!(decisions_off.is_empty(), "tuning off can have no decisions");
    assert!(decisions_idle.is_empty(), "an idle tuner must not have decided anything");

    for (name, off, on) in [("heap", heap_off, heap_on), ("index", index_off, index_on)] {
        assert_eq!(off.num_pages(), on.num_pages(), "{name} page counts diverged");
        for id in 0..off.num_pages() {
            let mut a = Page::new(4096);
            let mut b = Page::new(4096);
            off.read(PageId(id), &mut a).unwrap();
            on.read(PageId(id), &mut b).unwrap();
            assert_eq!(a.bytes(), b.bytes(), "{name} page {id} diverged under the tuner knob");
        }
    }
}

#[test]
fn starved_hot_index_gains_cache_space_within_a_few_ticks() {
    // Interval of an hour: background ticks never fire, so the test
    // drives the controller deterministically through tuning_tick().
    let db = Database::open(DbConfig {
        heap_frames: 64,
        index_frames: 64,
        tuning_interval: Some(Duration::from_secs(3600)),
        ..DbConfig::default()
    });
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::cached("hot", FieldSpec::new(0, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    t.create_index(IndexSpec::cached("cold", FieldSpec::new(8, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    for k in 0..3000u64 {
        // Distinct group values so `cold` is a real (but unqueried) index.
        t.insert(&tuple(k, 1_000_000 + k, k * 3)).unwrap();
    }

    // All hits go to `hot`; `cold` earns nothing. Within K ticks the
    // controller must move leaf cache bytes cold → hot. (Tick 1 can
    // only record baselines — a cumulative counter needs two points.)
    let hot = t.index("hot").unwrap();
    const K: usize = 6;
    let mut decision = None;
    for round in 0..K {
        for k in (0..3000u64).step_by(5) {
            hot.project(&k.to_be_bytes()).unwrap().unwrap();
            hot.project(&k.to_be_bytes()).unwrap().unwrap();
        }
        if let Some(d) = db.tuning_tick() {
            decision = Some((round, d));
            break;
        }
    }
    let (_, d) = decision.expect("controller never reallocated within K ticks");
    assert_eq!(d.to.to_string(), "leaf-cache idx=t/hot", "bytes must flow to the hot index");
    assert_eq!(d.from.to_string(), "leaf-cache idx=t/cold", "the starved donor is the cold index");
    assert!(d.to_value > d.from_value, "the move must follow the measured hit value");

    // The resize hooks actually landed: both trees now run with an
    // explicit per-leaf cache-space target.
    assert!(t.index_tree("hot").unwrap().tree().cache_space_target().is_some());
    assert!(t.index_tree("cold").unwrap().tree().cache_space_target().is_some());

    // And the decision is observable where the paper wants it: in the
    // waste report.
    let report = db.waste_report("t", &["hot", "cold"]).unwrap();
    assert!(!report.tuner.is_empty());
    let rendered = report.render();
    assert!(rendered.contains("[tuner]"), "report must carry the tuner section:\n{rendered}");
    assert!(
        rendered.contains("tuner: moved") && rendered.contains("leaf-cache idx=t/hot"),
        "decision line missing:\n{rendered}"
    );

    // The engine stays correct after the reallocation.
    for k in (0..3000u64).step_by(17) {
        assert_eq!(
            t.get_via_index("hot", &k.to_be_bytes()).unwrap().unwrap(),
            tuple(k, 1_000_000 + k, k * 3)
        );
    }
}

/// Builds the starved-cold / hot-index database used by the knob tests
/// and drives manual ticks until the controller decides (or `ticks`
/// rounds pass). Returns the first decision, if any.
/// With `cold_hits`, the cold index also earns a trickle of hits each
/// round — a nonzero donor value, which is what the hysteresis factor
/// multiplies (a zero-value donor is vetoed by nothing).
fn drive_until_decision(
    config: DbConfig,
    ticks: usize,
    cold_hits: bool,
) -> Option<nbb::core::tuner::TunerDecision> {
    let db = Database::open(DbConfig {
        heap_frames: 64,
        index_frames: 64,
        tuning_interval: Some(Duration::from_secs(3600)),
        ..config
    });
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::cached("hot", FieldSpec::new(0, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    t.create_index(IndexSpec::cached("cold", FieldSpec::new(8, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    for k in 0..3000u64 {
        t.insert(&tuple(k, 1_000_000 + k, k * 3)).unwrap();
    }
    let hot = t.index("hot").unwrap();
    let cold = t.index("cold").unwrap();
    for _ in 0..ticks {
        for k in (0..3000u64).step_by(5) {
            hot.project(&k.to_be_bytes()).unwrap().unwrap();
            hot.project(&k.to_be_bytes()).unwrap().unwrap();
        }
        if cold_hits {
            for k in (0..3000u64).step_by(500) {
                let g = (1_000_000 + k).to_be_bytes();
                cold.project(&g).unwrap().unwrap();
                cold.project(&g).unwrap().unwrap();
            }
        }
        if let Some(d) = db.tuning_tick() {
            return Some(d);
        }
    }
    None
}

#[test]
fn tuner_knobs_thread_through_db_config() {
    // Step size: a distinctive 1 KiB cap must bound the first move
    // (the donor holds far more than min_bytes + 1 KiB, so the cap is
    // the binding constraint, not the donor's floor).
    let d =
        drive_until_decision(DbConfig { tuner_step_bytes: 1024, ..DbConfig::default() }, 6, false)
            .expect("controller never reallocated within the tick budget");
    assert_eq!(d.moved_bytes, 1024, "step_bytes must cap the move");

    // Hysteresis: with the default factor the lopsided workload moves
    // bytes; an absurd factor vetoes the very same workload (the hot
    // index can never out-earn the cold one by 1e9×). The cold index
    // earns a trickle so the donor's value is nonzero — what the
    // factor actually multiplies.
    assert!(
        drive_until_decision(DbConfig::default(), 6, true).is_some(),
        "the default hysteresis must allow this lopsided move"
    );
    assert!(
        drive_until_decision(DbConfig { tuner_hysteresis: 1e9, ..DbConfig::default() }, 6, true)
            .is_none(),
        "an absurd hysteresis factor must veto every move"
    );
}

#[test]
fn readahead_advice_line_grades_the_speculation_win_rate() {
    // Readahead on, tuner off: the [tuner] section must still carry the
    // advice line, because the knob it points at is a config knob, not
    // the controller's. The index pool is kept smaller than the leaf
    // set so the scan faults (a fully resident index never speculates).
    let db = Database::open(DbConfig { readahead: 4, index_frames: 16, ..DbConfig::default() });
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    // Enough rows that the leaf set dwarfs the 16-frame index pool: the
    // scan's resident frontier is always ahead of the cursor, so every
    // refill has something real to speculate on.
    for k in 0..12_000u64 {
        t.insert(&tuple(k, k % 7, k * 3)).unwrap();
    }

    // An ascending full scan demand-touches every leaf the cursor
    // speculatively loaded just behind the refill that issued it:
    // near-perfect win rate, so the advice must grade the knob as
    // worth raising.
    let pk = t.index("pk").unwrap();
    assert_eq!(pk.range_all().count(), 12_000);
    let stats = t.stats();
    assert!(stats.pool_prefetch_issued > 0, "the scan must actually speculate");
    assert!(stats.pool_prefetch_hits > 0, "sequential readahead must pay off");

    let report = db.waste_report("t", &["pk"]).unwrap();
    let line = report
        .tuner
        .iter()
        .find(|l| l.starts_with("readahead K=4:"))
        .unwrap_or_else(|| panic!("advice line missing from {:?}", report.tuner));
    assert!(
        line.ends_with("consider raising"),
        "a sequential scan's win rate must grade high: {line}"
    );
    assert!(line.contains("% useful"), "the line must carry the measured rate: {line}");
    let rendered = report.render();
    assert!(rendered.contains("[tuner]"), "advice must render under [tuner]:\n{rendered}");

    // Off stays silent: the sibling default-config test pins that a
    // zero-readahead database renders no [tuner] section at all.
}
