//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! Provides [`Rng`], [`SeedableRng`] and [`rngs::SmallRng`] (backed by
//! xoshiro256++ with SplitMix64 seeding — the same generator family the
//! real `SmallRng` uses on 64-bit targets). Only the methods the nbb
//! crates call are implemented: `gen`, `gen_range`, `gen_bool`.
//!
//! Streams are deterministic per seed, which is all the workspace's
//! reproducible experiments require; no claims of statistical parity
//! with upstream `rand` streams for the same seed.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Element types [`Rng::gen_range`] can draw uniformly.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`hi` exclusive).
    fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]` (`hi` inclusive).
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`]. The element type is a
/// type parameter (not an associated type) so integer-literal inference
/// flows backwards from the call site's expected output type, matching
/// upstream `rand`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the (non-empty) range.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// A source of randomness (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from `range`. Panics if the range is empty.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from seed material (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range on empty range");
                // Widen through i128 so signed spans stay exact.
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let draw = u128::sample_standard(rng) % span;
                (lo as i128).wrapping_add(draw as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range on empty range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                let draw = u128::sample_standard(rng) % span;
                (lo as i128).wrapping_add(draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range on empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range on empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let neg = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_and_mut_refs() {
        fn take_unsized<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen::<u64>() ^ (rng.gen::<f64>() as u64)
        }
        let mut rng = SmallRng::seed_from_u64(5);
        take_unsized(&mut rng);
        let mr: &mut SmallRng = &mut rng;
        take_unsized(mr);
    }
}
