//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a tiny API-compatible layer over [`std::sync`]
//! primitives instead. Semantics intentionally mirror `parking_lot`
//! where they differ from std:
//!
//! * no lock poisoning — a panic while holding a guard does not poison
//!   the lock for later acquirers;
//! * guards are returned directly (no `Result` wrapping);
//! * [`RwLock::read_recursive`] is provided (mapped to a plain read —
//!   callers in this workspace never re-enter the same lock on one
//!   thread, they only use it to opt out of writer-priority ordering).
//!
//! Only the surface actually consumed by the nbb crates is implemented.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion primitive (non-poisoning wrapper over [`sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Reader-writer lock (non-poisoning wrapper over [`sync::RwLock`]).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquires shared access even if this thread already holds a read
    /// guard (here: identical to [`RwLock::read`]; see crate docs).
    pub fn read_recursive(&self) -> RwLockReadGuard<'_, T> {
        self.read()
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Attempts to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_modes() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read_recursive();
            assert_eq!(*a + *b, 10);
            assert!(l.try_write().is_none(), "readers block writers");
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must remain usable");
    }
}
