//! Offline shim for the subset of `parking_lot` this workspace uses,
//! extended with a lock-rank discipline.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a tiny API-compatible layer over [`std::sync`]
//! primitives instead. Semantics intentionally mirror `parking_lot`
//! where they differ from std:
//!
//! * no lock poisoning — a panic while holding a guard does not poison
//!   the lock for later acquirers;
//! * guards are returned directly (no `Result` wrapping);
//! * [`RwLock::read_recursive`] is provided (mapped to a plain read —
//!   callers in this workspace never re-enter the same lock on one
//!   thread, they only use it to opt out of writer-priority ordering).
//!
//! # Lock ranks
//!
//! Because every lock in the workspace funnels through this shim, it is
//! the natural choke point for a *lock-rank* (lock-order) discipline:
//! each lock may be constructed with [`Mutex::with_rank`] /
//! [`RwLock::with_rank`], naming its position in a global acquisition
//! order. Under `debug_assertions` a thread-local stack records the
//! ranks this thread currently holds; a blocking acquisition whose rank
//! does not strictly exceed every held rank panics, naming both the
//! lock being acquired and the highest-ranked lock held. Running any
//! multi-threaded test suite in a debug profile therefore model-checks
//! the lock order along every path the tests exercise.
//!
//! The workspace's concrete rank lattice lives in
//! `nbb_storage::lockrank` and is documented in `CONCURRENCY.md` at the
//! repo root; this crate only provides the mechanism.
//!
//! In release builds (`debug_assertions` off) the rank field is not
//! even stored and every check compiles to nothing: ranked and
//! unranked locks are bit-for-bit identical.
//!
//! Rules the checker enforces on ranked locks:
//!
//! * a **blocking** acquisition must have a rank strictly greater than
//!   every rank currently held by this thread — equal ranks are allowed
//!   only if the rank was declared with [`Rank::new_multi`] (used for
//!   terminal ranks like disk I/O where wrappers may nest);
//! * **non-blocking** (`try_lock` / `try_read` / `try_write`)
//!   acquisitions are exempt from the order check (they cannot
//!   deadlock) but still push onto the stack while held, so locks taken
//!   *under* them are checked;
//! * [`Condvar::wait`] releases the guard's rank for the duration of
//!   the wait and re-checks it on wakeup, mirroring the real
//!   release/re-acquire of the mutex;
//! * unranked locks (plain [`Mutex::new`]) never participate — they
//!   neither push nor check. The repo's `nbb-lint` tool enforces that
//!   engine crates construct only ranked locks.
//!
//! Only the surface actually consumed by the nbb crates is implemented.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A position in a global lock-acquisition order.
///
/// Ranks are plain `const`-constructible values; the workspace defines
/// its lattice once (in `nbb_storage::lockrank`) and threads the
/// constants into every lock constructor. Lower levels must be acquired
/// before higher levels; two locks at the same level may not be held
/// together unless the rank was created with [`Rank::new_multi`].
#[derive(Clone, Copy, Debug)]
pub struct Rank {
    level: u16,
    name: &'static str,
    multi: bool,
}

impl Rank {
    /// A rank at `level` named `name`. At most one lock of this level
    /// may be held by a thread at a time.
    pub const fn new(level: u16, name: &'static str) -> Self {
        Rank { level, name, multi: false }
    }

    /// A rank whose level may be held multiple times concurrently by
    /// one thread (same-level re-acquisition allowed; lower levels are
    /// still rejected). Use for terminal ranks where wrapper objects
    /// nest, e.g. a latency-injecting disk delegating to an in-memory
    /// disk.
    pub const fn new_multi(level: u16, name: &'static str) -> Self {
        Rank { level, name, multi: true }
    }

    /// The numeric level (lower acquires first).
    pub const fn level(&self) -> u16 {
        self.level
    }

    /// The human-readable lock name used in inversion panics.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Whether one thread may hold several locks of this level at once.
    pub const fn is_multi(&self) -> bool {
        self.multi
    }
}

/// Debug-only thread-local stack of held ranks.
#[cfg(debug_assertions)]
mod held {
    use super::Rank;
    use std::cell::RefCell;

    struct Entry {
        rank: Rank,
        token: u64,
    }

    struct Stack {
        entries: Vec<Entry>,
        next_token: u64,
    }

    thread_local! {
        static STACK: RefCell<Stack> = const {
            RefCell::new(Stack { entries: Vec::new(), next_token: 0 })
        };
    }

    /// Checks `rank` against everything held (if `blocking`), then
    /// records it. Returns a token identifying this acquisition so
    /// guards dropped out of stack order release the right entry.
    pub(crate) fn acquire(rank: Rank, blocking: bool) -> u64 {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if blocking {
                if let Some(worst) = s.entries.iter().max_by_key(|e| e.rank.level()) {
                    let held = worst.rank;
                    let inverted = rank.level() < held.level()
                        || (rank.level() == held.level() && !rank.multi);
                    if inverted {
                        panic!(
                            "lock rank inversion: acquiring '{}' (rank {}) while holding \
                             '{}' (rank {}); see CONCURRENCY.md for the global order",
                            rank.name(),
                            rank.level(),
                            held.name(),
                            held.level(),
                        );
                    }
                }
            }
            let token = s.next_token;
            s.next_token += 1;
            s.entries.push(Entry { rank, token });
            token
        })
    }

    /// Removes the acquisition identified by `token`, returning its
    /// rank (used by `Condvar::wait` to re-acquire after waking).
    pub(crate) fn release(token: u64) -> Rank {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            let pos = s
                .entries
                .iter()
                .rposition(|e| e.token == token)
                .expect("rank token released twice");
            s.entries.remove(pos).rank
        })
    }

    /// Number of ranked locks this thread currently holds.
    pub(crate) fn count() -> usize {
        STACK.with(|s| s.borrow().entries.len())
    }
}

/// Number of ranked locks the current thread holds. Debug builds only;
/// exposed so tests can assert the stack unwinds on guard drop and on
/// panic.
#[cfg(debug_assertions)]
pub fn held_rank_count() -> usize {
    held::count()
}

#[cfg(debug_assertions)]
type Token = Option<u64>;

#[cfg(debug_assertions)]
fn enter(rank: &Option<Rank>, blocking: bool) -> Token {
    rank.map(|r| held::acquire(r, blocking))
}

#[cfg(debug_assertions)]
fn exit(token: Token) {
    if let Some(t) = token {
        held::release(t);
    }
}

/// Mutual exclusion primitive (non-poisoning wrapper over [`sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    rank: Option<Rank>,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    token: Token,
    // ManuallyDrop so Condvar::wait can hand the inner guard to
    // sync::Condvar and put the replacement back without running Drop.
    inner: ManuallyDrop<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new unranked mutex (exempt from order checking).
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(debug_assertions)]
            rank: None,
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates a mutex at a fixed position in the global lock order.
    /// In release builds the rank is discarded at compile time.
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub const fn with_rank(rank: Rank, value: T) -> Self {
        Mutex {
            #[cfg(debug_assertions)]
            rank: Some(rank),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Panics in
    /// debug builds if this acquisition inverts the lock order.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = enter(&self.rank, true);
        let g = self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard {
            #[cfg(debug_assertions)]
            token,
            inner: ManuallyDrop::new(g),
        }
    }

    /// Acquires the mutex, blocking, **without** checking the lock
    /// order (the acquisition still joins the held-rank stack, so locks
    /// taken under it are checked).
    ///
    /// This is the discipline's explicit escape hatch for the rare
    /// acquisition whose deadlock-freedom rests on a protocol argument
    /// the rank lattice cannot express (e.g. a pool entry point
    /// re-entered from a user closure that holds a frame latch, safe
    /// because blocking latch acquisitions only ever target unpinned
    /// frames). Every call site must carry a `// rank-exempt:` comment
    /// stating that argument; `nbb-lint` rejects bare calls.
    pub fn lock_unordered(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = enter(&self.rank, false);
        let g = self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard {
            #[cfg(debug_assertions)]
            token,
            inner: ManuallyDrop::new(g),
        }
    }

    /// Attempts to acquire the mutex without blocking. Exempt from the
    /// order check (a failed try cannot deadlock), but a successful
    /// acquisition still joins the held-rank stack.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            #[cfg(debug_assertions)]
            token: enter(&self.rank, false),
            inner: ManuallyDrop::new(g),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: `inner` is initialized (only `Condvar::wait` takes it
        // out, and it always restores a guard before returning) and is
        // never touched again after this drop.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        #[cfg(debug_assertions)]
        exit(self.token);
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Condition variable usable with this crate's [`MutexGuard`]
/// (parking_lot-style `wait(&mut guard)` signature, no poison result).
///
/// While a thread is parked in [`Condvar::wait`] the guard's rank is
/// removed from the held stack — the mutex really is released — and
/// re-checked against the order on wakeup.
pub struct Condvar(sync::Condvar);

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the mutex and parks until notified. The
    /// mutex is re-acquired before returning. Spurious wakeups are
    /// possible: callers must re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(debug_assertions)]
        let paused: Option<Rank> = guard.token.take().map(held::release);
        // SAFETY: we take the inner guard out to hand it to the std
        // condvar and unconditionally restore the returned guard into
        // the same slot below, so `inner` is initialized again before
        // anyone (including Drop) can observe it.
        let inner = unsafe { ManuallyDrop::take(&mut guard.inner) };
        let inner = self.0.wait(inner).unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = ManuallyDrop::new(inner);
        #[cfg(debug_assertions)]
        {
            guard.token = paused.map(|r| held::acquire(r, true));
        }
    }

    /// Atomically releases the mutex and parks until notified or
    /// `timeout` elapses (matching real parking_lot's `wait_for`). The
    /// mutex is re-acquired before returning. Spurious wakeups are
    /// possible: callers must re-check their predicate in a loop.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        #[cfg(debug_assertions)]
        let paused: Option<Rank> = guard.token.take().map(held::release);
        // SAFETY: same contract as `wait` — the inner guard is taken
        // out for the std condvar and unconditionally restored below.
        let inner = unsafe { ManuallyDrop::take(&mut guard.inner) };
        let (inner, result) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = ManuallyDrop::new(inner);
        #[cfg(debug_assertions)]
        {
            guard.token = paused.map(|r| held::acquire(r, true));
        }
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Outcome of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed rather
    /// than a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Reader-writer lock (non-poisoning wrapper over [`sync::RwLock`]).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    rank: Option<Rank>,
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    token: Token,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(debug_assertions)]
    token: Token,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new unranked reader-writer lock (exempt from order
    /// checking).
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(debug_assertions)]
            rank: None,
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates a reader-writer lock at a fixed position in the global
    /// lock order. Both the read and write sides participate in the
    /// check. In release builds the rank is discarded at compile time.
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub const fn with_rank(rank: Rank, value: T) -> Self {
        RwLock {
            #[cfg(debug_assertions)]
            rank: Some(rank),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = enter(&self.rank, true);
        RwLockReadGuard {
            #[cfg(debug_assertions)]
            token,
            inner: self.inner.read().unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquires shared access even if this thread already holds a read
    /// guard (here: identical to [`RwLock::read`]; see crate docs).
    pub fn read_recursive(&self) -> RwLockReadGuard<'_, T> {
        self.read()
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = enter(&self.rank, true);
        RwLockWriteGuard {
            #[cfg(debug_assertions)]
            token,
            inner: self.inner.write().unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Attempts to acquire shared access without blocking (exempt from
    /// the order check; see [`Mutex::try_lock`]).
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let g = match self.inner.try_read() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockReadGuard {
            #[cfg(debug_assertions)]
            token: enter(&self.rank, false),
            inner: g,
        })
    }

    /// Attempts to acquire exclusive access without blocking (exempt
    /// from the order check; see [`Mutex::try_lock`]).
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let g = match self.inner.try_write() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockWriteGuard {
            #[cfg(debug_assertions)]
            token: enter(&self.rank, false),
            inner: g,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        exit(self.token);
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        exit(self.token);
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_modes() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read_recursive();
            assert_eq!(*a + *b, 10);
            assert!(l.try_write().is_none(), "readers block writers");
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must remain usable");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    // The rank-discipline tests only make sense in debug builds — in
    // release the rank layer does not exist.
    #[cfg(debug_assertions)]
    mod ranks {
        use super::*;

        const LOW: Rank = Rank::new(10, "test.low");
        const HIGH: Rank = Rank::new(20, "test.high");
        const TERM: Rank = Rank::new_multi(30, "test.terminal");

        /// Runs `f` on a fresh thread so its rank stack starts empty,
        /// returning the panic payload message if it panicked.
        fn on_fresh_thread<F: FnOnce() + Send + 'static>(f: F) -> Option<String> {
            std::thread::spawn(f).join().err().map(|e| {
                e.downcast_ref::<String>()
                    .cloned()
                    .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_default()
            })
        }

        #[test]
        fn in_order_acquisition_passes() {
            assert!(on_fresh_thread(|| {
                let a = Mutex::with_rank(LOW, 1);
                let b = RwLock::with_rank(HIGH, 2);
                let ga = a.lock();
                let gb = b.read();
                assert_eq!(*ga + *gb, 3);
            })
            .is_none());
        }

        #[test]
        fn inversion_panics_naming_both_locks() {
            let msg = on_fresh_thread(|| {
                let a = Mutex::with_rank(LOW, ());
                let b = Mutex::with_rank(HIGH, ());
                let _gb = b.lock();
                let _ga = a.lock(); // inversion: LOW under HIGH
            })
            .expect("inverted acquisition must panic");
            assert!(msg.contains("test.low"), "panic names acquired lock: {msg}");
            assert!(msg.contains("test.high"), "panic names held lock: {msg}");
        }

        #[test]
        fn same_level_requires_multi() {
            let msg = on_fresh_thread(|| {
                let a = Mutex::with_rank(HIGH, ());
                let b = Mutex::with_rank(HIGH, ());
                let _ga = a.lock();
                let _gb = b.lock();
            })
            .expect("same-level non-multi must panic");
            assert!(msg.contains("test.high"));

            assert!(on_fresh_thread(|| {
                let a = Mutex::with_rank(TERM, ());
                let b = Mutex::with_rank(TERM, ());
                let _ga = a.lock();
                let _gb = b.lock(); // multi rank: same level may nest
            })
            .is_none());
        }

        #[test]
        fn stack_unwinds_on_drop_and_out_of_order_release() {
            assert!(on_fresh_thread(|| {
                let a = Mutex::with_rank(LOW, ());
                let b = Mutex::with_rank(HIGH, ());
                let ga = a.lock();
                let gb = b.lock();
                drop(ga); // release out of acquisition order
                assert_eq!(held_rank_count(), 1);
                drop(gb);
                assert_eq!(held_rank_count(), 0);
                // After full release, LOW is acquirable again.
                let _ = a.lock();
            })
            .is_none());
        }

        #[test]
        fn stack_unwinds_on_panic() {
            assert!(on_fresh_thread(|| {
                let a = Mutex::with_rank(HIGH, ());
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _g = a.lock();
                    panic!("unwind with guard held");
                }));
                assert_eq!(held_rank_count(), 0, "panic unwound the rank stack");
                let low = Mutex::with_rank(LOW, ());
                let _g = low.lock(); // would panic if HIGH leaked
            })
            .is_none());
        }

        #[test]
        fn try_lock_skips_order_check_but_tracks() {
            assert!(on_fresh_thread(|| {
                let a = Mutex::with_rank(LOW, ());
                let b = Mutex::with_rank(HIGH, ());
                let _gb = b.lock();
                // try_lock of a lower rank is allowed (cannot deadlock)...
                let ga = a.try_lock().expect("uncontended");
                assert_eq!(held_rank_count(), 2);
                drop(ga);
            })
            .is_none());

            // ...but a blocking acquisition *under* the try-acquired
            // lock is still checked against it.
            let msg = on_fresh_thread(|| {
                let a = Mutex::with_rank(LOW, ());
                let b = Mutex::with_rank(HIGH, ());
                let _gb = b.try_lock().expect("uncontended");
                let _ga = a.lock();
            })
            .expect("blocking under try-held rank still checked");
            assert!(msg.contains("test.low") && msg.contains("test.high"));
        }

        #[test]
        fn condvar_wait_releases_rank_while_parked() {
            // A waiter parked on HIGH must not block another thread's
            // check... but more directly testable: after wait returns,
            // the rank is re-held; while parked it is not.
            assert!(on_fresh_thread(|| {
                let pair = Arc::new((Mutex::with_rank(HIGH, false), Condvar::new()));
                let waiter = {
                    let pair = Arc::clone(&pair);
                    std::thread::spawn(move || {
                        let (m, cv) = &*pair;
                        let mut ready = m.lock();
                        while !*ready {
                            cv.wait(&mut ready);
                        }
                        assert_eq!(held_rank_count(), 1, "rank re-held after wake");
                    })
                };
                let (m, cv) = &*pair;
                *m.lock() = true;
                cv.notify_all();
                waiter.join().unwrap();
            })
            .is_none());
        }

        #[test]
        fn unranked_locks_do_not_participate() {
            assert!(on_fresh_thread(|| {
                let ranked = Mutex::with_rank(HIGH, ());
                let plain = Mutex::new(());
                let _g1 = ranked.lock();
                let _g2 = plain.lock(); // no rank, no check
                assert_eq!(held_rank_count(), 1);
            })
            .is_none());
        }
    }
}
