//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so property tests run
//! against this vendored mini-implementation: strategies generate random
//! values (seeded deterministically per test name and case index) and
//! the [`proptest!`] macro drives a fixed number of cases. Failing
//! cases panic with the offending inputs; there is **no shrinking**.
//!
//! Supported surface (what the nbb crates use):
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(n))] … }`
//! * integer / float range strategies (`0u8..4`, `0.05f64..1.0`,
//!   `256usize..=65536`), [`any`]`::<T>()`, tuples of strategies,
//!   `prop::collection::vec(strategy, size_range)`,
//!   simple regex string strategies (`"[a-z]{0,12}"`, `".{0,40}"`);
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`.

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Mirrors `proptest::test_runner`.
pub mod test_runner {
    pub use super::Config;
}

/// A generator of random values (the shim's take on `proptest::strategy::Strategy`).
///
/// Unlike upstream there is no value tree or shrinking: a strategy is
/// just a pure function from RNG state to a value.
pub trait Strategy {
    /// The type of values produced.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy producing a fixed value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy for any value of `T` (returned by [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Size specification for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty proptest size range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        SizeRange { lo, hi_exclusive: hi + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// String strategies from a small regex subset: concatenations of `.`
/// or `[a-z]`-style classes, each optionally repeated `{m,n}`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut SmallRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut SmallRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a char class, a dot, or a literal character.
        let class: Vec<(char, char)> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                ranges
            }
            '.' => {
                i += 1;
                // Printable ASCII, like upstream's `.` for practical purposes.
                vec![(' ', '~')]
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        // Optional {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad {m,n}"),
                    n.trim().parse::<usize>().expect("bad {m,n}"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad {n}");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            let (a, b) = class[rng.gen_range(0..class.len())];
            let ch = char::from_u32(rng.gen_range(a as u32..=b as u32))
                .expect("class endpoints must be valid chars");
            out.push(ch);
        }
    }
    out
}

/// Umbrella module mirroring `proptest::prop`.
pub mod prop {
    pub use super::collection;
}

/// The glob import every property test starts from.
pub mod prelude {
    pub use super::{any, collection, prop, Arbitrary, Just, Strategy};
    pub use super::{Config as ProptestConfig, Config};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use rand::{Rng, SeedableRng};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::SmallRng;
    pub use rand::SeedableRng;

    /// Deterministic per-test seed: FNV-1a over the test name.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) with context. In this shim a failure still panics,
/// but only after formatting the property inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case when its inputs don't satisfy a
/// precondition (counts as a pass in this shim).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::Config = $cfg;
            let mut rng = <$crate::__rt::SmallRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let dbg = format!(concat!($(stringify!($arg), " = {:?}, ",)+), $(&$arg,)+);
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, config.cases, msg, dbg
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::__rt::SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&".{0,40}", &mut rng);
            assert!(t.len() <= 40);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(
            pair in (0u8..4, 10u64..20),
            v in prop::collection::vec((0u8..2, any::<u64>()), 1..50),
            f in 0.25f64..0.75,
            n in 1usize..=8,
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!((10..20).contains(&pair.1));
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..=8).contains(&n));
        }

        #[test]
        fn assume_skips(a in any::<u8>()) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
            prop_assert_ne!(a % 2, 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_form(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        inner();
    }
}
