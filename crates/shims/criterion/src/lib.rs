//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment cannot reach crates.io, so benches link against
//! this vendored harness instead: it runs each benchmark closure under a
//! simple warm-up + timed-sampling loop and prints mean / min ns-per-iter
//! (plus derived throughput when configured). There are no HTML reports,
//! no statistical regression tests, and no saved baselines — the numbers
//! are honest wall-clock measurements, sufficient for recording relative
//! perf trajectories in this repo.
//!
//! Supported surface: `Criterion::{default, sample_size,
//! measurement_time, warm_up_time, bench_function, benchmark_group}`,
//! groups with `sample_size`/`throughput`/`bench_function`/`finish`,
//! `Bencher::iter`, `BenchmarkId::{new, from_parameter}`,
//! `Throughput::{Elements, Bytes}`, `black_box`, `criterion_group!`
//! (both forms) and `criterion_main!`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work performed per iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form (group name supplies the prefix).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Filled in by `iter`: (total_duration, total_iterations) per sample.
    samples: Vec<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times repeated executions of `inner`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut inner: F) {
        // Warm up and estimate per-iteration cost.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(inner());
            warm_iters += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;

        // Split the measurement budget into samples of ~equal iteration
        // counts, at least 1 iteration each.
        let samples = self.config.sample_size.max(2) as u128;
        let budget = self.config.measurement_time.as_nanos();
        let iters_per_sample =
            (budget / samples / per_iter.max(1)).clamp(1, u64::MAX as u128) as u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(inner());
            }
            self.samples.push((start.elapsed(), iters_per_sample));
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples — closure never called iter)");
            return;
        }
        let per_iter: Vec<f64> =
            self.samples.iter().map(|(d, n)| d.as_nanos() as f64 / (*n).max(1) as f64).collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut line = format!("{label:<50} mean {:>12} min {:>12}", fmt_ns(mean), fmt_ns(min));
        if let Some(t) = throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = count as f64 / (mean * 1e-9);
            let _ = write!(line, "   {:>14}/s", fmt_si(rate, unit));
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Warm-up time before sampling begins.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let mut b = Bencher { config: &self.config, samples: Vec::new() };
        f(&mut b);
        b.report(&id.id, None);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    throughput: Option<Throughput>,
    // Tie the group's lifetime to the Criterion it came from, matching
    // upstream's signature so `finish()` call sites type-check.
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Declares per-iteration work, enabling throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let mut b = Bencher { config: &self.config, samples: Vec::new() };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Ends the group (reporting happens eagerly; this is a no-op hook).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; a user may pass filters.
            // This shim runs everything unconditionally.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_with_throughput() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(4))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("f", 32), |b| b.iter(|| black_box(1 + 1)));
        group.bench_function(BenchmarkId::from_parameter(64), |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
