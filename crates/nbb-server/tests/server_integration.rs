//! End-to-end server contract tests over real loopback sockets:
//! out-of-order completion by request id (proven with a gated disk, no
//! timing), the malformed-frame suite (named errors, clean close, no
//! database poisoning), graceful shutdown that drains in-flight work,
//! the `max_connections` cap, and backpressure parks.

use nbb_client::{Client, ClientConfig};
use nbb_core::db::{Database, DbConfig};
use nbb_core::row::RowSchema;
use nbb_encoding::{ColumnDef, DeclaredType, Schema, Value};
use nbb_proto::{
    decode_response, encode_request, Framer, Request, RequestOp, ResponseBody, WireBound,
};
use nbb_server::{Server, ServerConfig};
use nbb_storage::disk::{DiskManager, InMemoryDisk};
use nbb_storage::error::Result as StorageResult;
use nbb_storage::{Page, PageId};
use parking_lot::{Condvar, Mutex};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Disk whose reads park at a gate until released — lets a test *hold*
/// one request mid-fault while later requests race past it, so
/// ordering assertions are deterministic instead of timing-based.
struct GateDisk {
    inner: InMemoryDisk,
    held: Mutex<bool>,
    cv: Condvar,
    read_attempts: AtomicU64,
}

impl GateDisk {
    fn new(page_size: usize) -> Self {
        GateDisk {
            inner: InMemoryDisk::new(page_size),
            held: Mutex::new(false),
            cv: Condvar::new(),
            read_attempts: AtomicU64::new(0),
        }
    }

    fn hold_reads(&self) {
        *self.held.lock() = true;
    }

    fn release_reads(&self) {
        *self.held.lock() = false;
        self.cv.notify_all();
    }

    fn gate(&self) {
        let mut held = self.held.lock();
        while *held {
            self.cv.wait(&mut held);
        }
    }

    /// Spins until `n` reads have *reached* the disk (i.e. a faulting
    /// request is provably parked at the gate).
    fn await_read_attempts(&self, n: u64) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.read_attempts.load(Ordering::Relaxed) < n {
            assert!(Instant::now() < deadline, "no read reached the gate disk");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl DiskManager for GateDisk {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn allocate(&self) -> StorageResult<PageId> {
        self.inner.allocate()
    }
    fn read(&self, id: PageId, buf: &mut Page) -> StorageResult<()> {
        self.read_attempts.fetch_add(1, Ordering::Relaxed);
        self.gate();
        self.inner.read(id, buf)
    }
    fn read_many(&self, pages: &mut [(PageId, &mut Page)]) -> StorageResult<()> {
        self.read_attempts.fetch_add(pages.len() as u64, Ordering::Relaxed);
        self.gate();
        for (id, buf) in pages.iter_mut() {
            self.inner.read(*id, buf)?;
        }
        Ok(())
    }
    fn write(&self, id: PageId, page: &Page) -> StorageResult<()> {
        self.inner.write(id, page)
    }
    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
    fn stats(&self) -> nbb_storage::stats::IoStats {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

fn kv_schema() -> (Schema, RowSchema) {
    let schema = Schema {
        table: "kv".into(),
        columns: vec![
            ColumnDef::new("id", DeclaredType::Int64),
            ColumnDef::new("val", DeclaredType::Int64),
        ],
    };
    let rows = RowSchema::new(&schema);
    (schema, rows)
}

/// Fresh db with a `kv` table (`by_id` index), `n` rows loaded.
/// Returns the loaded rows' record ids so tests can evict the heap
/// page backing one specific row.
fn seeded_db(
    cfg: DbConfig,
    heap: Arc<dyn DiskManager>,
    n: i64,
) -> (Arc<Database>, RowSchema, Vec<nbb_storage::RecordId>) {
    let (_, rows) = kv_schema();
    let index_disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(cfg.page_size));
    let db = Arc::new(Database::with_disks(cfg, heap, index_disk).expect("open"));
    let t = db.create_table_with(&rows).expect("create table");
    t.create_index(rows.index_spec("by_id", "id", &[]).expect("spec")).expect("index");
    let load: Vec<Vec<u8>> = (0..n)
        .map(|id| rows.encode(&[Value::Int(id), Value::Int(id * 10)]).expect("encode"))
        .collect();
    let rids = if load.is_empty() { Vec::new() } else { t.insert_many(&load).expect("load") };
    (db, rows, rids)
}

fn key(rows: &RowSchema, id: i64) -> Vec<u8> {
    rows.key("id", &Value::Int(id)).expect("key")
}

#[test]
fn full_op_surface_round_trips_through_a_client() {
    let cfg = DbConfig::default();
    let heap: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(cfg.page_size));
    let (db, rows, _) = seeded_db(cfg, heap, 50);
    let server = Server::start(db, ServerConfig::default()).expect("start");
    let client = Client::connect(server.local_addr(), ClientConfig::default()).expect("connect");

    // get_many: present and absent keys, result order mirrors keys.
    let got = client
        .get_many("kv", "by_id", vec![key(&rows, 7), key(&rows, 999), key(&rows, 0)])
        .expect("get_many");
    assert_eq!(got.len(), 3);
    assert!(got[0].is_some() && got[1].is_none() && got[2].is_some());
    assert_eq!(rows.decode(got[0].as_deref().expect("row")).expect("decode")[1], Value::Int(70));

    // insert_many + read-back.
    let fresh: Vec<Vec<u8>> = (100..110)
        .map(|id| rows.encode(&[Value::Int(id), Value::Int(id)]).expect("encode"))
        .collect();
    let rids = client.insert_many("kv", fresh).expect("insert_many");
    assert_eq!(rids.len(), 10);
    assert!(client.get_many("kv", "by_id", vec![key(&rows, 105)]).expect("get")[0].is_some());

    // put_many upserts an existing key.
    let updated = rows.encode(&[Value::Int(7), Value::Int(7000)]).expect("encode");
    client.put_many("kv", "by_id", vec![updated]).expect("put_many");
    let got = client.get_many("kv", "by_id", vec![key(&rows, 7)]).expect("get")[0]
        .clone()
        .expect("present");
    assert_eq!(rows.decode(&got).expect("decode")[1], Value::Int(7000));

    // Paged range scan: walk everything via resume keys.
    let mut lo = WireBound::Included(key(&rows, 0));
    let mut seen = 0usize;
    loop {
        let (page, more, resume) =
            client.range("kv", "by_id", lo.clone(), WireBound::Unbounded, 16).expect("range page");
        seen += page.len();
        if !more {
            break;
        }
        lo = WireBound::Excluded(resume.expect("non-empty page has a resume key"));
    }
    assert_eq!(seen, 60, "50 seeded + 10 inserted rows, each exactly once");

    // A heterogeneous batch: its reads observe its writes.
    let k200 = key(&rows, 200);
    let t200 = rows.encode(&[Value::Int(200), Value::Int(1)]).expect("encode");
    let body = client
        .call(RequestOp::Batch {
            table: "kv".into(),
            ops: vec![
                nbb_proto::WireBatchOp::Put { index: "by_id".into(), tuple: t200 },
                nbb_proto::WireBatchOp::Get { index: "by_id".into(), key: k200.clone() },
                nbb_proto::WireBatchOp::Delete { index: "by_id".into(), key: key(&rows, 0) },
                nbb_proto::WireBatchOp::Get { index: "by_id".into(), key: key(&rows, 0) },
            ],
        })
        .expect("batch");
    match body {
        ResponseBody::Batch { outputs } => {
            assert!(matches!(&outputs[0], nbb_proto::WireBatchOutput::Put(_)));
            assert!(matches!(&outputs[1], nbb_proto::WireBatchOutput::Tuple(Some(_))));
            assert!(matches!(&outputs[2], nbb_proto::WireBatchOutput::Deleted(true)));
            assert!(matches!(&outputs[3], nbb_proto::WireBatchOutput::Tuple(None)));
        }
        other => panic!("expected batch body, got {other:?}"),
    }

    // Engine errors travel as wire errors; the connection survives.
    let err = client.get_many("nope", "by_id", vec![key(&rows, 1)]);
    assert!(matches!(err, Err(nbb_client::ClientError::Server(_))));
    assert!(client.get_many("kv", "by_id", vec![key(&rows, 1)]).expect("alive")[0].is_some());

    let stats = client.stats().expect("stats");
    assert!(stats.frames_in > 5 && stats.frames_out > 5);
    assert_eq!(stats.active_connections, 1);
    assert_eq!(stats.decode_errors, 0);

    drop(client);
    server.shutdown();
}

#[test]
fn responses_complete_out_of_order_by_request_id() {
    // Small pages so 50 rows span several heap pages; the gate disk
    // backs the heap, so only heap faults can park.
    let cfg = DbConfig { heap_frames: 64, page_size: 512, ..DbConfig::default() };
    let gate = Arc::new(GateDisk::new(cfg.page_size));
    let (db, rows, rids) = seeded_db(cfg, Arc::clone(&gate) as Arc<dyn DiskManager>, 50);

    // Warm every heap page, then evict exactly the page holding row 3:
    // a get of row 3 must fault (and park at the gate) while a row on
    // any *other* page stays memory-resident.
    let t = db.table("kv").expect("table");
    let idx = t.index("by_id").expect("index");
    let all: Vec<Vec<u8>> = (0..50).map(|i| key(&rows, i)).collect();
    let warm = idx.get_many(&all).expect("warm");
    assert!(warm.iter().all(Option::is_some));
    let slow_page = rids[3].page;
    let fast_i = rids
        .iter()
        .position(|r| r.page != slow_page)
        .expect("50 rows over 512-byte pages must span >1 page") as i64;
    db.heap_pool().flush_all().expect("flush");
    db.heap_pool().evict_page(slow_page).expect("evict");

    let server =
        Server::start(Arc::clone(&db), ServerConfig { workers: 4, ..ServerConfig::default() })
            .expect("start");

    // Raw socket: observed arrival order IS the assertion, so no
    // client-side reordering may sit in between.
    let mut sock = TcpStream::connect(server.local_addr()).expect("connect");
    let reads_before = gate.read_attempts.load(Ordering::Relaxed);
    gate.hold_reads();

    // Slow request first (id 1): faults row 3's heap page, parks.
    sock.write_all(&encode_request(&Request {
        id: 1,
        op: RequestOp::GetMany {
            table: "kv".into(),
            index: "by_id".into(),
            keys: vec![key(&rows, 3)],
        },
    }))
    .expect("send slow");
    gate.await_read_attempts(reads_before + 1);

    // Fast request second (id 2): a row on a resident page, no fault.
    sock.write_all(&encode_request(&Request {
        id: 2,
        op: RequestOp::GetMany {
            table: "kv".into(),
            index: "by_id".into(),
            keys: vec![key(&rows, fast_i)],
        },
    }))
    .expect("send fast");

    let mut framer = Framer::new();
    let mut buf = [0u8; 4096];
    let mut read_response = |sock: &mut TcpStream, framer: &mut Framer| loop {
        if let Some(p) = framer.next_payload().expect("clean frames") {
            return decode_response(&p).expect("decodable");
        }
        let n = sock.read(&mut buf).expect("read");
        assert!(n > 0, "server closed unexpectedly");
        framer.extend(&buf[..n]);
    };

    // The fast response overtakes the parked one.
    let first = read_response(&mut sock, &mut framer);
    assert_eq!(first.id, 2, "fast request (submitted second) must complete first");
    assert!(matches!(first.body, ResponseBody::GetMany { ref rows } if rows[0].is_some()));

    // Release the gate: the slow response lands, correct and intact.
    gate.release_reads();
    let second = read_response(&mut sock, &mut framer);
    assert_eq!(second.id, 1);
    match second.body {
        ResponseBody::GetMany { rows: got } => {
            let tuple = got[0].as_deref().expect("row 3 present");
            assert_eq!(rows.decode(tuple).expect("decode")[1], Value::Int(30));
        }
        other => panic!("expected get_many body, got {other:?}"),
    }

    drop(sock);
    server.shutdown();
}

#[test]
fn malformed_frames_error_by_name_and_close_without_poisoning() {
    let cfg = DbConfig::default();
    let heap: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(cfg.page_size));
    let (db, rows, _) = seeded_db(cfg, heap, 10);
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).expect("start");

    // Each case: (raw bytes to send, substring the error must name).
    let valid = encode_request(&Request {
        id: 5,
        op: RequestOp::GetMany {
            table: "kv".into(),
            index: "by_id".into(),
            keys: vec![key(&rows, 1)],
        },
    });
    let truncated = valid[..valid.len() - 4].to_vec();
    let oversize = {
        let mut f = Vec::new();
        nbb_encoding::wire::put_u32(&mut f, (nbb_proto::DEFAULT_MAX_FRAME + 1) as u32);
        f
    };
    let bad_tag = {
        let mut p = Vec::new();
        nbb_encoding::wire::put_u64(&mut p, 5);
        p.push(222); // no such op
        let mut f = Vec::new();
        nbb_encoding::wire::put_u32(&mut f, p.len() as u32);
        f.extend_from_slice(&p);
        f
    };
    let spliced = {
        // Valid header + id, garbage where the op body should be.
        let mut v = valid.clone();
        let len = v.len();
        for b in &mut v[nbb_proto::HEADER_LEN + 9..len] {
            *b = 0xEE;
        }
        v
    };
    let cases: Vec<(&str, Vec<u8>, &str)> = vec![
        ("truncated", truncated, "truncated"),
        ("oversize", oversize, "oversize"),
        ("bad-op-tag", bad_tag, "bad op tag"),
        ("garbage-splice", spliced, "protocol error"),
    ];

    for (name, bytes, needle) in cases {
        let mut sock = TcpStream::connect(server.local_addr()).expect("connect");
        sock.write_all(&bytes).expect("send");
        // Truncation is only detectable at EOF; harmless for the rest.
        sock.shutdown(Shutdown::Write).expect("half-close");

        // Expect exactly one error response naming the failure, then a
        // clean close.
        let mut raw = Vec::new();
        sock.read_to_end(&mut raw).expect("drain");
        let mut framer = Framer::new();
        framer.extend(&raw);
        let payload = framer
            .next_payload()
            .expect("server reply frames cleanly")
            .unwrap_or_else(|| panic!("case {name}: no error response before close"));
        let resp = decode_response(&payload).expect("decodable error response");
        match resp.body {
            ResponseBody::Error { message } => {
                assert!(
                    message.contains(needle),
                    "case {name}: error {message:?} does not name {needle:?}"
                );
            }
            other => panic!("case {name}: expected error body, got {other:?}"),
        }
        assert_eq!(framer.next_payload(), Ok(None), "case {name}: single response then close");
    }

    // The database survived every malformed connection: a fresh
    // connection reads real data.
    let client = Client::connect(server.local_addr(), ClientConfig::default()).expect("connect");
    let got = client.get_many("kv", "by_id", vec![key(&rows, 1)]).expect("healthy");
    assert!(got[0].is_some());
    let stats = client.stats().expect("stats");
    assert_eq!(stats.decode_errors, 4, "each malformed frame counted once");

    drop(client);
    server.shutdown();
}

#[test]
fn shutdown_mid_flight_drains_the_in_flight_response() {
    let cfg = DbConfig { heap_frames: 64, ..DbConfig::default() };
    let gate = Arc::new(GateDisk::new(cfg.page_size));
    let (db, rows, rids) = seeded_db(cfg, Arc::clone(&gate) as Arc<dyn DiskManager>, 10);
    let t = db.table("kv").expect("table");
    let idx = t.index("by_id").expect("index");
    let warm: Vec<Vec<u8>> = (0..10).map(|i| key(&rows, i)).collect();
    idx.get_many(&warm).expect("warm");
    db.heap_pool().flush_all().expect("flush");
    db.heap_pool().evict_page(rids[4].page).expect("evict");

    let server = Server::start(Arc::clone(&db), ServerConfig::default()).expect("start");
    let addr = server.local_addr();
    let client = Client::connect(addr, ClientConfig::default()).expect("connect");

    // Park one request mid-fault…
    let reads_before = gate.read_attempts.load(Ordering::Relaxed);
    gate.hold_reads();
    let ticket = client
        .submit(RequestOp::GetMany {
            table: "kv".into(),
            index: "by_id".into(),
            keys: vec![key(&rows, 4)],
        })
        .expect("submit");
    gate.await_read_attempts(reads_before + 1);

    // …start shutdown while it is provably in flight…
    let server = Arc::new(server);
    let shutter = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.shutdown())
    };
    // Give shutdown time to stop the acceptor and nudge connections;
    // the gate keeps the worker pinned, so shutdown cannot finish yet.
    std::thread::sleep(Duration::from_millis(100));
    assert!(!shutter.is_finished(), "shutdown must wait for the in-flight request");

    // …then let the fault finish: the response must still reach the
    // client (drain, not drop).
    gate.release_reads();
    shutter.join().expect("shutdown thread");
    let body = client.redeem(ticket).expect("drained response");
    match body {
        ResponseBody::GetMany { rows: got } => {
            let tuple = got[0].as_deref().expect("row 4 present");
            assert_eq!(rows.decode(tuple).expect("decode")[1], Value::Int(40));
        }
        other => panic!("expected get_many body, got {other:?}"),
    }

    // And the server is really gone: new connections get no service.
    // Refused outright is fine too; a connect that lands must see EOF.
    if let Ok(mut s) = TcpStream::connect(addr) {
        let mut buf = [0u8; 1];
        assert_eq!(s.read(&mut buf).unwrap_or(0), 0, "post-shutdown conn must see EOF");
    }
}

#[test]
fn max_connections_refuses_extras_and_counts_them() {
    let cfg = DbConfig::default();
    let heap: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(cfg.page_size));
    let (db, _rows, _) = seeded_db(cfg, heap, 1);
    let server = Server::start(db, ServerConfig { max_connections: 2, ..ServerConfig::default() })
        .expect("start");

    let c1 = Client::connect(server.local_addr(), ClientConfig::default()).expect("conn 1");
    let c2 = Client::connect(server.local_addr(), ClientConfig::default()).expect("conn 2");
    // Stats round trips prove both are registered (active_connections
    // is exact, not eventually-consistent, once a request completes).
    assert_eq!(c1.stats().expect("stats").active_connections, 2);

    // The third connection is dropped by the acceptor: EOF or reset
    // before any response.
    let mut extra = TcpStream::connect(server.local_addr()).expect("tcp connect");
    extra.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut buf = [0u8; 1];
    match extra.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("refused connection received {n} bytes"),
        Err(_) => {} // reset — also a refusal
    }
    assert_eq!(c2.stats().expect("stats").connections_refused, 1);

    // Capacity frees when a connection closes.
    drop(c1);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(c3) = Client::connect(server.local_addr(), ClientConfig::default()) {
            if let Ok(s) = c3.stats() {
                assert!(s.active_connections <= 2);
                break;
            }
        }
        assert!(Instant::now() < deadline, "capacity never freed after close");
        std::thread::sleep(Duration::from_millis(5));
    }

    drop(c2);
    server.shutdown();
}

#[test]
fn full_response_queue_parks_the_reader_and_counts_it() {
    let cfg = DbConfig { heap_frames: 64, ..DbConfig::default() };
    let gate = Arc::new(GateDisk::new(cfg.page_size));
    let (db, rows, rids) = seeded_db(cfg, Arc::clone(&gate) as Arc<dyn DiskManager>, 10);
    let t = db.table("kv").expect("table");
    let idx = t.index("by_id").expect("index");
    let warm: Vec<Vec<u8>> = (0..10).map(|i| key(&rows, i)).collect();
    idx.get_many(&warm).expect("warm");
    db.heap_pool().flush_all().expect("flush");
    db.heap_pool().evict_page(rids[2].page).expect("evict");

    // One response slot: while request A is parked at the gate holding
    // the reservation, admitting request B must park the reader.
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig { workers: 2, response_queue: 1, ..ServerConfig::default() },
    )
    .expect("start");
    let client = Client::connect(server.local_addr(), ClientConfig::default()).expect("connect");

    let reads_before = gate.read_attempts.load(Ordering::Relaxed);
    gate.hold_reads();
    let slow = client
        .submit(RequestOp::GetMany {
            table: "kv".into(),
            index: "by_id".into(),
            keys: vec![key(&rows, 2)],
        })
        .expect("submit slow");
    gate.await_read_attempts(reads_before + 1);
    let fast = client
        .submit(RequestOp::GetMany {
            table: "kv".into(),
            index: "by_id".into(),
            keys: vec![key(&rows, 7)],
        })
        .expect("submit fast");

    // The reader cannot admit `fast` until the slot frees: park count
    // must tick. (Poll via the server handle — the wire path is the
    // thing being backpressured.)
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().queue_full_parks == 0 {
        assert!(Instant::now() < deadline, "reader never parked on the full queue");
        std::thread::sleep(Duration::from_millis(1));
    }

    gate.release_reads();
    assert!(matches!(client.redeem(slow).expect("slow"), ResponseBody::GetMany { .. }));
    assert!(matches!(client.redeem(fast).expect("fast"), ResponseBody::GetMany { .. }));

    drop(client);
    server.shutdown();
}
