//! # nbb-server — the engine's loopback-TCP front door
//!
//! Serves [`nbb_proto`] frames over TCP, multiplexing any number of
//! pipelined connections onto a small worker pool that executes
//! requests against a shared [`Database`] through its batched fast
//! paths (`get_many`, `insert_many`, `Table::execute`, …). One network
//! round-trip carries a whole batch, so the per-request framing cost
//! amortizes exactly like the engine amortizes lock acquisitions.
//!
//! ## Thread anatomy
//!
//! ```text
//!             accept thread ── registers conns, enforces max_connections
//!   per conn: reader thread ── frames bytes, decodes, reserves a
//!             │                response slot, submits a Job
//!             ▼
//!         shared work queue ──► N worker threads ── execute against the
//!             ▲                 Database (no server lock held), push the
//!             │                 encoded response
//!   per conn: writer thread ── drains the bounded response queue
//! ```
//!
//! Responses complete **out of order**: a fast request submitted after
//! a slow one returns first, matched by the client via the echoed
//! request id. Backpressure is per connection — a reader that finds all
//! [`ServerConfig::response_queue`] slots reserved parks on a condvar
//! (counted in [`nbb_proto::WireServerStats::queue_full_parks`]) until
//! the writer drains, so a slow consumer throttles only itself.
//!
//! Malformed frames never poison anything: the reader answers with a
//! best-effort error response naming the [`nbb_proto::DecodeError`],
//! closes that one connection, and the `Database` and every other
//! connection continue untouched.
//!
//! All locks carry ranks from the workspace lattice
//! ([`nbb_storage::lockrank`], server band 1–4); workers provably hold
//! no server lock while touching the engine.

#![warn(missing_docs)]

use nbb_core::db::Database;
use nbb_core::query::Batch;
use nbb_core::table::Projection;
use nbb_core::BatchOutput;
use nbb_proto::{
    DecodeError, Framer, Request, RequestOp, Response, ResponseBody, WireBatchOp, WireBatchOutput,
    WireBound, WireProjection, WireServerStats,
};
use nbb_storage::lockrank;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral loopback port
    /// (read it back from [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing requests against the database.
    pub workers: usize,
    /// Connections beyond this are refused at accept (counted in
    /// [`WireServerStats::connections_refused`]).
    pub max_connections: usize,
    /// Response slots per connection: the pipelining depth the server
    /// buffers before the reader parks (the backpressure bound).
    pub response_queue: usize,
    /// Frame payload cap enforced on inbound frames.
    pub max_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_connections: 64,
            response_queue: 64,
            max_frame: nbb_proto::DEFAULT_MAX_FRAME,
        }
    }
}

/// Monotonic server counters (the live side of [`WireServerStats`]).
#[derive(Debug, Default)]
struct Stats {
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    batches_executed: AtomicU64,
    queue_full_parks: AtomicU64,
    active_connections: AtomicU64,
    connections_opened: AtomicU64,
    connections_refused: AtomicU64,
    decode_errors: AtomicU64,
}

impl Stats {
    fn snapshot(&self) -> WireServerStats {
        WireServerStats {
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            batches_executed: self.batches_executed.load(Ordering::Relaxed),
            queue_full_parks: self.queue_full_parks.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// Per-connection response state, guarded at `SERVER_CONN_RESP`.
///
/// A slot is *reserved* when the reader admits a request and *filled*
/// when a worker pushes the encoded response; `reserved + queue.len()`
/// never exceeds the configured bound, which is what makes the queue
/// an end-to-end backpressure signal rather than an unbounded buffer.
#[derive(Debug)]
struct RespState {
    queue: VecDeque<Vec<u8>>,
    reserved: usize,
    reader_done: bool,
    closed: bool,
}

#[derive(Debug)]
struct Conn {
    id: u64,
    stream: TcpStream,
    resp: Mutex<RespState>,
    /// Writer parks here for new responses (or teardown conditions).
    resp_cv: Condvar,
    /// Reader parks here for a free response slot.
    slot_cv: Condvar,
}

impl Conn {
    /// Worker-side completion: releases the reservation and, unless the
    /// connection already died, queues the encoded response frame.
    fn complete(&self, frame: Vec<u8>) {
        let mut resp = self.resp.lock();
        resp.reserved = resp.reserved.saturating_sub(1);
        if !resp.closed {
            resp.queue.push_back(frame);
        }
        self.resp_cv.notify_one();
        self.slot_cv.notify_one();
    }
}

struct Job {
    conn: Arc<Conn>,
    req: Request,
}

struct WorkQueue {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Lifecycle {
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conn_threads: Vec<JoinHandle<()>>,
}

struct Shared {
    db: Arc<Database>,
    cfg: ServerConfig,
    stats: Stats,
    shutting_down: AtomicBool,
    work: Mutex<WorkQueue>,
    work_cv: Condvar,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    conns_cv: Condvar,
    lifecycle: Mutex<Lifecycle>,
}

/// A running server; dropping it (or calling [`Server::shutdown`])
/// stops accepting, drains in-flight requests, and joins every thread.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds `cfg.addr`, spawns the worker pool and accept thread, and
    /// returns once the server is reachable.
    pub fn start(db: Arc<Database>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            db,
            cfg,
            stats: Stats::default(),
            shutting_down: AtomicBool::new(false),
            work: Mutex::with_rank(
                lockrank::SERVER_WORK_QUEUE,
                WorkQueue { queue: VecDeque::new(), shutdown: false },
            ),
            work_cv: Condvar::new(),
            conns: Mutex::with_rank(lockrank::SERVER_CONNS, HashMap::new()),
            conns_cv: Condvar::new(),
            lifecycle: Mutex::with_rank(
                lockrank::SERVER_LIFECYCLE,
                Lifecycle { accept: None, workers: Vec::new(), conn_threads: Vec::new() },
            ),
        });

        {
            let mut lc = shared.lifecycle.lock();
            for i in 0..shared.cfg.workers.max(1) {
                let s = Arc::clone(&shared);
                lc.workers.push(
                    std::thread::Builder::new()
                        .name(format!("nbb-server-worker-{i}"))
                        .spawn(move || worker_loop(&s))?,
                );
            }
            let s = Arc::clone(&shared);
            lc.accept = Some(
                std::thread::Builder::new()
                    .name("nbb-server-accept".to_string())
                    .spawn(move || accept_loop(&s, listener))?,
            );
        }

        Ok(Server { shared, local_addr })
    }

    /// The bound address (the real port when `addr` asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time snapshot of the server counters (the same block
    /// the wire `Stats` op returns).
    pub fn stats(&self) -> WireServerStats {
        self.shared.stats.snapshot()
    }

    /// Graceful stop: refuses new connections, lets every in-flight
    /// request finish and its response flush, then joins all threads.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }

        // 1. Stop the accept loop (it polls the flag).
        let accept = self.shared.lifecycle.lock().accept.take();
        if let Some(h) = accept {
            let _ = h.join();
        }

        // 2. Nudge every connection's reader with a read-side shutdown:
        // it sees EOF, stops admitting requests, and the writer still
        // drains everything already in flight before closing.
        let conns: Vec<Arc<Conn>> = self.shared.conns.lock().values().cloned().collect();
        for conn in conns {
            let _ = conn.stream.shutdown(Shutdown::Read);
        }

        // 3. Wait for the connection table to drain (writers deregister
        // after their last flush). Workers are still running, so queued
        // jobs complete rather than being dropped.
        {
            let mut conns = self.shared.conns.lock();
            while !conns.is_empty() {
                self.shared.conns_cv.wait_for(&mut conns, Duration::from_millis(50));
            }
        }

        // 4. Now the queue can only shrink: stop the workers.
        {
            let mut work = self.shared.work.lock();
            work.shutdown = true;
            self.shared.work_cv.notify_all();
        }

        // 5. Join everything. Handles are moved out before joining so
        // no lock is held across a join.
        let (workers, conn_threads) = {
            let mut lc = self.shared.lifecycle.lock();
            (std::mem::take(&mut lc.workers), std::mem::take(&mut lc.conn_threads))
        };
        for h in workers.into_iter().chain(conn_threads) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---- Accept ---------------------------------------------------------

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    let mut next_id: u64 = 0;
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let active = shared.stats.active_connections.load(Ordering::Relaxed);
                if active >= shared.cfg.max_connections as u64 {
                    shared.stats.connections_refused.fetch_add(1, Ordering::Relaxed);
                    // Dropping the stream closes it; the client sees
                    // EOF/reset before any frame arrives.
                    continue;
                }
                next_id += 1;
                if let Err(_e) = spawn_connection(shared, stream, next_id) {
                    // Thread spawn failed (resource exhaustion): treat
                    // like a refused connection.
                    shared.stats.connections_refused.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn spawn_connection(shared: &Arc<Shared>, stream: TcpStream, id: u64) -> std::io::Result<()> {
    // Pipelined small frames must not sit in Nagle's buffer waiting for
    // the peer's delayed ACK — that turns a depth-K pipeline back into
    // ACK-gated request/response. Responses go out the moment they are
    // written.
    stream.set_nodelay(true)?;
    let write_stream = stream.try_clone()?;
    let conn = Arc::new(Conn {
        id,
        stream,
        resp: Mutex::with_rank(
            lockrank::SERVER_CONN_RESP,
            RespState { queue: VecDeque::new(), reserved: 0, reader_done: false, closed: false },
        ),
        resp_cv: Condvar::new(),
        slot_cv: Condvar::new(),
    });

    shared.conns.lock().insert(id, Arc::clone(&conn));
    shared.stats.active_connections.fetch_add(1, Ordering::Relaxed);
    shared.stats.connections_opened.fetch_add(1, Ordering::Relaxed);

    let reader = {
        let s = Arc::clone(shared);
        let c = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("nbb-server-read-{id}"))
            .spawn(move || reader_loop(&s, &c))
    };
    let writer = {
        let s = Arc::clone(shared);
        let c = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("nbb-server-write-{id}"))
            .spawn(move || writer_loop(&s, &c, write_stream))
    };

    match (reader, writer) {
        (Ok(r), Ok(w)) => {
            let mut lc = shared.lifecycle.lock();
            lc.conn_threads.push(r);
            lc.conn_threads.push(w);
            Ok(())
        }
        (r, w) => {
            // Partial spawn: mark the connection dead so whichever
            // thread did start unwinds through the normal teardown.
            {
                let mut resp = conn.resp.lock();
                resp.reader_done = true;
                resp.closed = true;
                conn.resp_cv.notify_all();
                conn.slot_cv.notify_all();
            }
            let mut lc = shared.lifecycle.lock();
            let mut err = None;
            for h in [r, w] {
                match h {
                    Ok(h) => lc.conn_threads.push(h),
                    Err(e) => err = Some(e),
                }
            }
            drop(lc);
            err.map_or(Ok(()), Err)
        }
    }
}

// ---- Reader ---------------------------------------------------------

/// Reader outcome for one decoded payload.
enum Admit {
    Submitted,
    ConnClosed,
}

fn reader_loop(shared: &Arc<Shared>, conn: &Arc<Conn>) {
    let mut framer = Framer::with_max(shared.cfg.max_frame);
    let mut buf = vec![0u8; 64 * 1024];
    // try_clone only to satisfy Read's &mut self; both handles share
    // the one OS socket.
    let mut stream = match conn.stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            finish_reader(conn);
            return;
        }
    };

    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break, // EOF
            Ok(n) => n,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        shared.stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
        framer.extend(&buf[..n]);
        loop {
            match framer.next_payload() {
                Ok(None) => break,
                Ok(Some(payload)) => match decode_and_submit(shared, conn, &payload) {
                    Admit::Submitted => {}
                    Admit::ConnClosed => {
                        finish_reader(conn);
                        return;
                    }
                },
                Err(e) => {
                    // Oversize length prefix: answer by name, then
                    // close — the stream position is unrecoverable.
                    reject(shared, conn, 0, &e);
                    finish_reader(conn);
                    return;
                }
            }
        }
    }

    // EOF mid-frame is a named protocol error too.
    if let Some(e) = framer.eof_error() {
        let id = 0; // no parsable id in a cut-off header
        reject(shared, conn, id, &e);
    }
    finish_reader(conn);
}

/// Decodes one payload and either submits it to the worker pool
/// (reserving a response slot, parking while the queue is full) or —
/// on a malformed frame — sends a named error and reports the
/// connection closed.
fn decode_and_submit(shared: &Arc<Shared>, conn: &Arc<Conn>, payload: &[u8]) -> Admit {
    let req = match nbb_proto::decode_request(payload) {
        Ok(req) => req,
        Err(e) => {
            let id = nbb_proto::request_id_hint(payload).unwrap_or(0);
            reject(shared, conn, id, &e);
            return Admit::ConnClosed;
        }
    };
    shared.stats.frames_in.fetch_add(1, Ordering::Relaxed);

    // Reserve a response slot; park while the pipeline is full. One
    // park episode counts once no matter how many spurious wakeups.
    {
        let mut resp = conn.resp.lock();
        let cap = shared.cfg.response_queue.max(1);
        let mut parked = false;
        while !resp.closed && resp.reserved + resp.queue.len() >= cap {
            if !parked {
                parked = true;
                shared.stats.queue_full_parks.fetch_add(1, Ordering::Relaxed);
            }
            conn.slot_cv.wait(&mut resp);
        }
        if resp.closed {
            return Admit::ConnClosed;
        }
        resp.reserved += 1;
    }

    let mut work = shared.work.lock();
    if work.shutdown {
        // Raced with shutdown: release the reservation so the writer's
        // drain condition stays accurate.
        drop(work);
        let mut resp = conn.resp.lock();
        resp.reserved = resp.reserved.saturating_sub(1);
        conn.resp_cv.notify_one();
        return Admit::ConnClosed;
    }
    work.queue.push_back(Job { conn: Arc::clone(conn), req });
    shared.work_cv.notify_one();
    Admit::Submitted
}

/// Best-effort error response for a frame that could not be decoded:
/// bypasses slot reservation (the request was never admitted) and
/// counts the decode error.
fn reject(shared: &Arc<Shared>, conn: &Arc<Conn>, id: u64, e: &DecodeError) {
    shared.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
    let frame = nbb_proto::encode_response(&Response {
        id,
        body: ResponseBody::Error { message: format!("protocol error: {e}") },
    });
    let mut resp = conn.resp.lock();
    if !resp.closed {
        resp.queue.push_back(frame);
        conn.resp_cv.notify_one();
    }
}

/// Marks the reader finished so the writer can complete its drain.
fn finish_reader(conn: &Conn) {
    let mut resp = conn.resp.lock();
    resp.reader_done = true;
    conn.resp_cv.notify_all();
}

// ---- Writer ---------------------------------------------------------

fn writer_loop(shared: &Arc<Shared>, conn: &Arc<Conn>, mut stream: TcpStream) {
    loop {
        let frame = {
            let mut resp = conn.resp.lock();
            loop {
                if let Some(f) = resp.queue.pop_front() {
                    conn.slot_cv.notify_one();
                    break Some(f);
                }
                if resp.closed || (resp.reader_done && resp.reserved == 0) {
                    break None;
                }
                conn.resp_cv.wait(&mut resp);
            }
        };
        let Some(frame) = frame else { break };
        // The socket write happens with no lock held: a slow client
        // stalls only this writer, and backpressure reaches its reader
        // through the un-drained queue.
        if stream.write_all(&frame).is_err() {
            break;
        }
        shared.stats.frames_out.fetch_add(1, Ordering::Relaxed);
        shared.stats.bytes_out.fetch_add(frame.len() as u64, Ordering::Relaxed);
    }
    teardown(shared, conn);
}

/// Writer-side teardown: the single place a connection dies. Marks the
/// state closed (unblocking the reader and any completing workers),
/// closes the socket, and deregisters from the connection table.
fn teardown(shared: &Arc<Shared>, conn: &Arc<Conn>) {
    {
        let mut resp = conn.resp.lock();
        resp.closed = true;
        conn.resp_cv.notify_all();
        conn.slot_cv.notify_all();
    }
    let _ = conn.stream.shutdown(Shutdown::Both);
    {
        let mut conns = shared.conns.lock();
        conns.remove(&conn.id);
        shared.conns_cv.notify_all();
    }
    shared.stats.active_connections.fetch_sub(1, Ordering::Relaxed);
}

// ---- Workers --------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut work = shared.work.lock();
            loop {
                if let Some(job) = work.queue.pop_front() {
                    break Some(job);
                }
                if work.shutdown {
                    break None;
                }
                shared.work_cv.wait(&mut work);
            }
        };
        let Some(Job { conn, req }) = job else { break };
        // All server locks are released here: the engine call below
        // acquires ranks 5..90 from a clean stack (the lattice's server
        // band sits below the engine band precisely to prove this).
        let body = execute(shared, req.op);
        shared.stats.batches_executed.fetch_add(1, Ordering::Relaxed);
        let frame = nbb_proto::encode_response(&Response { id: req.id, body });
        conn.complete(frame);
    }
}

// ---- Request execution ----------------------------------------------

fn wire_bound(b: WireBound) -> Bound<Vec<u8>> {
    match b {
        WireBound::Unbounded => Bound::Unbounded,
        WireBound::Included(k) => Bound::Included(k),
        WireBound::Excluded(k) => Bound::Excluded(k),
    }
}

fn wire_projection(p: Projection) -> WireProjection {
    WireProjection { payload: p.payload, index_only: p.index_only }
}

/// Executes one request op against the database, mapping every engine
/// error to a wire [`ResponseBody::Error`] (the connection survives;
/// only this response reports failure).
fn execute(shared: &Shared, op: RequestOp) -> ResponseBody {
    let r = try_execute(shared, op);
    r.unwrap_or_else(|e| ResponseBody::Error { message: e.to_string() })
}

fn try_execute(
    shared: &Shared,
    op: RequestOp,
) -> Result<ResponseBody, nbb_storage::error::StorageError> {
    let db = &shared.db;
    Ok(match op {
        RequestOp::GetMany { table, index, keys } => {
            let t = db.table(&table)?;
            let rows = t.index(&index)?.get_many(&keys)?;
            ResponseBody::GetMany { rows }
        }
        RequestOp::ProjectMany { table, index, keys } => {
            let t = db.table(&table)?;
            let rows = t.index(&index)?.project_many(&keys)?;
            ResponseBody::ProjectMany {
                rows: rows.into_iter().map(|r| r.map(wire_projection)).collect(),
            }
        }
        RequestOp::InsertMany { table, tuples } => {
            let t = db.table(&table)?;
            let rids = t.insert_many(&tuples)?;
            ResponseBody::InsertMany { rids: rids.into_iter().map(|r| r.to_u64()).collect() }
        }
        RequestOp::PutMany { table, index, tuples } => {
            let t = db.table(&table)?;
            let rids = t.index(&index)?.put_many(&tuples)?;
            ResponseBody::PutMany { rids: rids.into_iter().map(|r| r.to_u64()).collect() }
        }
        RequestOp::UpdateMany { table, index, pairs } => {
            let t = db.table(&table)?;
            let applied = t.index(&index)?.update_many(&pairs)?;
            ResponseBody::UpdateMany { applied }
        }
        RequestOp::DeleteMany { table, index, keys } => {
            let t = db.table(&table)?;
            let applied = t.index(&index)?.delete_many(&keys)?;
            ResponseBody::DeleteMany { applied }
        }
        RequestOp::Range { table, index, lo, hi, limit } => {
            let t = db.table(&table)?;
            let idx = t.index(&index)?;
            let mut cursor = idx.range((wire_bound(lo), wire_bound(hi)));
            let mut rows: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            while rows.len() < limit as usize {
                match cursor.next() {
                    Some(row) => {
                        let row = row?;
                        rows.push((row.key, row.tuple));
                    }
                    None => break,
                }
            }
            // Probe one row past the page so `more` is authoritative
            // (a failed probe still proves more rows exist).
            let more = rows.len() == limit as usize && cursor.next().is_some();
            let resume = rows.last().map(|(k, _)| k.clone());
            ResponseBody::Range { rows, more, resume }
        }
        RequestOp::Batch { table, ops } => {
            let t = db.table(&table)?;
            let mut batch = Batch::new();
            for op in &ops {
                batch = match op {
                    WireBatchOp::Get { index, key } => batch.get(index, key),
                    WireBatchOp::Project { index, key } => batch.project(index, key),
                    WireBatchOp::Put { index, tuple } => batch.put(index, tuple),
                    WireBatchOp::Update { index, key, tuple } => batch.update(index, key, tuple),
                    WireBatchOp::Delete { index, key } => batch.delete(index, key),
                };
            }
            let outputs = t.execute(batch)?;
            ResponseBody::Batch {
                outputs: outputs
                    .into_iter()
                    .map(|o| match o {
                        BatchOutput::Tuple(t) => WireBatchOutput::Tuple(t),
                        BatchOutput::Projection(p) => {
                            WireBatchOutput::Projection(p.map(wire_projection))
                        }
                        BatchOutput::Put(rid) => WireBatchOutput::Put(rid.to_u64()),
                        BatchOutput::Updated(b) => WireBatchOutput::Updated(b),
                        BatchOutput::Deleted(b) => WireBatchOutput::Deleted(b),
                    })
                    .collect(),
            }
        }
        RequestOp::Stats => ResponseBody::Stats(shared.stats.snapshot()),
    })
}
