//! CLI for the repo lint pass: `cargo run -p nbb-lint [workspace-root]`.
//!
//! Walks the workspace (default: the current directory, which is the
//! workspace root under `cargo run`), applies the rules documented in
//! the library crate, prints one `file:line: [rule] message` diagnostic
//! per finding, and exits non-zero if anything was found.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "nbb-lint: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }
    match nbb_lint::scan_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("nbb-lint: clean (rules L1-L6)");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("nbb-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("nbb-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
