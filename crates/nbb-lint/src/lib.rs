//! Repo-specific static analysis for the nbb workspace.
//!
//! A hand-rolled, dependency-free Rust source scanner enforcing the
//! concurrency and error-handling rules the engine's correctness
//! arguments rest on. It is deliberately *not* a general Rust parser:
//! a comment/string-aware tokenizing pass plus brace tracking is enough
//! for every rule here, keeps the tool instant, and works in the
//! offline build container.
//!
//! Rules:
//!
//! * **L1 (ranked-locks)** — engine crates (`nbb-storage`, `nbb-btree`,
//!   `nbb-core`) must construct every lock with
//!   `Mutex::with_rank`/`RwLock::with_rank`, never bare `::new`, so the
//!   debug-build rank checker covers it. Test code is exempt; a
//!   deliberate exception carries `// nbb-lint: allow(unranked, why)`.
//! * **L2 (no-std-sync)** — `std::sync::{Mutex, RwLock, Condvar}` (and
//!   their guards) are forbidden outside `crates/shims`: every lock
//!   funnels through the `parking_lot` shim, the single choke point
//!   where the rank discipline lives.
//! * **L3 (wait-in-loop)** — every condvar `wait(guard)` call must sit
//!   inside a `while`/`loop`/`for` body: the fault machine, intents,
//!   write-behind drain, and compressor protocols all assume spurious
//!   wakeups are re-checked.
//! * **L4 (no-unwrap)** — non-test code in the engine crates may not
//!   `.unwrap()`/`.expect(`: fallible paths return `StorageError`. A
//!   true invariant carries `// nbb-lint: allow(unwrap, why)` on or
//!   just above the line.
//! * **L5 (safety-comment)** — any `unsafe` token requires a
//!   `// SAFETY:` comment on the same or nearby preceding lines.
//! * **L6 (rank-exempt)** — the shim's order-check escape hatches
//!   (`lock_unordered` and friends) require a `// rank-exempt:` comment
//!   stating the protocol argument that replaces the rank proof.
//!
//! The binary (`cargo run -p nbb-lint`) walks the workspace, applies
//! the rules, prints `file:line: [rule] message` diagnostics, and exits
//! non-zero on any finding. The scanner itself is unit-tested against
//! fixture snippets in this file.

use std::fmt;
use std::path::Path;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`L1`..`L6`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// How a file participates in the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Non-test source of an engine crate (`crates/nbb-{storage,btree,
    /// core,proto,server,client}/src`): additionally subject to L1 and
    /// L4.
    pub engine_src: bool,
}

/// Classifies a workspace-relative path. Shim sources are `None`
/// (excluded entirely: they *implement* the primitives the rules are
/// about), everything else is scanned.
pub fn classify(rel_path: &str) -> Option<FileClass> {
    let p = rel_path.replace('\\', "/");
    if p.starts_with("crates/shims/") || p.starts_with("target/") {
        return None;
    }
    // The wire tier (proto/server/client) holds locks across the same
    // engine calls it multiplexes, so it lives under the same rules as
    // the engine proper: every lock ranked, every unwrap justified.
    let engine_src = [
        "crates/nbb-storage/src/",
        "crates/nbb-btree/src/",
        "crates/nbb-core/src/",
        "crates/nbb-proto/src/",
        "crates/nbb-server/src/",
        "crates/nbb-client/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre));
    Some(FileClass { engine_src })
}

/// The comment/string-stripped views of one source file: `code` has
/// comments and literal contents blanked to spaces, `comments` has
/// everything *except* comment text blanked. Both preserve line
/// structure exactly, so offsets and line numbers line up with the
/// original.
struct Views {
    code: String,
    comments: String,
}

fn strip(src: &str) -> Views {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let b = src.as_bytes();
    let mut code = Vec::with_capacity(b.len());
    let mut comments = Vec::with_capacity(b.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            if st == St::Line {
                st = St::Code;
            }
            code.push(b'\n');
            comments.push(b'\n');
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = St::Line;
                    comments.push(b' ');
                    code.push(b' ');
                    i += 1;
                    comments.push(b' ');
                    code.push(b' ');
                    i += 1;
                    continue;
                }
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(1);
                    for _ in 0..2 {
                        comments.push(b' ');
                        code.push(b' ');
                        i += 1;
                    }
                    continue;
                }
                if c == b'"' {
                    st = St::Str;
                    code.push(b' ');
                    comments.push(b' ');
                    i += 1;
                    continue;
                }
                // Raw (and raw byte) strings: r"..", r#".."#, br##"..
                if c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r')) {
                    let start = if c == b'b' { i + 2 } else { i + 1 };
                    let mut j = start;
                    while b.get(j) == Some(&b'#') {
                        j += 1;
                    }
                    let prev_ident =
                        i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
                    if b.get(j) == Some(&b'"') && !prev_ident {
                        let hashes = (j - start) as u32;
                        st = St::RawStr(hashes);
                        while i <= j {
                            code.push(b' ');
                            comments.push(b' ');
                            i += 1;
                        }
                        continue;
                    }
                }
                if c == b'\'' {
                    // Distinguish char literals from lifetimes: 'x' or
                    // an escape is a literal; 'ident (no closing quote
                    // right after one char) is a lifetime.
                    let is_char = matches!(
                        (b.get(i + 1), b.get(i + 2)),
                        (Some(b'\\'), _) | (Some(_), Some(b'\''))
                    );
                    if is_char {
                        st = St::Char;
                        code.push(b' ');
                        comments.push(b' ');
                        i += 1;
                        continue;
                    }
                }
                code.push(c);
                comments.push(b' ');
                i += 1;
            }
            St::Line => {
                code.push(b' ');
                comments.push(c);
                i += 1;
            }
            St::Block(d) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if d == 1 { St::Code } else { St::Block(d - 1) };
                    for _ in 0..2 {
                        code.push(b' ');
                        comments.push(b' ');
                        i += 1;
                    }
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(d + 1);
                    for _ in 0..2 {
                        code.push(b' ');
                        comments.push(b' ');
                        i += 1;
                    }
                } else {
                    code.push(b' ');
                    comments.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == b'\\' {
                    code.push(b' ');
                    comments.push(b' ');
                    i += 1;
                    if i < b.len() && b[i] != b'\n' {
                        code.push(b' ');
                        comments.push(b' ');
                        i += 1;
                    }
                    continue;
                }
                if c == b'"' {
                    st = St::Code;
                }
                code.push(b' ');
                comments.push(b' ');
                i += 1;
            }
            St::RawStr(h) => {
                if c == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < h && b.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == h {
                        while i < j {
                            if b[i] == b'\n' {
                                code.push(b'\n');
                                comments.push(b'\n');
                            } else {
                                code.push(b' ');
                                comments.push(b' ');
                            }
                            i += 1;
                        }
                        st = St::Code;
                        continue;
                    }
                }
                code.push(b' ');
                comments.push(b' ');
                i += 1;
            }
            St::Char => {
                if c == b'\\' {
                    code.push(b' ');
                    comments.push(b' ');
                    i += 1;
                    if i < b.len() && b[i] != b'\n' {
                        code.push(b' ');
                        comments.push(b' ');
                        i += 1;
                    }
                    continue;
                }
                if c == b'\'' {
                    st = St::Code;
                }
                code.push(b' ');
                comments.push(b' ');
                i += 1;
            }
        }
    }
    Views {
        code: String::from_utf8(code).expect("same byte structure as input"),
        comments: String::from_utf8(comments).expect("same byte structure as input"),
    }
}

fn contains_word(hay: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay.as_bytes()[at - 1].is_ascii_alphanumeric() && hay.as_bytes()[at - 1] != b'_';
        let after = at + word.len();
        let after_ok = after >= hay.len()
            || !hay.as_bytes()[after].is_ascii_alphanumeric() && hay.as_bytes()[after] != b'_';
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Per-line flags: is this line inside a `#[cfg(test)]` item?
fn test_region_lines(code: &str) -> Vec<bool> {
    let lines: Vec<&str> = code.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].contains("cfg(test)") || lines[i].contains("cfg(all(test") {
            // The attribute gates the next item: skip to its opening
            // brace, then consume the brace-balanced block.
            let mut depth: i64 = 0;
            let mut opened = false;
            let mut j = i;
            'outer: while j < lines.len() {
                for ch in lines[j].bytes() {
                    match ch {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        // `#[cfg(test)] use foo;` or a gated statement
                        // without a block: stop at the semicolon.
                        b';' if !opened => {
                            in_test[j] = true;
                            break 'outer;
                        }
                        _ => {}
                    }
                }
                in_test[j] = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// 1-based line number of byte offset `at`.
fn line_of(text: &str, at: usize) -> usize {
    text.as_bytes()[..at].iter().filter(|&&c| c == b'\n').count() + 1
}

/// True if the comment text on `line` (1-based) or any of the `window`
/// lines above it contains `needle`.
fn comment_nearby(comments: &str, line: usize, window: usize, needle: &str) -> bool {
    let lines: Vec<&str> = comments.lines().collect();
    let hi = line.min(lines.len());
    let lo = hi.saturating_sub(window + 1);
    lines[lo..hi].iter().any(|l| l.contains(needle))
}

/// Scans one file's source, returning every finding.
pub fn scan_source(rel_path: &str, src: &str, class: FileClass) -> Vec<Finding> {
    let v = strip(src);
    let in_test = test_region_lines(&v.code);
    let is_test_line = |line: usize| in_test.get(line.saturating_sub(1)).copied().unwrap_or(false);
    let mut out = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String| {
        out.push(Finding { file: rel_path.to_string(), line, rule, message });
    };

    // L1: no unranked lock constructors in engine non-test code.
    if class.engine_src {
        for pat in ["Mutex::new(", "RwLock::new("] {
            let mut from = 0;
            while let Some(pos) = v.code[from..].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                let before = v.code.as_bytes()[..at].last().copied().unwrap_or(b' ');
                if before.is_ascii_alphanumeric() || before == b'_' {
                    continue; // e.g. StdMutex::new — caught by L2 anyway
                }
                let line = line_of(&v.code, at);
                if is_test_line(line) {
                    continue;
                }
                if comment_nearby(&v.comments, line, 2, "nbb-lint: allow(unranked") {
                    continue;
                }
                push(
                    line,
                    "L1",
                    format!(
                        "unranked `{}` in engine code: use `with_rank` with a \
                         `lockrank` constant so the debug rank checker covers it",
                        &pat[..pat.len() - 1]
                    ),
                );
            }
        }
    }

    // L2: std::sync lock primitives outside the shim.
    {
        let mut from = 0;
        while let Some(pos) = v.code[from..].find("std::sync::") {
            let at = from + pos;
            from = at + "std::sync::".len();
            let span_end = v.code[at..]
                .find(';')
                .map(|e| at + e)
                .unwrap_or_else(|| v.code.len().min(at + 200));
            let span = &v.code[at..span_end];
            for word in
                ["Mutex", "RwLock", "Condvar", "MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"]
            {
                if contains_word(span, word) {
                    push(
                        line_of(&v.code, at),
                        "L2",
                        format!(
                            "`std::sync::{word}` outside crates/shims: use the \
                             `parking_lot` shim so the lock participates in the \
                             rank discipline"
                        ),
                    );
                    break;
                }
            }
        }
    }

    // L3: condvar waits must sit inside a loop. Track enclosing block
    // kinds with a brace scan; a block is a "loop" if its header (the
    // text since the previous `;`/`{`/`}`) contains while/loop/for.
    {
        let bytes = v.code.as_bytes();
        let mut stack: Vec<bool> = Vec::new(); // true = loop block
        let mut header_start = 0usize;
        let mut i = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    let header = &v.code[header_start..i];
                    let is_loop = contains_word(header, "while")
                        || contains_word(header, "loop")
                        || contains_word(header, "for");
                    stack.push(is_loop);
                    header_start = i + 1;
                }
                b'}' => {
                    stack.pop();
                    header_start = i + 1;
                }
                b';' => header_start = i + 1,
                b'.' if v.code[i..].starts_with(".wait(") => {
                    let mut j = i + ".wait(".len();
                    while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\n') {
                        j += 1;
                    }
                    let has_arg = j < bytes.len() && bytes[j] != b')';
                    if has_arg && !stack.iter().any(|&l| l) {
                        push(
                            line_of(&v.code, i),
                            "L3",
                            "condvar `wait` outside a `while`/`loop`: spurious \
                             wakeups must re-check the predicate"
                                .to_string(),
                        );
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    // L4: no unwrap/expect in engine non-test code without an allow tag.
    if class.engine_src {
        for pat in [".unwrap()", ".expect("] {
            let mut from = 0;
            while let Some(pos) = v.code[from..].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                let line = line_of(&v.code, at);
                if is_test_line(line) {
                    continue;
                }
                if comment_nearby(&v.comments, line, 2, "nbb-lint: allow(unwrap") {
                    continue;
                }
                push(
                    line,
                    "L4",
                    format!(
                        "`{}` in engine code: return a `StorageError` for fallible \
                         paths, or tag a true invariant with \
                         `// nbb-lint: allow(unwrap, why)`",
                        pat.trim_end_matches('(')
                    ),
                );
            }
        }
    }

    // L5: unsafe requires a SAFETY comment.
    {
        let mut from = 0;
        while let Some(pos) = v.code[from..].find("unsafe") {
            let at = from + pos;
            from = at + "unsafe".len();
            let before_ok = at == 0 || {
                let b = v.code.as_bytes()[at - 1];
                !b.is_ascii_alphanumeric() && b != b'_'
            };
            let after = at + "unsafe".len();
            let after_ok = after >= v.code.len() || {
                let b = v.code.as_bytes()[after];
                !b.is_ascii_alphanumeric() && b != b'_'
            };
            if !(before_ok && after_ok) {
                continue;
            }
            let line = line_of(&v.code, at);
            if !comment_nearby(&v.comments, line, 5, "SAFETY") {
                push(line, "L5", "`unsafe` without a nearby `// SAFETY:` comment".to_string());
            }
        }
    }

    // L6: rank-check escape hatches require a rank-exempt justification.
    {
        for pat in ["lock_unordered(", "read_unordered(", "write_unordered("] {
            let mut from = 0;
            while let Some(pos) = v.code[from..].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                let line = line_of(&v.code, at);
                if !comment_nearby(&v.comments, line, 12, "rank-exempt") {
                    push(
                        line,
                        "L6",
                        format!(
                            "`{}` without a `// rank-exempt:` comment stating why \
                             this acquisition cannot deadlock despite skipping \
                             the order check",
                            pat.trim_end_matches('(')
                        ),
                    );
                }
            }
        }
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Recursively scans every `.rs` file under `root` (the workspace
/// checkout), returning all findings sorted by path and line.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let Some(class) = classify(&rel) else { continue };
        let src = std::fs::read_to_string(root.join(&rel))?;
        out.extend(scan_source(&rel, &src, class));
    }
    Ok(out)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINE: FileClass = FileClass { engine_src: true };
    const OTHER: FileClass = FileClass { engine_src: false };

    fn rules(src: &str, class: FileClass) -> Vec<&'static str> {
        scan_source("x.rs", src, class).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn classify_scopes_rules_by_path() {
        assert!(classify("crates/shims/parking_lot/src/lib.rs").is_none());
        assert!(classify("crates/nbb-storage/src/buffer.rs").unwrap().engine_src);
        assert!(classify("crates/nbb-proto/src/lib.rs").unwrap().engine_src);
        assert!(classify("crates/nbb-server/src/lib.rs").unwrap().engine_src);
        assert!(classify("crates/nbb-client/src/lib.rs").unwrap().engine_src);
        assert!(!classify("crates/nbb-storage/tests/overlapped_io.rs").unwrap().engine_src);
        assert!(!classify("crates/nbb-server/tests/server_integration.rs").unwrap().engine_src);
        assert!(!classify("tests/lock_order.rs").unwrap().engine_src);
        assert!(!classify("crates/nbb-lint/src/lib.rs").unwrap().engine_src);
    }

    // ---- L1 -------------------------------------------------------

    #[test]
    fn l1_flags_unranked_lock_constructors() {
        let src = "fn f() { let m = Mutex::new(0); let l = RwLock::new(1); }";
        assert_eq!(rules(src, ENGINE), vec!["L1", "L1"]);
        assert_eq!(rules(src, OTHER), Vec::<&str>::new(), "only engine src is in scope");
    }

    #[test]
    fn l1_accepts_ranked_and_allowed_constructors() {
        let ranked = "fn f() { let m = Mutex::with_rank(lockrank::DISK_IO, 0); }";
        assert!(rules(ranked, ENGINE).is_empty());
        let allowed = "// nbb-lint: allow(unranked, test-support gate outside cfg(test))\n\
                       fn f() { let m = Mutex::new(0); }";
        assert!(rules(allowed, ENGINE).is_empty());
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn f() { let m = Mutex::new(0); }\n}\n";
        assert!(rules(in_tests, ENGINE).is_empty());
    }

    // ---- L2 -------------------------------------------------------

    #[test]
    fn l2_flags_std_sync_primitives_everywhere() {
        assert_eq!(rules("use std::sync::Mutex;", OTHER), vec!["L2"]);
        assert_eq!(rules("use std::sync::{Arc, Condvar};", ENGINE), vec!["L2"]);
        assert_eq!(
            rules("use std::sync::{\n    Arc,\n    RwLock,\n};", OTHER),
            vec!["L2"],
            "multi-line use statements are scanned to the semicolon"
        );
        assert_eq!(rules("use std::sync::{Mutex as StdMutex};", OTHER), vec!["L2"]);
    }

    #[test]
    fn l2_accepts_std_sync_non_lock_items() {
        assert!(rules("use std::sync::Arc;", ENGINE).is_empty());
        assert!(rules("use std::sync::atomic::{AtomicU64, Ordering};", ENGINE).is_empty());
        assert!(rules("use std::sync::{Arc, Barrier, mpsc};", OTHER).is_empty());
        assert!(rules("// std::sync::Mutex is banned here", OTHER).is_empty());
    }

    // ---- L3 -------------------------------------------------------

    #[test]
    fn l3_flags_wait_outside_a_loop() {
        let src = "fn f() { let mut g = m.lock(); cv.wait(&mut g); }";
        assert_eq!(rules(src, OTHER), vec!["L3"]);
    }

    #[test]
    fn l3_accepts_wait_inside_while_loop_and_match_arms() {
        let w = "fn f() { let mut g = m.lock(); while !*g { cv.wait(&mut g); } }";
        assert!(rules(w, OTHER).is_empty());
        let l = "fn f() { loop { match s { P => cv.wait(&mut g), R => return } } }";
        assert!(rules(l, OTHER).is_empty());
        let join = "fn f() { inflight.wait(); barrier.wait(); }";
        assert!(rules(join, OTHER).is_empty(), "argument-less wait() is not a condvar wait");
    }

    // ---- L4 -------------------------------------------------------

    #[test]
    fn l4_flags_unwrap_and_expect_in_engine_code() {
        let src = "fn f() { x.unwrap(); y.expect(\"boom\"); }";
        assert_eq!(rules(src, ENGINE), vec!["L4", "L4"]);
        assert!(rules(src, OTHER).is_empty(), "tests and tools may unwrap");
    }

    #[test]
    fn l4_accepts_tagged_invariants_test_code_and_doc_examples() {
        let tagged = "fn f() {\n    // nbb-lint: allow(unwrap, heap always has >= 1 page)\n    x.unwrap();\n}";
        assert!(rules(tagged, ENGINE).is_empty());
        let test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}";
        assert!(rules(test, ENGINE).is_empty());
        let type_not_call = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); }";
        assert!(rules(type_not_call, ENGINE).is_empty());
        let doc = "/// ```\n/// x.unwrap();\n/// ```\nfn f() {}";
        assert!(rules(doc, ENGINE).is_empty(), "doc-comment examples are comments");
        let in_string = "fn f() { let s = \".unwrap()\"; }";
        assert!(rules(in_string, ENGINE).is_empty(), "string literals are stripped");
    }

    // ---- L5 -------------------------------------------------------

    #[test]
    fn l5_flags_unsafe_without_safety_comment() {
        let src = "fn f() { unsafe { do_it() } }";
        assert_eq!(rules(src, OTHER), vec!["L5"]);
    }

    #[test]
    fn l5_accepts_commented_unsafe() {
        let src = "fn f() {\n    // SAFETY: the pointer is valid for the call.\n    unsafe { do_it() }\n}";
        assert!(rules(src, OTHER).is_empty());
        let word = "fn f() { let unsafety = 1; }";
        assert!(rules(word, OTHER).is_empty(), "substring matches don't count");
    }

    // ---- L6 -------------------------------------------------------

    #[test]
    fn l6_flags_bare_escape_hatch() {
        let src = "fn f() { let g = map.lock_unordered(); }";
        assert_eq!(rules(src, OTHER), vec!["L6"]);
    }

    #[test]
    fn l6_accepts_justified_escape_hatch() {
        let src = "fn f() {\n    // rank-exempt: entry point re-entered from closures.\n    let g = map.lock_unordered();\n}";
        assert!(rules(src, OTHER).is_empty());
    }

    // ---- stripping machinery -------------------------------------

    #[test]
    fn strip_handles_raw_strings_chars_and_nested_comments() {
        let src =
            "fn f() { let a = r#\"Mutex::new(\"#; let c = '\"'; /* x /* y */ Mutex::new( */ }";
        assert!(rules(src, ENGINE).is_empty());
        let lifetime = "fn f<'a>(x: &'a str) -> &'a str { x }";
        assert!(rules(lifetime, ENGINE).is_empty());
    }

    #[test]
    fn findings_carry_file_line_and_rule() {
        let src = "fn f() {\n    x.unwrap();\n}";
        let f = &scan_source("crates/nbb-core/src/db.rs", src, ENGINE)[0];
        assert_eq!((f.file.as_str(), f.line, f.rule), ("crates/nbb-core/src/db.rs", 2, "L4"));
        assert!(f.to_string().contains("crates/nbb-core/src/db.rs:2: [L4]"));
    }
}
