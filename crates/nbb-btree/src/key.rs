//! Order-preserving fixed-width key codecs.
//!
//! The paper (§2.1.1) assumes fixed-length index keys; this module maps
//! typed values onto fixed-width byte strings whose `memcmp` order equals
//! the natural order of the values, so the B+Tree only ever compares raw
//! bytes:
//!
//! * unsigned integers — big-endian;
//! * signed integers — big-endian with the sign bit flipped;
//! * strings — truncated/zero-padded to a fixed width (zero pads sort
//!   before any content byte, preserving prefix order);
//! * composites — concatenation of fixed-width components, e.g. the
//!   Wikipedia `name_title` key `(namespace: u32, title: char[N])`.

/// Encodes a `u64` as 8 order-preserving bytes.
#[inline]
pub fn encode_u64(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Decodes the result of [`encode_u64`].
#[inline]
pub fn decode_u64(b: &[u8]) -> u64 {
    // nbb-lint: allow(unwrap, slice width is the codec's documented contract)
    u64::from_be_bytes(b[..8].try_into().expect("u64 key needs 8 bytes"))
}

/// Encodes a `u32` as 4 order-preserving bytes.
#[inline]
pub fn encode_u32(v: u32) -> [u8; 4] {
    v.to_be_bytes()
}

/// Decodes the result of [`encode_u32`].
#[inline]
pub fn decode_u32(b: &[u8]) -> u32 {
    // nbb-lint: allow(unwrap, slice width is the codec's documented contract)
    u32::from_be_bytes(b[..4].try_into().expect("u32 key needs 4 bytes"))
}

/// Encodes an `i64` as 8 order-preserving bytes (sign bit flipped).
#[inline]
pub fn encode_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1 << 63)).to_be_bytes()
}

/// Decodes the result of [`encode_i64`].
#[inline]
pub fn decode_i64(b: &[u8]) -> i64 {
    // nbb-lint: allow(unwrap, slice width is the codec's documented contract)
    (u64::from_be_bytes(b[..8].try_into().expect("i64 key needs 8 bytes")) ^ (1 << 63)) as i64
}

/// Encodes a string into exactly `width` bytes: UTF-8 bytes truncated at
/// `width`, zero-padded on the right.
///
/// Zero padding keeps `memcmp` order consistent with prefix order
/// (`"ab" < "ab0"`); distinct strings sharing a `width`-byte prefix
/// collapse to the same key, which callers must tolerate (the Wikipedia
/// workload uses widths comfortably above real title lengths).
pub fn encode_str(s: &str, width: usize) -> Vec<u8> {
    let mut out = vec![0u8; width];
    let bytes = s.as_bytes();
    let n = bytes.len().min(width);
    out[..n].copy_from_slice(&bytes[..n]);
    out
}

/// Decodes the result of [`encode_str`], trimming zero padding.
pub fn decode_str(b: &[u8]) -> String {
    let end = b.iter().position(|&c| c == 0).unwrap_or(b.len());
    String::from_utf8_lossy(&b[..end]).into_owned()
}

/// Builder for fixed-width composite keys.
///
/// ```
/// use nbb_btree::key::CompositeKey;
/// // Wikipedia name_title key: (namespace: u32, title: 28 bytes) = 32 bytes
/// let key = CompositeKey::new().u32(0).str("Main_Page", 28).finish();
/// assert_eq!(key.len(), 32);
/// ```
#[derive(Debug, Default)]
pub struct CompositeKey {
    buf: Vec<u8>,
}

impl CompositeKey {
    /// Starts an empty composite key.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an order-preserving `u32` component.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&encode_u32(v));
        self
    }

    /// Appends an order-preserving `u64` component.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&encode_u64(v));
        self
    }

    /// Appends an order-preserving `i64` component.
    pub fn i64(mut self, v: i64) -> Self {
        self.buf.extend_from_slice(&encode_i64(v));
        self
    }

    /// Appends a fixed-width string component.
    pub fn str(mut self, s: &str, width: usize) -> Self {
        self.buf.extend_from_slice(&encode_str(s, width));
        self
    }

    /// Finishes the key.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_order_preserved() {
        let pairs = [(0u64, 1u64), (1, 2), (255, 256), (u64::MAX - 1, u64::MAX)];
        for (a, b) in pairs {
            assert!(encode_u64(a) < encode_u64(b), "{a} vs {b}");
        }
        assert_eq!(decode_u64(&encode_u64(123_456_789)), 123_456_789);
    }

    #[test]
    fn i64_order_preserved_across_zero() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 1_000_000, i64::MAX];
        for w in vals.windows(2) {
            assert!(encode_i64(w[0]) < encode_i64(w[1]), "{} vs {}", w[0], w[1]);
        }
        for v in vals {
            assert_eq!(decode_i64(&encode_i64(v)), v);
        }
    }

    #[test]
    fn str_round_trip_and_order() {
        assert_eq!(decode_str(&encode_str("hello", 16)), "hello");
        assert!(encode_str("abc", 8) < encode_str("abd", 8));
        assert!(encode_str("ab", 8) < encode_str("abc", 8));
        // truncation at width
        assert_eq!(decode_str(&encode_str("abcdefgh", 4)), "abcd");
    }

    #[test]
    fn composite_orders_lexicographically_by_component() {
        let k1 = CompositeKey::new().u32(0).str("zebra", 16).finish();
        let k2 = CompositeKey::new().u32(1).str("apple", 16).finish();
        assert!(k1 < k2, "first component dominates");
        let k3 = CompositeKey::new().u32(1).str("banana", 16).finish();
        assert!(k2 < k3, "second component breaks ties");
        assert_eq!(k1.len(), 20);
    }

    #[test]
    fn u32_round_trip() {
        for v in [0u32, 1, 65_535, u32::MAX] {
            assert_eq!(decode_u32(&encode_u32(v)), v);
        }
    }
}
