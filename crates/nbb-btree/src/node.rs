//! B+Tree node layout — the paper's Figure 1, byte for byte.
//!
//! ```text
//! 0                40                free_low      free_high        P-8   P
//! +----------------+-----------------+--------------+---------------+----+
//! | fixed header   | key entries ... | FREE SPACE   | directory ... |foot|
//! |                | (grow upward →) | (the cache)  | (← grow down) |    |
//! +----------------+-----------------+--------------+---------------+----+
//! ```
//!
//! * **Key entries** are fixed-size `key ‖ value(u64)` records written in
//!   arrival order starting at byte 40; `free_low` is one past the last.
//! * **Directory** is an array of `u16` offsets in *sorted key order*,
//!   growing downward from the footer; `free_high` is its low end.
//! * The bytes in `[free_low, free_high)` are the page's free space —
//!   the region §2.1 recycles as a tuple cache.
//!
//! ### Zeroing discipline (cache correctness)
//!
//! A cache slot is identified by a nonzero tuple id at its start, so any
//! byte that *enters* the free region must be zero. Operations that grow
//! the free region (delete, compaction, node rebuild) therefore zero the
//! whole free region, conservatively dropping that page's cache.
//! Operations that shrink it (key/directory growth) overwrite cache
//! periphery freely — exactly the paper's contract.
//!
//! Header fields (little-endian):
//!
//! | off | size | field |
//! |-----|------|-------|
//! | 0   | 2    | magic (0xB17E) |
//! | 2   | 2    | level (0 = leaf) |
//! | 4   | 2    | nkeys |
//! | 6   | 2    | dead key-entry bytes (compaction credit) |
//! | 8   | 2    | free_low |
//! | 10  | 2    | free_high |
//! | 12  | 4    | reserved |
//! | 16  | 8    | csn_p — page cache sequence number (leaf) |
//! | 24  | 8    | next leaf PageId (u64::MAX = none) |
//! | 32  | 8    | aux: internal → leftmost child; leaf → predicate-log watermark |

use nbb_storage::page::{Page, PageId};

/// Fixed header size (Figure 1's "Fixed Size Header").
pub const NODE_HEADER_SIZE: usize = 40;
/// Fixed footer size (Figure 1's "Fixed Size Footer").
pub const NODE_FOOTER_SIZE: usize = 8;

const MAGIC: u16 = 0xB17E;
const OFF_MAGIC: usize = 0;
const OFF_LEVEL: usize = 2;
const OFF_NKEYS: usize = 4;
const OFF_DEAD: usize = 6;
const OFF_FREE_LOW: usize = 8;
const OFF_FREE_HIGH: usize = 10;
const OFF_CSN: usize = 16;
const OFF_NEXT: usize = 24;
const OFF_AUX: usize = 32;

/// Directory pointer size — the paper's `D`.
pub const DIR_ENTRY_SIZE: usize = 2;

/// Outcome of a node-local insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Key added.
    Inserted,
    /// Key already present; value overwritten.
    Updated,
    /// No room even after compaction; caller must split.
    NeedSplit,
}

/// Read-only view of a B+Tree node.
#[derive(Clone, Copy)]
pub struct Node<'a> {
    page: &'a Page,
    key_size: usize,
}

/// Mutable view of a B+Tree node.
pub struct NodeMut<'a> {
    page: &'a mut Page,
    key_size: usize,
}

impl<'a> Node<'a> {
    /// Wraps `page`; panics in debug builds if the magic is wrong.
    pub fn new(page: &'a Page, key_size: usize) -> Self {
        debug_assert_eq!(page.read_u16(OFF_MAGIC), MAGIC, "not a btree node");
        Node { page, key_size }
    }

    /// Bytes per key entry: key plus an 8-byte value/child pointer.
    #[inline]
    pub fn entry_size(&self) -> usize {
        self.key_size + 8
    }

    /// Tree level; 0 is a leaf.
    #[inline]
    pub fn level(&self) -> u16 {
        self.page.read_u16(OFF_LEVEL)
    }

    /// True for leaf nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level() == 0
    }

    /// Number of keys in the node.
    #[inline]
    pub fn nkeys(&self) -> usize {
        self.page.read_u16(OFF_NKEYS) as usize
    }

    /// Start of the free region.
    #[inline]
    pub fn free_low(&self) -> usize {
        self.page.read_u16(OFF_FREE_LOW) as usize
    }

    /// End of the free region.
    #[inline]
    pub fn free_high(&self) -> usize {
        self.page.read_u16(OFF_FREE_HIGH) as usize
    }

    /// Dead (deleted, uncompacted) key-entry bytes.
    #[inline]
    pub fn dead_bytes(&self) -> usize {
        self.page.read_u16(OFF_DEAD) as usize
    }

    /// Page cache sequence number (`CSNp`, §2.1.2).
    #[inline]
    pub fn csn(&self) -> u64 {
        self.page.read_u64(OFF_CSN)
    }

    /// Next-leaf pointer.
    #[inline]
    pub fn next_leaf(&self) -> PageId {
        PageId(self.page.read_u64(OFF_NEXT))
    }

    /// Leftmost child (internal nodes).
    #[inline]
    pub fn leftmost_child(&self) -> PageId {
        debug_assert!(!self.is_leaf());
        PageId(self.page.read_u64(OFF_AUX))
    }

    /// Predicate-log watermark (leaves): highest log sequence already
    /// checked against this page.
    #[inline]
    pub fn log_watermark(&self) -> u64 {
        debug_assert!(self.is_leaf());
        self.page.read_u64(OFF_AUX)
    }

    fn dir_base(&self) -> usize {
        self.page.size() - NODE_FOOTER_SIZE
    }

    #[inline]
    fn dir_offset(&self, i: usize) -> usize {
        self.dir_base() - DIR_ENTRY_SIZE * (i + 1)
    }

    #[inline]
    fn entry_offset(&self, i: usize) -> usize {
        self.page.read_u16(self.dir_offset(i)) as usize
    }

    /// Key at sorted position `i`.
    #[inline]
    pub fn key_at(&self, i: usize) -> &'a [u8] {
        let off = self.entry_offset(i);
        &self.page.bytes()[off..off + self.key_size]
    }

    /// Value (leaf payload or right-child page id) at sorted position `i`.
    #[inline]
    pub fn value_at(&self, i: usize) -> u64 {
        let off = self.entry_offset(i);
        self.page.read_u64(off + self.key_size)
    }

    /// Binary search: `Ok(i)` exact match, `Err(i)` insertion point.
    pub fn search(&self, key: &[u8]) -> Result<usize, usize> {
        debug_assert_eq!(key.len(), self.key_size);
        let mut lo = 0usize;
        let mut hi = self.nkeys();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.key_at(mid).cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Child page covering `key` (internal nodes): the rightmost
    /// separator ≤ `key` wins; below the first separator, the leftmost
    /// child.
    pub fn child_for(&self, key: &[u8]) -> PageId {
        debug_assert!(!self.is_leaf());
        match self.search(key) {
            Ok(i) => PageId(self.value_at(i)),
            Err(0) => self.leftmost_child(),
            Err(i) => PageId(self.value_at(i - 1)),
        }
    }

    /// First (smallest) key, if any.
    pub fn first_key(&self) -> Option<&'a [u8]> {
        (self.nkeys() > 0).then(|| self.key_at(0))
    }

    /// Last (largest) key, if any.
    pub fn last_key(&self) -> Option<&'a [u8]> {
        let n = self.nkeys();
        (n > 0).then(|| self.key_at(n - 1))
    }

    /// Copies out all `(key, value)` entries in sorted order.
    pub fn entries(&self) -> Vec<(Vec<u8>, u64)> {
        (0..self.nkeys()).map(|i| (self.key_at(i).to_vec(), self.value_at(i))).collect()
    }

    /// Maximum number of entries a node of this page/key size can hold.
    pub fn capacity(&self) -> usize {
        node_capacity(self.page.size(), self.key_size)
    }

    /// Live-content fill factor: header+footer+live entries+directory
    /// over page size.
    pub fn fill_factor(&self) -> f64 {
        let used = NODE_HEADER_SIZE
            + NODE_FOOTER_SIZE
            + self.nkeys() * (self.entry_size() + DIR_ENTRY_SIZE);
        used as f64 / self.page.size() as f64
    }

    /// Free bytes between the key region and the directory — the cache
    /// area of Figure 1.
    pub fn free_bytes(&self) -> usize {
        self.free_high().saturating_sub(self.free_low())
    }

    /// The underlying page.
    pub fn page(&self) -> &'a Page {
        self.page
    }

    /// The key width this view was built with.
    pub fn key_size_of(&self) -> usize {
        self.key_size
    }
}

impl<'a> NodeMut<'a> {
    /// Wraps `page` mutably; panics in debug builds on magic mismatch.
    pub fn new(page: &'a mut Page, key_size: usize) -> Self {
        debug_assert_eq!(page.read_u16(OFF_MAGIC), MAGIC, "not a btree node");
        NodeMut { page, key_size }
    }

    /// Formats `page` as an empty leaf.
    pub fn init_leaf(page: &'a mut Page, key_size: usize) -> Self {
        Self::init(page, key_size, 0)
    }

    /// Formats `page` as an empty internal node at `level` ≥ 1 with the
    /// given leftmost child.
    pub fn init_internal(
        page: &'a mut Page,
        key_size: usize,
        level: u16,
        leftmost: PageId,
    ) -> Self {
        assert!(level >= 1, "internal nodes live at level >= 1");
        let n = Self::init(page, key_size, level);
        n.page.write_u64(OFF_AUX, leftmost.0);
        n
    }

    fn init(page: &'a mut Page, key_size: usize, level: u16) -> Self {
        let size = page.size();
        assert!(size <= 65536, "btree pages limited to 64 KiB (u16 offsets)");
        assert!(
            node_capacity(size, key_size) >= 2,
            "page size {size} cannot hold 2 entries of key size {key_size}"
        );
        page.clear();
        page.write_u16(OFF_MAGIC, MAGIC);
        page.write_u16(OFF_LEVEL, level);
        page.write_u16(OFF_NKEYS, 0);
        page.write_u16(OFF_DEAD, 0);
        page.write_u16(OFF_FREE_LOW, NODE_HEADER_SIZE as u16);
        page.write_u16(OFF_FREE_HIGH, (size - NODE_FOOTER_SIZE) as u16);
        page.write_u64(OFF_NEXT, u64::MAX);
        // Footer: magic marker (Figure 1's fixed-size footer).
        page.write_u16(size - NODE_FOOTER_SIZE, MAGIC);
        NodeMut { page, key_size }
    }

    /// Read-only view of this node.
    pub fn as_ref(&self) -> Node<'_> {
        Node { page: self.page, key_size: self.key_size }
    }

    /// Sets the next-leaf pointer.
    pub fn set_next_leaf(&mut self, next: PageId) {
        self.page.write_u64(OFF_NEXT, next.0);
    }

    /// Sets `CSNp`.
    pub fn set_csn(&mut self, csn: u64) {
        self.page.write_u64(OFF_CSN, csn);
    }

    /// Sets the predicate-log watermark (leaves).
    pub fn set_log_watermark(&mut self, wm: u64) {
        debug_assert!(self.as_ref().is_leaf());
        self.page.write_u64(OFF_AUX, wm);
    }

    /// Zeroes the entire free region, dropping any cached entries.
    pub fn zero_free_region(&mut self) {
        let (lo, hi) = (self.as_ref().free_low(), self.as_ref().free_high());
        if lo < hi {
            self.page.bytes_mut()[lo..hi].fill(0);
        }
    }

    /// Inserts or updates `key → value`.
    pub fn insert(&mut self, key: &[u8], value: u64) -> InsertOutcome {
        debug_assert_eq!(key.len(), self.key_size);
        let view = self.as_ref();
        let pos = match view.search(key) {
            Ok(i) => {
                let off = view.entry_offset(i);
                let ks = self.key_size;
                self.page.write_u64(off + ks, value);
                return InsertOutcome::Updated;
            }
            Err(i) => i,
        };
        let entry = self.as_ref().entry_size();
        let need = entry + DIR_ENTRY_SIZE;
        if self.as_ref().free_bytes() < need {
            if self.as_ref().dead_bytes() + self.as_ref().free_bytes() >= need {
                self.compact();
            } else {
                return InsertOutcome::NeedSplit;
            }
        }
        // Write the entry at free_low.
        let off = self.as_ref().free_low();
        self.page.bytes_mut()[off..off + self.key_size].copy_from_slice(key);
        self.page.write_u64(off + self.key_size, value);
        self.page.write_u16(OFF_FREE_LOW, (off + entry) as u16);
        // Grow the directory and shift positions >= pos down by one cell.
        let n = self.as_ref().nkeys();
        let dir_base = self.as_ref().dir_base();
        let old_low = dir_base - DIR_ENTRY_SIZE * n; // == free_high
        let new_low = old_low - DIR_ENTRY_SIZE;
        let move_from = old_low;
        let move_to = new_low;
        let move_len = DIR_ENTRY_SIZE * (n - pos);
        self.page.bytes_mut().copy_within(move_from..move_from + move_len, move_to);
        self.page.write_u16(OFF_FREE_HIGH, new_low as u16);
        self.page.write_u16(dir_base - DIR_ENTRY_SIZE * (pos + 1), off as u16);
        self.page.write_u16(OFF_NKEYS, (n + 1) as u16);
        InsertOutcome::Inserted
    }

    /// Removes `key`; returns its value if present.
    ///
    /// The freed directory cell and the (conservatively whole) free
    /// region are zeroed — see the module docs' zeroing discipline.
    pub fn delete(&mut self, key: &[u8]) -> Option<u64> {
        let view = self.as_ref();
        let pos = view.search(key).ok()?;
        let value = view.value_at(pos);
        let n = view.nkeys();
        let entry = view.entry_size();
        let dir_base = view.dir_base();
        let old_low = dir_base - DIR_ENTRY_SIZE * n;
        // Shift directory cells for positions > pos up by one.
        let move_len = DIR_ENTRY_SIZE * (n - 1 - pos);
        self.page.bytes_mut().copy_within(old_low..old_low + move_len, old_low + DIR_ENTRY_SIZE);
        let new_low = old_low + DIR_ENTRY_SIZE;
        self.page.write_u16(OFF_FREE_HIGH, new_low as u16);
        self.page.write_u16(OFF_NKEYS, (n - 1) as u16);
        let dead = self.as_ref().dead_bytes() + entry;
        self.page.write_u16(OFF_DEAD, dead as u16);
        self.zero_free_region();
        Some(value)
    }

    /// Rewrites the key region so live entries are contiguous, reclaiming
    /// dead bytes. Zeroes the (now larger) free region.
    pub fn compact(&mut self) {
        let entries = self.as_ref().entries();
        let level = self.as_ref().level();
        let csn = self.as_ref().csn();
        let next = self.as_ref().next_leaf();
        let aux = self.page.read_u64(OFF_AUX);
        let ks = self.key_size;
        let mut fresh = NodeMut::init(self.page, ks, level);
        fresh.page.write_u64(OFF_AUX, aux);
        fresh.set_csn(csn);
        fresh.set_next_leaf(next);
        for (k, v) in &entries {
            let r = fresh.append_sorted(k, *v);
            debug_assert_eq!(r, InsertOutcome::Inserted);
        }
    }

    /// Appends `key → value` known to sort after every existing key
    /// (bulk-load fast path; falls back to [`insert`](Self::insert) cost
    /// shape otherwise via debug assert).
    pub fn append_sorted(&mut self, key: &[u8], value: u64) -> InsertOutcome {
        debug_assert!(
            self.as_ref().last_key().is_none_or(|last| last < key),
            "append_sorted requires strictly ascending keys"
        );
        let entry = self.as_ref().entry_size();
        let need = entry + DIR_ENTRY_SIZE;
        if self.as_ref().free_bytes() < need {
            return InsertOutcome::NeedSplit;
        }
        let off = self.as_ref().free_low();
        self.page.bytes_mut()[off..off + self.key_size].copy_from_slice(key);
        self.page.write_u64(off + self.key_size, value);
        self.page.write_u16(OFF_FREE_LOW, (off + entry) as u16);
        let n = self.as_ref().nkeys();
        let dir_base = self.as_ref().dir_base();
        let new_low = dir_base - DIR_ENTRY_SIZE * (n + 1);
        self.page.write_u16(new_low, off as u16);
        self.page.write_u16(OFF_FREE_HIGH, new_low as u16);
        self.page.write_u16(OFF_NKEYS, (n + 1) as u16);
        InsertOutcome::Inserted
    }

    /// Rebuilds this node to contain exactly `entries` (sorted),
    /// preserving level/csn/next/aux. Used by splits.
    pub fn rebuild_with(&mut self, entries: &[(Vec<u8>, u64)]) {
        let level = self.as_ref().level();
        let csn = self.as_ref().csn();
        let next = self.as_ref().next_leaf();
        let aux = self.page.read_u64(OFF_AUX);
        let ks = self.key_size;
        let mut fresh = NodeMut::init(self.page, ks, level);
        fresh.page.write_u64(OFF_AUX, aux);
        fresh.set_csn(csn);
        fresh.set_next_leaf(next);
        for (k, v) in entries {
            let r = fresh.append_sorted(k, *v);
            debug_assert_eq!(r, InsertOutcome::Inserted);
        }
    }

    /// Sets the leftmost child (internal nodes).
    pub fn set_leftmost_child(&mut self, child: PageId) {
        debug_assert!(!self.as_ref().is_leaf());
        self.page.write_u64(OFF_AUX, child.0);
    }

    /// Direct mutable access to the underlying page (cache writes).
    pub fn page_mut(&mut self) -> &mut Page {
        self.page
    }
}

/// Maximum entries a node with the given page and key size can hold.
pub fn node_capacity(page_size: usize, key_size: usize) -> usize {
    let usable = page_size - NODE_HEADER_SIZE - NODE_FOOTER_SIZE;
    usable / (key_size + 8 + DIR_ENTRY_SIZE)
}

/// The paper's stable cache location `S = K/(K+D) · P`, adjusted for the
/// fixed header and footer: the byte offset where a full page's key
/// region would meet its directory. `K` here is the full key-entry size
/// (key plus 8-byte pointer) since that is what grows from the low end.
pub fn stable_point(page_size: usize, key_size: usize) -> usize {
    let k = key_size + 8;
    let usable = page_size - NODE_HEADER_SIZE - NODE_FOOTER_SIZE;
    NODE_HEADER_SIZE + usable * k / (k + DIR_ENTRY_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbb_storage::page::Page;

    const KS: usize = 8;

    fn leaf_page() -> Page {
        let mut p = Page::new(1024);
        NodeMut::init_leaf(&mut p, KS);
        p
    }

    fn k(v: u64) -> [u8; 8] {
        v.to_be_bytes()
    }

    #[test]
    fn init_leaves_empty_node() {
        let p = leaf_page();
        let n = Node::new(&p, KS);
        assert!(n.is_leaf());
        assert_eq!(n.nkeys(), 0);
        assert_eq!(n.free_low(), NODE_HEADER_SIZE);
        assert_eq!(n.free_high(), 1024 - NODE_FOOTER_SIZE);
        assert!(!n.next_leaf().is_valid());
    }

    #[test]
    fn insert_maintains_sorted_order() {
        let mut p = leaf_page();
        let mut n = NodeMut::new(&mut p, KS);
        for v in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            assert_eq!(n.insert(&k(v), v * 10), InsertOutcome::Inserted);
        }
        let view = n.as_ref();
        assert_eq!(view.nkeys(), 10);
        for i in 0..10 {
            assert_eq!(view.key_at(i), &k(i as u64));
            assert_eq!(view.value_at(i), i as u64 * 10);
        }
    }

    #[test]
    fn search_finds_and_points() {
        let mut p = leaf_page();
        let mut n = NodeMut::new(&mut p, KS);
        for v in [10u64, 20, 30] {
            n.insert(&k(v), v);
        }
        let view = n.as_ref();
        assert_eq!(view.search(&k(20)), Ok(1));
        assert_eq!(view.search(&k(5)), Err(0));
        assert_eq!(view.search(&k(25)), Err(2));
        assert_eq!(view.search(&k(35)), Err(3));
    }

    #[test]
    fn update_existing_key_overwrites_value() {
        let mut p = leaf_page();
        let mut n = NodeMut::new(&mut p, KS);
        n.insert(&k(1), 100);
        assert_eq!(n.insert(&k(1), 200), InsertOutcome::Updated);
        assert_eq!(n.as_ref().nkeys(), 1);
        assert_eq!(n.as_ref().value_at(0), 200);
    }

    #[test]
    fn fills_to_capacity_then_needs_split() {
        let mut p = leaf_page();
        let mut n = NodeMut::new(&mut p, KS);
        let cap = n.as_ref().capacity();
        for v in 0..cap as u64 {
            assert_eq!(n.insert(&k(v), v), InsertOutcome::Inserted, "entry {v}");
        }
        assert_eq!(n.insert(&k(cap as u64), 0), InsertOutcome::NeedSplit);
        // capacity formula matches reality
        assert_eq!(n.as_ref().nkeys(), cap);
    }

    #[test]
    fn delete_returns_value_and_zeroes_free_region() {
        let mut p = leaf_page();
        let mut n = NodeMut::new(&mut p, KS);
        for v in 0..10u64 {
            n.insert(&k(v), v + 100);
        }
        assert_eq!(n.delete(&k(4)), Some(104));
        assert_eq!(n.delete(&k(4)), None);
        let view = n.as_ref();
        assert_eq!(view.nkeys(), 9);
        assert_eq!(view.search(&k(4)), Err(4));
        // free region fully zeroed
        let (lo, hi) = (view.free_low(), view.free_high());
        assert!(p.bytes()[lo..hi].iter().all(|&b| b == 0));
    }

    #[test]
    fn compaction_reclaims_dead_bytes() {
        let mut p = leaf_page();
        let mut n = NodeMut::new(&mut p, KS);
        let cap = n.as_ref().capacity();
        for v in 0..cap as u64 {
            n.insert(&k(v), v);
        }
        // Delete one mid-node entry: its key bytes become dead (only the
        // 2-byte directory cell returns to free space), so the next
        // insert cannot fit without compaction.
        n.delete(&k(7));
        assert!(n.as_ref().dead_bytes() > 0);
        assert!(n.as_ref().free_bytes() < n.as_ref().entry_size() + DIR_ENTRY_SIZE);
        assert_eq!(n.insert(&k(cap as u64 + 1), 7), InsertOutcome::Inserted);
        assert_eq!(n.as_ref().dead_bytes(), 0, "compaction should have run");
        // survivors intact
        for v in 0..cap as u64 {
            if v != 7 {
                assert!(n.as_ref().search(&k(v)).is_ok(), "lost key {v}");
            }
        }
        assert!(n.as_ref().search(&k(cap as u64 + 1)).is_ok());
    }

    #[test]
    fn rebuild_with_keeps_metadata() {
        let mut p = leaf_page();
        {
            let mut n = NodeMut::new(&mut p, KS);
            n.set_next_leaf(PageId(77));
            n.set_csn(5);
            for v in 0..6u64 {
                n.insert(&k(v), v);
            }
        }
        let entries: Vec<_> = Node::new(&p, KS).entries().into_iter().take(3).collect();
        let mut n = NodeMut::new(&mut p, KS);
        n.rebuild_with(&entries);
        let view = n.as_ref();
        assert_eq!(view.nkeys(), 3);
        assert_eq!(view.next_leaf(), PageId(77));
        assert_eq!(view.csn(), 5);
        // everything outside entries+header+dir is zero
        let (lo, hi) = (view.free_low(), view.free_high());
        assert!(p.bytes()[lo..hi].iter().all(|&b| b == 0));
    }

    #[test]
    fn internal_node_routing() {
        let mut p = Page::new(1024);
        let mut n = NodeMut::init_internal(&mut p, KS, 1, PageId(100));
        n.insert(&k(10), 110); // keys >= 10 -> page 110
        n.insert(&k(20), 120); // keys >= 20 -> page 120
        let view = n.as_ref();
        assert!(!view.is_leaf());
        assert_eq!(view.child_for(&k(5)), PageId(100));
        assert_eq!(view.child_for(&k(10)), PageId(110));
        assert_eq!(view.child_for(&k(15)), PageId(110));
        assert_eq!(view.child_for(&k(20)), PageId(120));
        assert_eq!(view.child_for(&k(99)), PageId(120));
    }

    #[test]
    fn stable_point_matches_paper_formula() {
        // With negligible header/footer, S ≈ K/(K+D) × P.
        let p = 8192;
        let ks = 17; // entry = 25
        let s = stable_point(p, ks);
        let k_eff = (ks + 8) as f64;
        let approx = k_eff / (k_eff + DIR_ENTRY_SIZE as f64) * p as f64;
        assert!((s as f64 - approx).abs() < 64.0, "S={s} approx={approx}");
    }

    #[test]
    fn geometry_regions_never_overlap_under_churn() {
        let mut p = leaf_page();
        let mut n = NodeMut::new(&mut p, KS);
        let mut present = std::collections::BTreeSet::new();
        let mut x = 1u64;
        for step in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = x % 200;
            if step % 3 == 2 {
                n.delete(&k(v));
                present.remove(&v);
            } else if n.insert(&k(v), v) != InsertOutcome::NeedSplit {
                present.insert(v);
            }
            let view = n.as_ref();
            assert!(view.free_low() <= view.free_high(), "regions crossed");
            assert_eq!(view.nkeys(), present.len());
        }
        for v in &present {
            assert!(n.as_ref().search(&k(*v)).is_ok());
        }
    }

    #[test]
    fn append_sorted_matches_insert_semantics() {
        let mut p = leaf_page();
        let mut n = NodeMut::new(&mut p, KS);
        for v in 0..20u64 {
            assert_eq!(n.append_sorted(&k(v), v * 2), InsertOutcome::Inserted);
        }
        let view = n.as_ref();
        for i in 0..20 {
            assert_eq!(view.key_at(i), &k(i as u64));
            assert_eq!(view.value_at(i), i as u64 * 2);
        }
    }

    #[test]
    fn capacity_formula() {
        // 1024-byte page, 8-byte keys: (1024-48)/(8+8+2) = 54 entries
        assert_eq!(node_capacity(1024, 8), 54);
    }
}
