//! The index cache (§2.1): recycling B+Tree free space as a tuple cache.
//!
//! The free region of a leaf (Figure 1) is carved into *slots* whose
//! start offsets are absolute multiples of the cache entry size, so slot
//! addresses are stable as the key/directory regions grow and shrink. A
//! slot is **usable** only while it lies entirely inside the free region;
//! region growth silently kills peripheral slots ("key inserts freely
//! overwrite the periphery of the cache space").
//!
//! Each entry is `tuple_id (u64, nonzero) ‖ payload (fixed width)`. A
//! zeroed slot is empty — which is why every byte entering the free
//! region is zeroed by the node layer.
//!
//! Placement policy (§2.1.1):
//! * slots are ranked by distance from the stable point
//!   `S = K/(K+D)·P` ([`crate::node::stable_point`]) and grouped into
//!   *buckets* of `N` slots (rings of `N/2` on each side);
//! * a new item goes to a uniformly random free slot, or — when none is
//!   free — evicts a random item from the outermost occupied bucket;
//! * on a hit, the item is swapped with a random slot of the adjacent
//!   bucket closer to `S`, so hot items migrate to the most stable
//!   region and are overwritten last.

use crate::node::{stable_point, Node};
use nbb_storage::page::Page;
use rand::Rng;

/// Cache entry header: the identifying tuple id.
pub const CACHE_ID_SIZE: usize = 8;

/// Configuration of a tree's index cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Bytes of cached field data per entry (the paper's example: 4
    /// fields totalling 17 bytes → 25-byte items).
    pub payload_size: usize,
    /// Slots per bucket (`N`). Must be ≥ 2.
    pub bucket_slots: usize,
    /// Predicate-log length that triggers a full-index invalidation
    /// (§2.1.2's threshold).
    pub log_threshold: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { payload_size: 17, bucket_slots: 8, log_threshold: 64 }
    }
}

impl CacheConfig {
    /// Total bytes per cache entry (id + payload).
    #[inline]
    pub fn entry_size(&self) -> usize {
        CACHE_ID_SIZE + self.payload_size
    }

    /// Validates invariants; panics with a clear message otherwise.
    pub fn validate(&self) {
        assert!(self.payload_size > 0, "cache payload must be non-empty");
        assert!(self.bucket_slots >= 2, "bucket_slots must be >= 2");
        assert!(self.log_threshold >= 1, "log_threshold must be >= 1");
    }
}

/// Result of a cache store attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// Entry written into a free slot.
    Stored,
    /// Entry written over a random victim in the peripheral bucket.
    StoredEvicting,
    /// No usable slot exists (free region smaller than one slot).
    NoRoom,
}

/// Sentinel cache-space cap meaning "no cap": every slot the free
/// region can hold is usable. See [`CacheView::new_capped`].
pub const CACHE_CAP_UNLIMITED: usize = usize::MAX;

/// Clamps the natural slot range `[first, last)` to a window of at most
/// `cap_slots` slots centered on the stable point `s_slot`. The window
/// keeps the most stable slots usable, so a shrunken cache retains the
/// hottest entries and loses only the periphery — the same shape as
/// key-region growth killing peripheral slots.
#[inline]
fn capped_range(first: usize, last: usize, s_slot: usize, cap_slots: usize) -> (usize, usize) {
    let width = last - first;
    if width <= cap_slots {
        return (first, last);
    }
    let lo = s_slot.saturating_sub(cap_slots / 2).clamp(first, last - cap_slots);
    (lo, lo + cap_slots)
}

/// Read-only cache view over a leaf page.
pub struct CacheView<'a> {
    page: &'a Page,
    entry: usize,
    free_low: usize,
    free_high: usize,
    s_slot: usize,
    half_bucket: usize,
    cap_slots: usize,
}

impl<'a> CacheView<'a> {
    /// Builds a view; `key_size` is the tree's key width, `cfg` the
    /// tree's cache configuration.
    pub fn new(page: &'a Page, key_size: usize, cfg: &CacheConfig) -> Self {
        Self::new_capped(page, key_size, cfg, CACHE_CAP_UNLIMITED)
    }

    /// Builds a view whose usable slots are additionally limited to
    /// `cap_bytes` of cache space per leaf (the tuner's runtime-resize
    /// hook). `CACHE_CAP_UNLIMITED` disables the cap. The cap constrains
    /// `slot_range` — probe/store/promote — but never invalidation:
    /// [`CacheViewMut::zero`] always clears the full natural range, so
    /// entries stranded outside a shrunken window can never be revived
    /// as stale data when the cap later grows.
    pub fn new_capped(
        page: &'a Page,
        key_size: usize,
        cfg: &CacheConfig,
        cap_bytes: usize,
    ) -> Self {
        let node = Node::new(page, key_size);
        let entry = cfg.entry_size();
        let s = stable_point(page.size(), key_size);
        CacheView {
            free_low: node.free_low(),
            free_high: node.free_high(),
            page,
            entry,
            s_slot: s / entry,
            half_bucket: (cfg.bucket_slots / 2).max(1),
            cap_slots: if cap_bytes == CACHE_CAP_UNLIMITED {
                usize::MAX
            } else {
                cap_bytes / entry
            },
        }
    }

    /// The slot range the free region could hold, ignoring any cap.
    #[inline]
    fn natural_slot_range(&self) -> (usize, usize) {
        let first = self.free_low.div_ceil(self.entry);
        let last = self.free_high / self.entry;
        (first, last.max(first))
    }

    /// Usable slot index range `[first, last)`; empty when the free
    /// region cannot hold a single aligned slot. When a cache-space cap
    /// is set, this is a window of at most `cap` slots around the
    /// stable point.
    #[inline]
    pub fn slot_range(&self) -> (usize, usize) {
        let (first, last) = self.natural_slot_range();
        capped_range(first, last, self.s_slot, self.cap_slots)
    }

    /// Number of usable slots.
    pub fn capacity(&self) -> usize {
        let (a, b) = self.slot_range();
        b - a
    }

    #[inline]
    fn offset(&self, slot: usize) -> usize {
        slot * self.entry
    }

    /// Tuple id stored in `slot` (0 = empty).
    #[inline]
    pub fn tuple_id_at(&self, slot: usize) -> u64 {
        self.page.read_u64(self.offset(slot))
    }

    /// Payload bytes of `slot`.
    #[inline]
    pub fn payload_at(&self, slot: usize) -> &'a [u8] {
        let off = self.offset(slot) + CACHE_ID_SIZE;
        &self.page.bytes()[off..off + self.entry - CACHE_ID_SIZE]
    }

    /// Bucket (ring) index of `slot`: 0 is the innermost, most stable.
    #[inline]
    pub fn bucket_of(&self, slot: usize) -> usize {
        self.s_slot.abs_diff(slot) / self.half_bucket
    }

    /// Scans for `tuple_id`, returning its slot and payload.
    pub fn probe(&self, tuple_id: u64) -> Option<(usize, &'a [u8])> {
        debug_assert_ne!(tuple_id, 0);
        let (first, last) = self.slot_range();
        for slot in first..last {
            if self.tuple_id_at(slot) == tuple_id {
                return Some((slot, self.payload_at(slot)));
            }
        }
        None
    }

    /// Number of occupied slots.
    pub fn occupied(&self) -> usize {
        let (first, last) = self.slot_range();
        (first..last).filter(|&s| self.tuple_id_at(s) != 0).count()
    }

    /// All `(tuple_id, payload)` entries, for diagnostics.
    pub fn entries(&self) -> Vec<(u64, &'a [u8])> {
        let (first, last) = self.slot_range();
        (first..last)
            .filter(|&s| self.tuple_id_at(s) != 0)
            .map(|s| (self.tuple_id_at(s), self.payload_at(s)))
            .collect()
    }
}

/// Mutable cache view over a leaf page.
pub struct CacheViewMut<'a> {
    page: &'a mut Page,
    entry: usize,
    free_low: usize,
    free_high: usize,
    s_slot: usize,
    half_bucket: usize,
    cap_slots: usize,
}

impl<'a> CacheViewMut<'a> {
    /// Builds a mutable view (same parameters as [`CacheView::new`]).
    pub fn new(page: &'a mut Page, key_size: usize, cfg: &CacheConfig) -> Self {
        Self::new_capped(page, key_size, cfg, CACHE_CAP_UNLIMITED)
    }

    /// Builds a mutable view with a cache-space cap (same parameters as
    /// [`CacheView::new_capped`]).
    pub fn new_capped(
        page: &'a mut Page,
        key_size: usize,
        cfg: &CacheConfig,
        cap_bytes: usize,
    ) -> Self {
        let node = Node::new(page, key_size);
        let (free_low, free_high) = (node.free_low(), node.free_high());
        let entry = cfg.entry_size();
        let s = stable_point(page.size(), key_size);
        CacheViewMut {
            free_low,
            free_high,
            page,
            entry,
            s_slot: s / entry,
            half_bucket: (cfg.bucket_slots / 2).max(1),
            cap_slots: if cap_bytes == CACHE_CAP_UNLIMITED {
                usize::MAX
            } else {
                cap_bytes / entry
            },
        }
    }

    fn ro(&self) -> CacheView<'_> {
        CacheView {
            page: self.page,
            entry: self.entry,
            free_low: self.free_low,
            free_high: self.free_high,
            s_slot: self.s_slot,
            half_bucket: self.half_bucket,
            cap_slots: self.cap_slots,
        }
    }

    #[inline]
    fn offset(&self, slot: usize) -> usize {
        slot * self.entry
    }

    fn write_entry(&mut self, slot: usize, tuple_id: u64, payload: &[u8]) {
        debug_assert_eq!(payload.len(), self.entry - CACHE_ID_SIZE);
        let off = self.offset(slot);
        self.page.write_u64(off, tuple_id);
        self.page.bytes_mut()[off + CACHE_ID_SIZE..off + self.entry].copy_from_slice(payload);
    }

    /// Stores `tuple_id → payload` per the paper's placement policy:
    /// a random free slot, else evict a random item in the outermost
    /// occupied bucket. If `tuple_id` is already cached, its payload is
    /// refreshed in place.
    pub fn store<R: Rng>(&mut self, tuple_id: u64, payload: &[u8], rng: &mut R) -> StoreOutcome {
        debug_assert_ne!(tuple_id, 0, "tuple id 0 is the empty sentinel");
        let (first, last) = self.ro().slot_range();
        if first == last {
            return StoreOutcome::NoRoom;
        }
        // Refresh in place if present.
        if let Some((slot, _)) = self.ro().probe(tuple_id) {
            self.write_entry(slot, tuple_id, payload);
            return StoreOutcome::Stored;
        }
        let free: Vec<usize> = (first..last).filter(|&s| self.ro().tuple_id_at(s) == 0).collect();
        if !free.is_empty() {
            let slot = free[rng.gen_range(0..free.len())];
            self.write_entry(slot, tuple_id, payload);
            return StoreOutcome::Stored;
        }
        // Evict from the outermost (peripheral) occupied bucket.
        let view = self.ro();
        // nbb-lint: allow(unwrap, eviction scan runs only when occupancy > 0)
        let peripheral = (first..last).max_by_key(|&s| view.bucket_of(s)).expect("nonempty");
        let max_bucket = view.bucket_of(peripheral);
        let victims: Vec<usize> =
            (first..last).filter(|&s| view.bucket_of(s) == max_bucket).collect();
        let slot = victims[rng.gen_range(0..victims.len())];
        self.write_entry(slot, tuple_id, payload);
        StoreOutcome::StoredEvicting
    }

    /// On-hit promotion: swaps `slot` with a random slot in the adjacent
    /// bucket closer to `S`. Re-verifies that `slot` still holds
    /// `tuple_id` (the caller found it under a read latch and re-acquired
    /// a write latch; the cache may have changed in between).
    ///
    /// Returns the slot now holding the entry, or `None` if verification
    /// failed or the entry is already in the innermost bucket.
    pub fn promote<R: Rng>(&mut self, slot: usize, tuple_id: u64, rng: &mut R) -> Option<usize> {
        let (first, last) = self.ro().slot_range();
        if slot < first || slot >= last || self.ro().tuple_id_at(slot) != tuple_id {
            return None;
        }
        let b = self.ro().bucket_of(slot);
        if b == 0 {
            return Some(slot);
        }
        // Candidate slots: ring b-1, i.e. |d| in [(b-1)*h, b*h).
        let h = self.half_bucket;
        let lo_d = (b - 1) * h;
        let hi_d = b * h;
        let mut candidates: Vec<usize> = Vec::with_capacity(2 * h);
        for d in lo_d..hi_d {
            if let Some(s) = self.s_slot.checked_sub(d) {
                if s >= first && s < last {
                    candidates.push(s);
                }
            }
            let s = self.s_slot + d;
            if d != 0 && s >= first && s < last {
                candidates.push(s);
            }
        }
        candidates.retain(|&s| s != slot);
        if candidates.is_empty() {
            return Some(slot);
        }
        let target = candidates[rng.gen_range(0..candidates.len())];
        self.swap_slots(slot, target);
        Some(target)
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        debug_assert_ne!(a, b);
        let (oa, ob) = (self.offset(a), self.offset(b));
        let (lo, hi) = if oa < ob { (oa, ob) } else { (ob, oa) };
        let (left, right) = self.page.bytes_mut().split_at_mut(hi);
        left[lo..lo + self.entry].swap_with_slice(&mut right[..self.entry]);
    }

    /// Zeroes every slot the free region can hold (predicate-match
    /// invalidation, §2.1.2). Deliberately ignores the cache-space cap:
    /// an invalidation must also kill entries stranded outside a
    /// shrunken window, or a later cap growth would re-expose them as
    /// stale hits.
    pub fn zero(&mut self) {
        let (first, last) = self.ro().natural_slot_range();
        if first < last {
            let (a, b) = (self.offset(first), self.offset(last));
            self.page.bytes_mut()[a..b].fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, NodeMut};
    use nbb_storage::page::Page;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const KS: usize = 8;

    fn cfg() -> CacheConfig {
        CacheConfig { payload_size: 16, bucket_slots: 8, log_threshold: 64 }
    }

    fn empty_leaf() -> Page {
        let mut p = Page::new(4096);
        NodeMut::init_leaf(&mut p, KS);
        p
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn payload(tag: u8) -> Vec<u8> {
        vec![tag; 16]
    }

    #[test]
    fn store_and_probe_round_trip() {
        let mut p = empty_leaf();
        let c = cfg();
        let mut r = rng();
        let mut m = CacheViewMut::new(&mut p, KS, &c);
        assert_eq!(m.store(10, &payload(1), &mut r), StoreOutcome::Stored);
        assert_eq!(m.store(20, &payload(2), &mut r), StoreOutcome::Stored);
        let v = CacheView::new(&p, KS, &c);
        assert_eq!(v.probe(10).unwrap().1, &payload(1)[..]);
        assert_eq!(v.probe(20).unwrap().1, &payload(2)[..]);
        assert!(v.probe(30).is_none());
        assert_eq!(v.occupied(), 2);
    }

    #[test]
    fn store_refreshes_existing_id() {
        let mut p = empty_leaf();
        let c = cfg();
        let mut r = rng();
        let mut m = CacheViewMut::new(&mut p, KS, &c);
        m.store(10, &payload(1), &mut r);
        m.store(10, &payload(9), &mut r);
        let v = CacheView::new(&p, KS, &c);
        assert_eq!(v.occupied(), 1, "no duplicate entries");
        assert_eq!(v.probe(10).unwrap().1, &payload(9)[..]);
    }

    #[test]
    fn full_cache_evicts_peripheral_items() {
        let mut p = empty_leaf();
        let c = cfg();
        let mut r = rng();
        let cap = CacheView::new(&p, KS, &c).capacity();
        assert!(cap > 10, "4 KiB empty leaf should have many slots, got {cap}");
        let mut m = CacheViewMut::new(&mut p, KS, &c);
        for id in 1..=cap as u64 {
            assert_ne!(m.store(id, &payload(id as u8), &mut r), StoreOutcome::NoRoom);
        }
        assert_eq!(CacheView::new(&p, KS, &c).occupied(), cap);
        let mut m = CacheViewMut::new(&mut p, KS, &c);
        let out = m.store(10_000, &payload(99), &mut r);
        assert_eq!(out, StoreOutcome::StoredEvicting);
        let v = CacheView::new(&p, KS, &c);
        assert_eq!(v.occupied(), cap, "eviction replaces, never grows");
        // the victim came from the outermost bucket
        let (slot, _) = v.probe(10_000).unwrap();
        let max_bucket =
            (v.slot_range().0..v.slot_range().1).map(|s| v.bucket_of(s)).max().unwrap();
        assert_eq!(v.bucket_of(slot), max_bucket);
    }

    #[test]
    fn promote_moves_toward_stable_point() {
        let mut p = empty_leaf();
        let c = cfg();
        let mut r = rng();
        let mut m = CacheViewMut::new(&mut p, KS, &c);
        m.store(7, &payload(7), &mut r);
        let (mut slot, _) = CacheView::new(&p, KS, &c).probe(7).unwrap();
        // Promote repeatedly: bucket index must be non-increasing and
        // reach 0 within capacity steps.
        let mut prev_bucket = CacheView::new(&p, KS, &c).bucket_of(slot);
        for _ in 0..200 {
            let mut m = CacheViewMut::new(&mut p, KS, &c);
            slot = m.promote(slot, 7, &mut r).unwrap();
            let b = CacheView::new(&p, KS, &c).bucket_of(slot);
            assert!(b <= prev_bucket, "bucket went outward: {prev_bucket} -> {b}");
            prev_bucket = b;
            if b == 0 {
                break;
            }
        }
        assert_eq!(prev_bucket, 0, "hot item should reach the innermost bucket");
        assert_eq!(CacheView::new(&p, KS, &c).probe(7).unwrap().0, slot);
    }

    #[test]
    fn promote_verifies_tuple_id() {
        let mut p = empty_leaf();
        let c = cfg();
        let mut r = rng();
        let mut m = CacheViewMut::new(&mut p, KS, &c);
        m.store(7, &payload(7), &mut r);
        let (slot, _) = CacheView::new(&p, KS, &c).probe(7).unwrap();
        let mut m = CacheViewMut::new(&mut p, KS, &c);
        assert!(m.promote(slot, 8, &mut r).is_none(), "wrong id must fail");
    }

    #[test]
    fn swap_preserves_both_entries() {
        let mut p = empty_leaf();
        let c = cfg();
        let mut r = rng();
        // Fill the cache so a promotion almost surely swaps two live entries.
        let cap = CacheView::new(&p, KS, &c).capacity();
        let mut m2 = CacheViewMut::new(&mut p, KS, &c);
        for id in 1..=cap as u64 {
            m2.store(id, &payload((id % 250) as u8), &mut r);
        }
        let v = CacheView::new(&p, KS, &c);
        let (slot, _) = v.probe(1).unwrap();
        let before: std::collections::HashMap<u64, Vec<u8>> =
            v.entries().into_iter().map(|(id, pl)| (id, pl.to_vec())).collect();
        let mut m = CacheViewMut::new(&mut p, KS, &c);
        m.promote(slot, 1, &mut r);
        let v = CacheView::new(&p, KS, &c);
        let after: std::collections::HashMap<u64, Vec<u8>> =
            v.entries().into_iter().map(|(id, pl)| (id, pl.to_vec())).collect();
        assert_eq!(before, after, "promotion must not lose or corrupt entries");
    }

    #[test]
    fn zero_empties_cache() {
        let mut p = empty_leaf();
        let c = cfg();
        let mut r = rng();
        let mut m = CacheViewMut::new(&mut p, KS, &c);
        for id in 1..=5u64 {
            m.store(id, &payload(id as u8), &mut r);
        }
        m.zero();
        assert_eq!(CacheView::new(&p, KS, &c).occupied(), 0);
    }

    #[test]
    fn key_growth_kills_peripheral_slots_only() {
        let mut p = empty_leaf();
        let c = cfg();
        let mut r = rng();
        let cap0 = CacheView::new(&p, KS, &c).capacity();
        {
            let mut m = CacheViewMut::new(&mut p, KS, &c);
            for id in 1..=cap0 as u64 {
                m.store(id, &payload(1), &mut r);
            }
        }
        // Insert keys: the key region grows into the low end of the cache.
        {
            let mut n = NodeMut::new(&mut p, KS);
            for v in 0..40u64 {
                n.insert(&v.to_be_bytes(), v);
            }
        }
        let v = CacheView::new(&p, KS, &c);
        let cap1 = v.capacity();
        assert!(cap1 < cap0, "capacity must shrink: {cap0} -> {cap1}");
        // All surviving entries still verify: ids in range, payload intact.
        for (id, pl) in v.entries() {
            assert!(id >= 1 && id <= cap0 as u64);
            assert_eq!(pl, &payload(1)[..]);
        }
        // And probing never reads a partially-overwritten slot: the node
        // owns [header, free_low); no slot may start below it.
        let node = Node::new(&p, KS);
        let (first, _) = v.slot_range();
        assert!(first * c.entry_size() >= node.free_low());
    }

    #[test]
    fn no_room_when_leaf_nearly_full() {
        let mut p = Page::new(1024);
        NodeMut::init_leaf(&mut p, KS);
        {
            let mut n = NodeMut::new(&mut p, KS);
            let cap = n.as_ref().capacity();
            for v in 0..cap as u64 {
                n.insert(&v.to_be_bytes(), v);
            }
        }
        let c = cfg();
        let mut r = rng();
        let mut m = CacheViewMut::new(&mut p, KS, &c);
        assert_eq!(m.store(1, &payload(1), &mut r), StoreOutcome::NoRoom);
        assert_eq!(CacheView::new(&p, KS, &c).capacity(), 0);
    }

    #[test]
    fn slot_alignment_is_absolute() {
        // Paper: "the start of each slot is a multiple of [the entry size]".
        let p = empty_leaf();
        let c = cfg();
        let v = CacheView::new(&p, KS, &c);
        let (first, last) = v.slot_range();
        for s in first..last {
            assert_eq!((s * c.entry_size()) % c.entry_size(), 0);
        }
        // First slot does not overlap the key region, last does not
        // overlap the directory.
        let node = Node::new(&p, KS);
        assert!(first * c.entry_size() >= node.free_low());
        assert!(last * c.entry_size() <= node.free_high());
    }

    #[test]
    fn cap_limits_slot_window_around_stable_point() {
        let p = empty_leaf();
        let c = cfg();
        let full = CacheView::new(&p, KS, &c);
        let (nf, nl) = full.slot_range();
        assert!(nl - nf > 8, "need a roomy leaf for this test");
        // Cap to 4 slots: the window must be 4 wide, inside the natural
        // range, and contain (or hug) the stable point.
        let capped = CacheView::new_capped(&p, KS, &c, 4 * c.entry_size());
        let (cf, cl) = capped.slot_range();
        assert_eq!(cl - cf, 4);
        assert!(cf >= nf && cl <= nl);
        assert_eq!(capped.capacity(), 4);
        // Zero cap: empty window.
        let zeroed = CacheView::new_capped(&p, KS, &c, 0);
        assert_eq!(zeroed.capacity(), 0);
        // Unlimited sentinel: natural range.
        let unl = CacheView::new_capped(&p, KS, &c, CACHE_CAP_UNLIMITED);
        assert_eq!(unl.slot_range(), (nf, nl));
    }

    #[test]
    fn capped_store_stays_inside_window_and_evicts_there() {
        let mut p = empty_leaf();
        let c = cfg();
        let mut r = rng();
        let cap_bytes = 4 * c.entry_size();
        let mut m = CacheViewMut::new_capped(&mut p, KS, &c, cap_bytes);
        for id in 1..=8u64 {
            assert_ne!(m.store(id, &payload(id as u8), &mut r), StoreOutcome::NoRoom);
        }
        let v = CacheView::new_capped(&p, KS, &c, cap_bytes);
        assert_eq!(v.occupied(), 4, "occupancy bounded by the cap");
        // Nothing landed outside the window.
        let full = CacheView::new(&p, KS, &c);
        assert_eq!(full.occupied(), 4);
        let (wf, wl) = v.slot_range();
        for (id, _) in full.entries() {
            let (slot, _) = full.probe(id).unwrap();
            assert!(slot >= wf && slot < wl, "entry {id} escaped the window");
        }
    }

    #[test]
    fn zero_clears_entries_stranded_outside_a_shrunken_window() {
        let mut p = empty_leaf();
        let c = cfg();
        let mut r = rng();
        // Populate uncapped, so entries land across the whole range.
        let cap0 = CacheView::new(&p, KS, &c).capacity();
        {
            let mut m = CacheViewMut::new(&mut p, KS, &c);
            for id in 1..=cap0 as u64 {
                m.store(id, &payload(1), &mut r);
            }
        }
        // Invalidate through a *capped* view: every entry must die, not
        // just the window's, or growing the cap would revive stale data.
        {
            let mut m = CacheViewMut::new_capped(&mut p, KS, &c, 2 * c.entry_size());
            m.zero();
        }
        assert_eq!(CacheView::new(&p, KS, &c).occupied(), 0);
    }

    #[test]
    fn config_validation() {
        cfg().validate();
        let bad = CacheConfig { payload_size: 0, ..cfg() };
        assert!(std::panic::catch_unwind(|| bad.validate()).is_err());
        let bad = CacheConfig { bucket_slots: 1, ..cfg() };
        assert!(std::panic::catch_unwind(|| bad.validate()).is_err());
    }
}
