//! # nbb-btree — B+Tree with the *No Bits Left Behind* index cache
//!
//! A disk-style B+Tree whose leaf pages follow the paper's Figure 1
//! exactly: a fixed header, key entries growing up from the low end, a
//! directory of sorted offsets growing down from the high end, and the
//! free space in the middle recycled as a **tuple cache**:
//!
//! * [`node`] — the on-page layout and its zeroing discipline;
//! * [`cache`] — cache slots, buckets, and the swap-toward-`S` policy
//!   (§2.1.1), where `S = K/(K+D)·P` is the most stable byte of the page;
//! * [`invalidation`] — CSN epochs and the predicate log (§2.1.2);
//! * [`tree`] — the tree operations plus the cache protocol:
//!   [`tree::BTree::lookup_cached`] (probe + promote),
//!   [`tree::BTree::cache_populate`] (store after heap fetch),
//!   [`tree::BTree::invalidate`] (heap update hook);
//! * [`covering`] — the covering-index baseline §2.1 argues against;
//! * [`key`] — order-preserving fixed-width key codecs.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use nbb_storage::{BufferPool, InMemoryDisk, DiskManager};
//! use nbb_btree::{BTree, BTreeOptions, CacheConfig};
//!
//! let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
//! let pool = Arc::new(BufferPool::new(disk, 128));
//! let opts = BTreeOptions {
//!     cache: Some(CacheConfig { payload_size: 16, ..CacheConfig::default() }),
//!     ..Default::default()
//! };
//! let tree = BTree::create(pool, 8, opts).unwrap();
//!
//! // Index a tuple pointer, miss once, populate, then hit.
//! tree.insert(&42u64.to_be_bytes(), 1000).unwrap();
//! let m = tree.lookup_cached(&42u64.to_be_bytes()).unwrap();
//! assert_eq!(m.value, Some(1000));
//! assert!(m.payload.is_none(), "first access misses");
//! tree.cache_populate(m.leaf, 1000, &[7u8; 16], m.token).unwrap();
//! let h = tree.lookup_cached(&42u64.to_be_bytes()).unwrap();
//! assert_eq!(h.payload.as_deref(), Some(&[7u8; 16][..]));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod covering;
pub mod intents;
pub mod invalidation;
pub mod key;
pub mod node;
pub mod tree;

pub use cache::{CacheConfig, CacheView, CacheViewMut, StoreOutcome};
pub use covering::CoveringIndex;
pub use intents::{IntentGuard, KeyIntents, DEFAULT_INTENT_STRIPES};
pub use invalidation::{InvalidateOutcome, InvalidationState, Predicate};
pub use node::{node_capacity, stable_point, InsertOutcome, Node, NodeMut};
pub use tree::{
    BTree, BTreeOptions, CacheStats, CachedLookup, IndexStats, InvToken, RangeChunk, RangeEntry,
    WriteStats,
};
