//! Key-level **write intents**: the same-key coordination structure the
//! per-leaf latch table deliberately does not provide.
//!
//! [`super::tree::BTree`]'s leaf latches serialize *page-local* work, so
//! two writers mutating one leaf take turns — but a logical table write
//! (resolve the key through the index, read/mutate the heap row, then
//! maintain every index) spans several page operations with windows in
//! between. Two writers racing the *same key* through that sequence used
//! to interleave badly enough that the table layer carried tolerance
//! workarounds ("a racing deleter drops just its row", tolerated
//! `InvalidSlot`s). [`KeyIntents`] replaces those with a coordination
//! structure, reusing the buffer pool's in-flight-load pattern:
//!
//! * The first writer on key K **installs an intent** (a slot in a
//!   striped hash table keyed by the key bytes) and proceeds.
//! * A racing same-key writer finds the slot and **parks on it** (a
//!   condvar wait), exactly like a buffer-pool requester parking on a
//!   `Loading` frame.
//! * On release, the holder **hands the intent off directly** to one
//!   parked waiter (a pre-granted continuation, mirroring the pool's
//!   pre-granted pins): the waiter wakes already owning the key and can
//!   never lose it to a third writer sneaking through the map, so every
//!   parked writer runs exactly once, in some serial order.
//!
//! Writers on distinct keys only ever contend on a stripe mutex for the
//! few instructions of a map lookup, so disjoint-key throughput is
//! unaffected. Contention is metered: [`KeyIntents::parks`] counts
//! acquisitions that found the key held, [`KeyIntents::handoffs`] counts
//! releases that passed ownership to a waiter — both surface in
//! [`super::tree::WriteStats`].
//!
//! Deadlock discipline: the stripe and slot locks sit at ranks 20/25 of
//! the workspace lock lattice — strictly before every tree and pool
//! lock — and [`KeyIntents::acquire_many`] sorts and deduplicates each
//! writer's key set before any page is touched. `CONCURRENCY.md` at the
//! repo root documents the full lattice, the handoff pattern, and the
//! rank checker that enforces both on every debug test run.

use nbb_storage::lockrank;
use parking_lot::{Condvar, Mutex};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default stripe count for a tree's intent table; the `DbConfig`
/// `intent_stripes` knob overrides it per database. Like the leaf-latch
/// stripes, collisions only cost parallelism (two distinct keys on one
/// stripe briefly share a map mutex), never correctness.
pub const DEFAULT_INTENT_STRIPES: usize = 64;

/// One in-flight write intent; racing same-key writers park here.
struct IntentSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

#[derive(Default)]
struct SlotState {
    /// Writers parked on this key, each owed one future grant.
    waiters: u32,
    /// Pre-granted handoffs not yet claimed by a woken waiter. At most
    /// one is ever outstanding: only the current owner's release mints
    /// a grant, and the grantee owns the key from that instant (even
    /// before it wakes).
    grants: u32,
}

impl IntentSlot {
    fn new() -> Self {
        IntentSlot {
            state: Mutex::with_rank(lockrank::INTENT_SLOT, SlotState::default()),
            cv: Condvar::new(),
        }
    }
}

/// One stripe's map: installed intents, keyed by the key bytes.
type StripeMap = HashMap<Vec<u8>, Arc<IntentSlot>>;

/// Striped table of per-key write intents; see the module docs.
///
/// Owned by a [`super::tree::BTree`] (sibling to its leaf-latch table)
/// and acquired by the table layer's write paths before they resolve a
/// key, so the whole index→heap→index sequence is exclusive per key.
pub struct KeyIntents {
    stripes: Box<[Mutex<StripeMap>]>,
    parks: AtomicU64,
    handoffs: AtomicU64,
}

impl KeyIntents {
    /// Creates an intent table with `stripes` stripes (`0` selects
    /// [`DEFAULT_INTENT_STRIPES`]; any positive count — including 1 —
    /// is honored, so degenerate configs stay testable).
    pub fn new(stripes: usize) -> Self {
        let n = if stripes == 0 { DEFAULT_INTENT_STRIPES } else { stripes };
        KeyIntents {
            stripes: (0..n)
                .map(|_| Mutex::with_rank(lockrank::INTENT_STRIPE, HashMap::new()))
                .collect(),
            parks: AtomicU64::new(0),
            handoffs: AtomicU64::new(0),
        }
    }

    #[inline]
    fn stripe_of(&self, key: &[u8]) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.stripes.len() as u64) as usize
    }

    /// Installs (or waits for) the write intent on `key`, returning a
    /// guard that holds it until dropped. If another writer holds the
    /// key, this parks until that writer's release hands the intent
    /// over — the caller resumes already owning the key.
    ///
    /// A thread must never hold two intents for the same key (it would
    /// park on itself); multi-key callers go through
    /// [`KeyIntents::acquire_many`], which sorts and deduplicates.
    pub fn acquire(&self, key: &[u8]) -> IntentGuard<'_> {
        let stripe = &self.stripes[self.stripe_of(key)];
        let slot = {
            let mut map = stripe.lock();
            match map.get(key) {
                None => {
                    map.insert(key.to_vec(), Arc::new(IntentSlot::new()));
                    return IntentGuard { intents: self, key: key.to_vec() };
                }
                Some(slot) => {
                    let slot = Arc::clone(slot);
                    // Register under the stripe lock, so a concurrent
                    // release cannot miss us and retire the slot.
                    slot.state.lock().waiters += 1;
                    slot
                }
            }
        };
        self.parks.fetch_add(1, Ordering::Relaxed);
        let mut st = slot.state.lock();
        while st.grants == 0 {
            slot.cv.wait(&mut st);
        }
        st.grants -= 1;
        drop(st);
        IntentGuard { intents: self, key: key.to_vec() }
    }

    /// Acquires the intents for every distinct key in `keys`, in sorted
    /// key order (the global acquisition order that makes overlapping
    /// batches collide without cycling). Duplicates are acquired once.
    /// The returned guards release on drop, in any order.
    pub fn acquire_many<K: AsRef<[u8]>>(&self, keys: &[K]) -> Vec<IntentGuard<'_>> {
        let mut sorted: Vec<&[u8]> = keys.iter().map(AsRef::as_ref).collect();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.into_iter().map(|k| self.acquire(k)).collect()
    }

    /// Releases the intent on `key`: hands it to one parked waiter when
    /// any exists (the pre-granted continuation), otherwise retires the
    /// slot. Called by [`IntentGuard::drop`].
    fn release(&self, key: &[u8]) {
        let mut map = self.stripes[self.stripe_of(key)].lock();
        // nbb-lint: allow(unwrap, release only runs from a guard whose acquire installed the slot)
        let slot = Arc::clone(map.get(key).expect("released intent must be installed"));
        let mut st = slot.state.lock();
        if st.waiters > 0 {
            st.waiters -= 1;
            st.grants += 1;
            self.handoffs.fetch_add(1, Ordering::Relaxed);
            drop(st);
            drop(map);
            slot.cv.notify_one();
        } else {
            drop(st);
            map.remove(key);
        }
    }

    /// Acquisitions that found the key held and parked.
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Releases that handed the intent directly to a parked waiter.
    pub fn handoffs(&self) -> u64 {
        self.handoffs.load(Ordering::Relaxed)
    }

    /// True when no intent is installed (every writer finished). Test
    /// and assertion hook: a nonempty idle table means a leaked guard.
    pub fn is_idle(&self) -> bool {
        self.stripes.iter().all(|s| s.lock().is_empty())
    }
}

/// Holds the write intent on one key; releases (or hands off) on drop.
pub struct IntentGuard<'a> {
    intents: &'a KeyIntents,
    key: Vec<u8>,
}

impl IntentGuard<'_> {
    /// The key this intent covers.
    pub fn key(&self) -> &[u8] {
        &self.key
    }
}

impl Drop for IntentGuard<'_> {
    fn drop(&mut self) {
        self.intents.release(&self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn uncontended_acquire_installs_and_retires() {
        let intents = KeyIntents::new(4);
        {
            let g = intents.acquire(b"k");
            assert_eq!(g.key(), b"k");
            assert!(!intents.is_idle());
        }
        assert!(intents.is_idle(), "released intent must retire its slot");
        assert_eq!(intents.parks(), 0);
        assert_eq!(intents.handoffs(), 0);
    }

    #[test]
    fn acquire_many_sorts_and_dedupes() {
        let intents = KeyIntents::new(1);
        let keys: Vec<&[u8]> = vec![b"b", b"a", b"b", b"a"];
        let guards = intents.acquire_many(&keys);
        assert_eq!(guards.len(), 2, "duplicates must be acquired once");
        drop(guards);
        assert!(intents.is_idle());
    }

    #[test]
    fn racing_writer_parks_and_receives_the_handoff() {
        let intents = Arc::new(KeyIntents::new(2));
        let holder = intents.acquire(b"hot");
        let entered = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let waiter = {
                let intents = Arc::clone(&intents);
                let entered = Arc::clone(&entered);
                s.spawn(move || {
                    let _g = intents.acquire(b"hot");
                    entered.fetch_add(1, Ordering::SeqCst);
                })
            };
            while intents.parks() < 1 {
                std::thread::yield_now();
            }
            assert_eq!(entered.load(Ordering::SeqCst), 0, "waiter must be parked");
            drop(holder);
            waiter.join().unwrap();
        });
        assert_eq!(entered.load(Ordering::SeqCst), 1);
        assert_eq!(intents.parks(), 1);
        assert_eq!(intents.handoffs(), 1, "release must hand off, not just drop");
        assert!(intents.is_idle());
    }

    #[test]
    fn storm_on_one_key_serializes_every_writer() {
        // N threads x R rounds on one key through a single-stripe
        // table: a plain (non-atomic) counter under the intent must
        // never lose an increment, proving mutual exclusion, and every
        // thread must finish, proving the handoff chain never strands a
        // waiter.
        const THREADS: usize = 8;
        const ROUNDS: usize = 200;
        let intents = Arc::new(KeyIntents::new(1));
        let counter = Arc::new(Mutex::new(0usize)); // mutex only to satisfy Sync; never contended under the intent
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let intents = Arc::clone(&intents);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        let _g = intents.acquire(b"contended");
                        let mut c = counter.try_lock().expect("intent must exclude writers");
                        *c += 1;
                    }
                });
            }
        });
        assert_eq!(*counter.lock(), THREADS * ROUNDS);
        assert!(intents.is_idle());
        assert_eq!(intents.parks(), intents.handoffs(), "every park resolves via a handoff");
    }

    #[test]
    fn distinct_keys_do_not_interact() {
        let intents = KeyIntents::new(4);
        let _a = intents.acquire(b"a");
        let _b = intents.acquire(b"b"); // must not park
        assert_eq!(intents.parks(), 0);
    }
}
