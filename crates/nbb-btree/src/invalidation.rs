//! Cache consistency (§2.1.2): cache sequence numbers + predicate log.
//!
//! Two invariants make invalidation O(1):
//!
//! 1. `CSNp ≤ CSNidx` for every page;
//! 2. a page's cache is valid **only if** `CSNp == CSNidx`.
//!
//! Incrementing the global `CSNidx` therefore invalidates every page
//! cache at once — used at crash recovery and when the predicate log
//! overflows its threshold.
//!
//! Fine-grained invalidation appends a predicate (key + tuple id) that
//! uniquely identifies the updated tuple. When a leaf is read during
//! normal query execution, predicates newer than the leaf's watermark
//! are matched against its key range; on a match the leaf's cache space
//! is zeroed. The watermark (stored in the leaf header) keeps re-scans
//! amortized: a page only examines each predicate once.

use nbb_storage::lockrank;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A logged invalidation: identifies one updated tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    /// Monotonic sequence number (position in the log stream).
    pub seq: u64,
    /// The tuple's index key — used to match leaf key ranges.
    pub key: Vec<u8>,
    /// The tuple's cache id.
    pub tuple_id: u64,
}

/// Outcome of logging an invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidateOutcome {
    /// Appended to the log; pages will lazily zero on read.
    Logged,
    /// The log exceeded its threshold: `CSNidx` was bumped (all page
    /// caches invalid) and the log cleared.
    FullInvalidation,
}

/// Verdict for one leaf read: what the caller must do before trusting
/// the page's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageVerdict {
    /// Cache usable as-is (CSN matches and no pending predicate hit).
    pub cache_valid: bool,
    /// A pending predicate matched: the page cache must be zeroed.
    pub must_zero: bool,
    /// Watermark to install after processing (equals the newest seq
    /// examined). `None` when nothing new was examined.
    pub advance_watermark_to: Option<u64>,
}

/// Shared invalidation state for one index.
#[derive(Debug)]
pub struct InvalidationState {
    csn_idx: AtomicU64,
    log: Mutex<Vec<Predicate>>,
    next_seq: AtomicU64,
    threshold: usize,
    full_invalidations: AtomicU64,
    logged: AtomicU64,
}

impl InvalidationState {
    /// Creates state with the given log threshold.
    pub fn new(threshold: usize) -> Self {
        InvalidationState {
            csn_idx: AtomicU64::new(1),
            log: Mutex::with_rank(lockrank::TREE_INVALIDATION_LOG, Vec::new()),
            next_seq: AtomicU64::new(1),
            threshold: threshold.max(1),
            full_invalidations: AtomicU64::new(0),
            logged: AtomicU64::new(0),
        }
    }

    /// Current `CSNidx`.
    #[inline]
    pub fn csn(&self) -> u64 {
        self.csn_idx.load(Ordering::Acquire)
    }

    /// Sequence number of the newest predicate ever issued (0 if none).
    ///
    /// Together with [`csn`](Self::csn) this forms a consistency token:
    /// if both are unchanged between two moments, no invalidation of any
    /// kind happened in between.
    #[inline]
    pub fn newest_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Acquire) - 1
    }

    /// Invalidates the entire index cache (`CSNidx += 1`), e.g. after a
    /// simulated crash. Clears the predicate log: the CSN bump subsumes it.
    pub fn invalidate_all(&self) {
        let mut log = self.log.lock();
        log.clear();
        self.csn_idx.fetch_add(1, Ordering::AcqRel);
        self.full_invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Moves `CSNidx` strictly above `max_persisted_csn` (restart path:
    /// a reopened index must out-run every `CSNp` stamped by previous
    /// incarnations, or surviving disk bytes could false-validate).
    pub fn advance_epoch_beyond(&self, max_persisted_csn: u64) {
        let mut log = self.log.lock();
        log.clear();
        self.csn_idx.fetch_max(max_persisted_csn + 1, Ordering::AcqRel);
        self.full_invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Logs an invalidation predicate for one updated tuple.
    pub fn invalidate(&self, key: &[u8], tuple_id: u64) -> InvalidateOutcome {
        let mut log = self.log.lock();
        if log.len() + 1 > self.threshold {
            log.clear();
            self.csn_idx.fetch_add(1, Ordering::AcqRel);
            self.full_invalidations.fetch_add(1, Ordering::Relaxed);
            return InvalidateOutcome::FullInvalidation;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::AcqRel);
        log.push(Predicate { seq, key: key.to_vec(), tuple_id });
        self.logged.fetch_add(1, Ordering::Relaxed);
        InvalidateOutcome::Logged
    }

    /// Evaluates a leaf read: `page_csn`/`watermark` come from the page
    /// header, `range` is the leaf's `[first_key, last_key]` (or `None`
    /// when the leaf is empty).
    pub fn check_page(
        &self,
        page_csn: u64,
        watermark: u64,
        range: Option<(&[u8], &[u8])>,
    ) -> PageVerdict {
        let csn = self.csn();
        if page_csn != csn {
            // Stale epoch: cache unusable regardless of the log. Zeroing
            // and re-stamping happen lazily on the next cache store.
            return PageVerdict {
                cache_valid: false,
                must_zero: false,
                advance_watermark_to: None,
            };
        }
        let log = self.log.lock();
        let newest = log.last().map(|p| p.seq);
        let pending: Vec<&Predicate> = log.iter().filter(|p| p.seq > watermark).collect();
        if pending.is_empty() {
            return PageVerdict { cache_valid: true, must_zero: false, advance_watermark_to: None };
        }
        let matched = match range {
            Some((first, last)) => {
                pending.iter().any(|p| p.key.as_slice() >= first && p.key.as_slice() <= last)
            }
            None => false,
        };
        PageVerdict { cache_valid: !matched, must_zero: matched, advance_watermark_to: newest }
    }

    /// Number of predicates currently pending.
    pub fn pending_len(&self) -> usize {
        self.log.lock().len()
    }

    /// `(predicates logged, full invalidations)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.logged.load(Ordering::Relaxed), self.full_invalidations.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_validates_matching_csn() {
        let inv = InvalidationState::new(10);
        let v = inv.check_page(inv.csn(), 0, Some((b"a".as_ref(), b"z".as_ref())));
        assert!(v.cache_valid);
        assert!(!v.must_zero);
    }

    #[test]
    fn csn_mismatch_invalidates_without_zero() {
        let inv = InvalidationState::new(10);
        let v = inv.check_page(inv.csn() - 1, 0, Some((b"a".as_ref(), b"z".as_ref())));
        assert!(!v.cache_valid);
        assert!(!v.must_zero, "stale epoch is handled lazily, not by zeroing");
    }

    #[test]
    fn matching_predicate_forces_zero() {
        let inv = InvalidationState::new(10);
        assert_eq!(inv.invalidate(b"m", 7), InvalidateOutcome::Logged);
        let v = inv.check_page(inv.csn(), 0, Some((b"a".as_ref(), b"z".as_ref())));
        assert!(!v.cache_valid);
        assert!(v.must_zero);
        assert_eq!(v.advance_watermark_to, Some(1));
    }

    #[test]
    fn non_matching_predicate_leaves_cache_valid() {
        let inv = InvalidationState::new(10);
        inv.invalidate(b"zzz", 7);
        let v = inv.check_page(inv.csn(), 0, Some((b"a".as_ref(), b"m".as_ref())));
        assert!(v.cache_valid);
        assert!(!v.must_zero);
        // watermark advance allows skipping this predicate next time
        assert_eq!(v.advance_watermark_to, Some(1));
    }

    #[test]
    fn watermark_skips_already_seen_predicates() {
        let inv = InvalidationState::new(10);
        inv.invalidate(b"m", 7);
        let v1 = inv.check_page(inv.csn(), 0, Some((b"a".as_ref(), b"z".as_ref())));
        assert!(v1.must_zero);
        let wm = v1.advance_watermark_to.unwrap();
        let v2 = inv.check_page(inv.csn(), wm, Some((b"a".as_ref(), b"z".as_ref())));
        assert!(v2.cache_valid, "same predicate must not re-zero after watermark");
    }

    #[test]
    fn threshold_triggers_full_invalidation() {
        let inv = InvalidationState::new(3);
        let before = inv.csn();
        assert_eq!(inv.invalidate(b"a", 1), InvalidateOutcome::Logged);
        assert_eq!(inv.invalidate(b"b", 2), InvalidateOutcome::Logged);
        assert_eq!(inv.invalidate(b"c", 3), InvalidateOutcome::Logged);
        assert_eq!(inv.invalidate(b"d", 4), InvalidateOutcome::FullInvalidation);
        assert_eq!(inv.csn(), before + 1);
        assert_eq!(inv.pending_len(), 0);
        let (logged, full) = inv.counters();
        assert_eq!(logged, 3);
        assert_eq!(full, 1);
    }

    #[test]
    fn invalidate_all_bumps_and_clears() {
        let inv = InvalidationState::new(10);
        inv.invalidate(b"a", 1);
        let before = inv.csn();
        inv.invalidate_all();
        assert_eq!(inv.csn(), before + 1);
        assert_eq!(inv.pending_len(), 0);
    }

    #[test]
    fn empty_leaf_never_matches() {
        let inv = InvalidationState::new(10);
        inv.invalidate(b"m", 7);
        let v = inv.check_page(inv.csn(), 0, None);
        assert!(!v.must_zero);
        assert!(v.cache_valid);
    }

    #[test]
    fn range_boundaries_inclusive() {
        let inv = InvalidationState::new(10);
        inv.invalidate(b"a", 1);
        inv.invalidate(b"z", 2);
        let v = inv.check_page(inv.csn(), 0, Some((b"a".as_ref(), b"a".as_ref())));
        assert!(v.must_zero, "first_key boundary must match");
        let v = inv.check_page(inv.csn(), 1, Some((b"z".as_ref(), b"z".as_ref())));
        assert!(v.must_zero, "last_key boundary must match");
    }
}
