//! The B+Tree: search/insert/delete/scan plus the §2.1 index-cache
//! protocol (probe on lookup, populate on miss, promote on hit,
//! predicate-driven invalidation).
//!
//! Concurrency model: one tree-level `RwLock<PageId>` guards the tree's
//! *shape* and holds the current root as its value, plus a striped
//! per-leaf latch table for writers. Read-only operations (`get`,
//! `lookup_cached`, `scan_from`, the stats walks) take the read side —
//! they never block each other, and with the sharded buffer pool they
//! proceed in parallel down to the frame latches.
//!
//! Writers crab: they descend under the structure lock's **read** side
//! (the shape cannot change underfoot while any read guard is held),
//! latch the destination leaf in [`LeafLatches`], and mutate it
//! leaf-locally — so inserts and deletes on disjoint leaves proceed in
//! parallel, matching the sharded buffer pool. Only a structural
//! modification escalates: a full leaf makes the writer drop its leaf
//! latch and read guard, take the structure lock's **write** side
//! (excluding every reader and fast-path writer), and re-descend to
//! split — deletes never restructure (underflow is left for the index
//! cache to recycle), so they never escalate. The multi-key ops
//! ([`BTree::insert_many`] / [`BTree::delete_many`]) sort their keys
//! and ride one descent + one leaf-latch acquisition per destination
//! leaf; the single-key mutators are wrappers over batches of one.
//!
//! Alongside the leaf latches the tree carries a [`KeyIntents`] table
//! ([`BTree::intents`]): key-level **write intents** for the multi-step
//! logical writes layered above the tree (resolve a key, mutate the
//! heap, maintain every index). The tree's own entry points do not take
//! intents — a single leaf mutation is already atomic under its latch —
//! but the table layer installs an intent on every key a write batch
//! addresses *before* descending, and racing same-key writers park on
//! it with a pre-granted handoff, exactly like buffer-pool requesters
//! parking on an in-flight load. That makes per-key put/update/delete
//! linearizable end to end without adding any cost to disjoint-key
//! writers; [`WriteStats::intent_parks`] / `intent_handoffs` meter the
//! contention. [`BTreeOptions::intent_stripes`] sizes the table.
//!
//! Page-level physical latching is delegated to the buffer pool's frame
//! locks (every leaf mutation is a single
//! [`nbb_storage::BufferPool::with_page_mut`] closure, so readers always
//! observe a leaf between two whole operations). Cache writes use the
//! pool's try-latch, non-dirtying access
//! ([`nbb_storage::BufferPool::with_page_cache_write`]) and are simply
//! skipped under contention, per §2.1.3.
//!
//! The pool's fault path is an I/O-in-progress state machine: a request
//! for a page another thread is still loading *parks on that frame*
//! (off every tree lock — a parked reader holds at most the structure
//! lock's read side, which the loader never needs), and faults for
//! distinct pages in one pool stripe overlap. Tree code needs no
//! special cases for these `Loading` frames — `get_many`'s per-leaf
//! batches and the write paths' leaf-run accesses simply come back with
//! the page once it publishes — but it can rely on cold batched reads
//! not serializing per stripe, and on a storm of descents through the
//! same cold interior page costing one disk read.
//!
//! Every lock above sits in the workspace lock-order lattice
//! (`CONCURRENCY.md` at the repo root): structure at rank 30, leaf
//! latches at 40 — deliberately *not* re-entrant, so the rank checker
//! enforces the one-leaf-latch-at-a-time crabbing promise — and the
//! tree's frame-nested state (invalidation log, promotion RNG) above
//! the pool's frame rank. Debug test runs verify the whole order at
//! runtime; `cargo run -p nbb-lint` verifies no lock escapes it.

use crate::cache::{CacheConfig, CacheView, CacheViewMut, StoreOutcome, CACHE_CAP_UNLIMITED};
use crate::intents::KeyIntents;
use crate::invalidation::{InvalidateOutcome, InvalidationState};
use crate::node::{node_capacity, InsertOutcome, Node, NodeMut};
use nbb_storage::buffer::BufferPool;
use nbb_storage::error::{Result, StorageError};
use nbb_storage::lockrank;
use nbb_storage::page::PageId;
use parking_lot::{Mutex, MutexGuard, RwLock};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Stripes in the per-leaf latch table. Collisions between distinct
/// leaves only cost parallelism, never correctness, so a modest fixed
/// count suffices — it bounds writer fan-out the way pool shards bound
/// reader fan-out.
const LEAF_LATCH_STRIPES: usize = 64;

/// Leaf runs a multi-key write processes per structure-lock read
/// acquisition. Releasing and reacquiring the guard at this cadence
/// bounds how long a large batch can hold off an escalating writer
/// (and the readers queued behind it under a fair lock), at the cost
/// of one extra lock round-trip per RUNS_PER_GUARD leaves.
const RUNS_PER_GUARD: usize = 64;

/// Striped per-leaf write latches (the "per-leaf latching" ROADMAP
/// item). A writer holds the latch of the one leaf it mutates for the
/// duration of its leaf-local work; writers on other leaves proceed in
/// parallel. Readers never touch these — the buffer pool's frame
/// latches give them consistent per-page views. Deadlock discipline: a
/// thread holds at most one leaf latch at a time, acquired only while
/// holding the structure lock's read side (never its write side), so
/// the only lock order is structure → leaf → frame.
struct LeafLatches {
    stripes: Box<[Mutex<()>]>,
}

impl LeafLatches {
    fn new() -> Self {
        LeafLatches {
            stripes: (0..LEAF_LATCH_STRIPES)
                .map(|_| Mutex::with_rank(lockrank::LEAF_LATCH, ()))
                .collect(),
        }
    }

    fn lock(&self, leaf: PageId) -> MutexGuard<'_, ()> {
        self.stripes[(leaf.0 % self.stripes.len() as u64) as usize].lock()
    }
}

/// Tree construction options.
#[derive(Debug, Clone, Default)]
pub struct BTreeOptions {
    /// Enable the index cache with this configuration.
    pub cache: Option<CacheConfig>,
    /// Seed for the cache's randomized placement (fixed default for
    /// reproducibility).
    pub cache_seed: u64,
    /// Stripes in the key-level write-intent table ([`BTree::intents`]).
    /// `0` (the default) selects
    /// [`crate::intents::DEFAULT_INTENT_STRIPES`]; `1` degrades to a
    /// single stripe, which only costs parallelism, never correctness.
    pub intent_stripes: usize,
}

/// Aggregated index-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cached lookups attempted (key found in the index).
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to go to the heap.
    pub misses: u64,
    /// Entries stored by [`BTree::cache_populate`].
    pub populates: u64,
    /// Stores that overwrote a peripheral victim.
    pub evictions: u64,
    /// On-hit swaps toward the stable point.
    pub promotions: u64,
    /// Cache writes abandoned because the page latch was contended.
    pub latch_giveups: u64,
    /// Page caches zeroed by predicate matches.
    pub zeroings: u64,
    /// Populates skipped because an invalidation raced the heap read.
    pub stale_skips: u64,
}

impl CacheStats {
    /// Cache hit rate over attempted lookups.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Aggregated write-path counters: how much descent and latch work the
/// multi-key write ops amortized. A loop of N single-key calls shows as
/// N batches of one key; one [`BTree::insert_many`] of N keys shows as
/// **one** batch whose `keys / leaf_groups` ratio is the amortization
/// factor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Logical write batches executed (one per `insert_many` /
    /// `delete_many` call; single-key wrappers count as batches of one).
    pub batches: u64,
    /// Keys across those batches.
    pub keys: u64,
    /// Leaf groups processed — one descent plus one leaf-latch
    /// acquisition each.
    pub leaf_groups: u64,
    /// Runs that hit a full leaf and escalated to the exclusive
    /// structure lock (where splits happen).
    pub escalations: u64,
    /// Writers that found their key's write intent held by another
    /// writer and parked on it ([`BTree::intents`]) — same-key write
    /// contention made visible.
    pub intent_parks: u64,
    /// Intent releases that handed the key directly to a parked waiter
    /// (the pre-granted continuation) instead of retiring the intent.
    pub intent_handoffs: u64,
}

impl WriteStats {
    /// Mean keys amortized per descent/latch acquisition (1.0 = no
    /// amortization, i.e. pure single-key traffic).
    pub fn keys_per_leaf_group(&self) -> f64 {
        if self.leaf_groups == 0 {
            0.0
        } else {
            self.keys as f64 / self.leaf_groups as f64
        }
    }
}

#[derive(Default)]
struct WriteStatsAtomic {
    batches: AtomicU64,
    keys: AtomicU64,
    leaf_groups: AtomicU64,
    escalations: AtomicU64,
}

#[derive(Default)]
struct CacheStatsAtomic {
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    populates: AtomicU64,
    evictions: AtomicU64,
    promotions: AtomicU64,
    latch_giveups: AtomicU64,
    zeroings: AtomicU64,
    stale_skips: AtomicU64,
}

/// Consistency token captured at lookup time; [`BTree::cache_populate`]
/// refuses to store a payload if any invalidation happened after it was
/// issued (the heap value read in between may be stale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvToken {
    csn: u64,
    newest_seq: u64,
}

/// Result of a cache-aware point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedLookup {
    /// The value stored for the key (tuple pointer), if the key exists.
    pub value: Option<u64>,
    /// The cached payload, present on a cache hit.
    pub payload: Option<Vec<u8>>,
    /// The leaf that owns the key — pass to [`BTree::cache_populate`].
    pub leaf: PageId,
    /// Consistency token for populating after a heap fetch.
    pub token: InvToken,
}

/// One `(key, value)` pair surfaced by [`BTree::range_chunk`], with the
/// cached payload when the owning leaf's cache held one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeEntry {
    /// The index key.
    pub key: Vec<u8>,
    /// The stored value (tuple pointer).
    pub value: u64,
    /// Cached fields from leaf free space, if present and valid.
    pub payload: Option<Vec<u8>>,
}

/// One leaf's worth of an ordered range scan (see
/// [`BTree::range_chunk`]).
#[derive(Debug, Clone)]
pub struct RangeChunk {
    /// In-range entries, ascending by key. Empty only when `exhausted`.
    pub entries: Vec<RangeEntry>,
    /// The leaf the entries came from — pass to
    /// [`BTree::cache_populate`] together with `token` after a heap
    /// chase, so scans warm the cache like point lookups do.
    pub leaf: PageId,
    /// Consistency token issued before the leaf was read.
    pub token: InvToken,
    /// True once the scan passed the upper bound or the leaf chain
    /// ended; no further chunk will yield entries.
    pub exhausted: bool,
}

/// A disk-style B+Tree with fixed-width keys and `u64` values.
pub struct BTree {
    pool: Arc<BufferPool>,
    key_size: usize,
    /// The structure lock. Guards the tree's shape (splits, root swaps)
    /// and carries the current root page id as its value, so readers
    /// snapshot the root and protect the shape with a single shared
    /// acquisition.
    root: RwLock<PageId>,
    /// Per-leaf write latches; see the module docs' crabbing discipline.
    latches: LeafLatches,
    /// Key-level write intents for the logical write paths layered
    /// above the tree; see [`BTree::intents`].
    intents: KeyIntents,
    opts: BTreeOptions,
    inv: InvalidationState,
    rng: Mutex<SmallRng>,
    stats: CacheStatsAtomic,
    wstats: WriteStatsAtomic,
    /// Per-leaf cache-space target in bytes ([`CACHE_CAP_UNLIMITED`] =
    /// every free-region slot is usable). Set at runtime by the tuner
    /// via [`BTree::set_cache_space_target`] and honored lazily: each
    /// cache view built after the store reads the new value, so the cap
    /// takes effect at the next leaf touch with no stop-the-world
    /// rewrite.
    cache_cap: AtomicUsize,
}

impl BTree {
    /// Creates an empty tree.
    pub fn create(pool: Arc<BufferPool>, key_size: usize, opts: BTreeOptions) -> Result<Self> {
        assert!(key_size >= 1, "key size must be positive");
        if let Some(c) = &opts.cache {
            c.validate();
        }
        let page_size = pool.disk().page_size();
        assert!(
            node_capacity(page_size, key_size) >= 4,
            "page size {page_size} too small for key size {key_size}"
        );
        let (root, ()) = pool.new_page_with(|p| {
            NodeMut::init_leaf(p, key_size);
        })?;
        let threshold = opts.cache.map(|c| c.log_threshold).unwrap_or(64);
        let seed = opts.cache_seed;
        Ok(BTree {
            pool,
            key_size,
            latches: LeafLatches::new(),
            intents: KeyIntents::new(opts.intent_stripes),
            root: RwLock::with_rank(lockrank::TREE_STRUCTURE, root),
            opts,
            inv: InvalidationState::new(threshold),
            rng: Mutex::with_rank(
                lockrank::TREE_RNG,
                SmallRng::seed_from_u64(seed ^ 0x006e_6262_7472_6565),
            ),
            stats: CacheStatsAtomic::default(),
            wstats: WriteStatsAtomic::default(),
            cache_cap: AtomicUsize::new(CACHE_CAP_UNLIMITED),
        })
    }

    /// Reattaches a tree persisted on `pool`'s disk, rooted at `root`
    /// (the caller's catalog records the root page id and key size).
    ///
    /// This is the restart/recovery path (§2.1.2): the reopened tree
    /// starts a fresh CSN epoch, so any cache bytes that survived on
    /// disk are invalid until repopulated — "to support full index
    /// invalidation … we can efficiently invalidate the entire cache by
    /// incrementing CSNidx".
    pub fn open(
        pool: Arc<BufferPool>,
        key_size: usize,
        root: PageId,
        opts: BTreeOptions,
    ) -> Result<Self> {
        assert!(key_size >= 1, "key size must be positive");
        if let Some(c) = &opts.cache {
            c.validate();
        }
        // Sanity: the root must parse as a node of this key size.
        pool.with_page(root, |p| {
            let n = Node::new(p, key_size);
            let _ = n.nkeys();
        })?;
        let threshold = opts.cache.map(|c| c.log_threshold).unwrap_or(64);
        let seed = opts.cache_seed;
        let tree = BTree {
            pool,
            key_size,
            latches: LeafLatches::new(),
            intents: KeyIntents::new(opts.intent_stripes),
            root: RwLock::with_rank(lockrank::TREE_STRUCTURE, root),
            opts,
            inv: InvalidationState::new(threshold),
            rng: Mutex::with_rank(
                lockrank::TREE_RNG,
                SmallRng::seed_from_u64(seed ^ 0x006e_6262_7472_6565),
            ),
            stats: CacheStatsAtomic::default(),
            wstats: WriteStatsAtomic::default(),
            cache_cap: AtomicUsize::new(CACHE_CAP_UNLIMITED),
        };
        // Fresh epoch strictly above every persisted CSNp, so cache
        // bytes surviving on disk can never false-validate.
        let mut max_csn = 0u64;
        tree.for_each_leaf(|n| max_csn = max_csn.max(n.csn()))?;
        tree.inv.advance_epoch_beyond(max_csn);
        Ok(tree)
    }

    /// The current root page id (persist it in a catalog to reopen the
    /// tree later with [`BTree::open`]).
    pub fn root_page(&self) -> PageId {
        *self.root.read()
    }

    /// Bulk-loads a tree from strictly ascending `(key, value)` pairs,
    /// filling each node to `fill` of capacity (the paper's fill-factor
    /// knob: 0.68 typical, 1.0 compacted, 0.45 churned).
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        key_size: usize,
        opts: BTreeOptions,
        entries: impl IntoIterator<Item = (Vec<u8>, u64)>,
        fill: f64,
    ) -> Result<Self> {
        assert!((0.0..=1.0).contains(&fill), "fill must be in (0, 1]");
        if let Some(c) = &opts.cache {
            c.validate();
        }
        let page_size = pool.disk().page_size();
        let cap = node_capacity(page_size, key_size);
        assert!(cap >= 4, "page size {page_size} too small for key size {key_size}");
        let per_node = ((cap as f64 * fill) as usize).clamp(1, cap);

        // Level 0: leaves.
        let mut level_nodes: Vec<(Vec<u8>, PageId)> = Vec::new();
        let mut current: Option<PageId> = None;
        let mut count_in_node = 0usize;
        let mut prev_key: Option<Vec<u8>> = None;
        let mut prev_leaf: Option<PageId> = None;
        for (key, value) in entries {
            assert_eq!(key.len(), key_size, "bulk_load key width mismatch");
            if let Some(pk) = &prev_key {
                assert!(*pk < key, "bulk_load requires strictly ascending keys");
            }
            prev_key = Some(key.clone());
            if current.is_none() || count_in_node >= per_node {
                let (pid, ()) = pool.new_page_with(|p| {
                    NodeMut::init_leaf(p, key_size);
                })?;
                if let Some(prev) = prev_leaf {
                    pool.with_page_mut(prev, |p| {
                        NodeMut::new(p, key_size).set_next_leaf(pid);
                    })?;
                }
                prev_leaf = Some(pid);
                level_nodes.push((key.clone(), pid));
                current = Some(pid);
                count_in_node = 0;
            }
            // nbb-lint: allow(unwrap, current is seeded before the first iteration)
            let pid = current.expect("set above");
            pool.with_page_mut(pid, |p| {
                let r = NodeMut::new(p, key_size).append_sorted(&key, value);
                debug_assert_eq!(r, InsertOutcome::Inserted);
            })?;
            count_in_node += 1;
        }
        if level_nodes.is_empty() {
            return Self::create(pool, key_size, opts);
        }

        // Upper levels.
        let mut level = 1u16;
        while level_nodes.len() > 1 {
            let group = per_node.max(2);
            let mut next_level: Vec<(Vec<u8>, PageId)> = Vec::new();
            for chunk in level_nodes.chunks(group + 1) {
                let leftmost = chunk[0].1;
                let (pid, ()) = pool.new_page_with(|p| {
                    NodeMut::init_internal(p, key_size, level, leftmost);
                })?;
                for (sep, child) in &chunk[1..] {
                    pool.with_page_mut(pid, |p| {
                        let r = NodeMut::new(p, key_size).append_sorted(sep, child.0);
                        debug_assert_eq!(r, InsertOutcome::Inserted);
                    })?;
                }
                next_level.push((chunk[0].0.clone(), pid));
            }
            level_nodes = next_level;
            level += 1;
        }

        let threshold = opts.cache.map(|c| c.log_threshold).unwrap_or(64);
        let seed = opts.cache_seed;
        Ok(BTree {
            pool,
            key_size,
            latches: LeafLatches::new(),
            intents: KeyIntents::new(opts.intent_stripes),
            root: RwLock::with_rank(lockrank::TREE_STRUCTURE, level_nodes[0].1),
            opts,
            inv: InvalidationState::new(threshold),
            rng: Mutex::with_rank(
                lockrank::TREE_RNG,
                SmallRng::seed_from_u64(seed ^ 0x006e_6262_7472_6565),
            ),
            stats: CacheStatsAtomic::default(),
            wstats: WriteStatsAtomic::default(),
            cache_cap: AtomicUsize::new(CACHE_CAP_UNLIMITED),
        })
    }

    /// Key width in bytes.
    pub fn key_size(&self) -> usize {
        self.key_size
    }

    /// The buffer pool backing this tree.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Cache configuration, if caching is enabled.
    pub fn cache_config(&self) -> Option<&CacheConfig> {
        self.opts.cache.as_ref()
    }

    /// Sets the per-leaf cache-space target in bytes (`None` =
    /// unlimited, the default: every free-region slot is usable). The
    /// tuner's runtime-resize hook. Honored **lazily** at the next
    /// leaf touch — each cache view built afterwards clamps its usable
    /// slots to a window of this many bytes around the stable point —
    /// so no leaf is rewritten eagerly. Shrinking strands entries
    /// outside the window (harmless: they are unreachable, and
    /// invalidation still zeroes the full natural range); growing
    /// re-exposes only slots that invalidation kept honest.
    pub fn set_cache_space_target(&self, bytes_per_leaf: Option<usize>) {
        self.cache_cap.store(bytes_per_leaf.unwrap_or(CACHE_CAP_UNLIMITED), Ordering::Relaxed);
    }

    /// The per-leaf cache-space target, if one was set.
    pub fn cache_space_target(&self) -> Option<usize> {
        match self.cache_cap.load(Ordering::Relaxed) {
            CACHE_CAP_UNLIMITED => None,
            b => Some(b),
        }
    }

    /// The cap every cache view is built with.
    #[inline]
    fn cache_cap_bytes(&self) -> usize {
        self.cache_cap.load(Ordering::Relaxed)
    }

    fn check_key(&self, key: &[u8]) -> Result<()> {
        if key.len() != self.key_size {
            return Err(StorageError::Corrupt(format!(
                "key width {} does not match index width {}",
                key.len(),
                self.key_size
            )));
        }
        Ok(())
    }

    /// Descends from `root` to the leaf owning `key`. The caller must
    /// hold the structure lock (either side) so the path cannot change
    /// underfoot.
    fn find_leaf(&self, root: PageId, key: &[u8]) -> Result<PageId> {
        let mut cur = root;
        loop {
            let next = self.pool.with_page(cur, |p| {
                let n = Node::new(p, self.key_size);
                if n.is_leaf() {
                    None
                } else {
                    Some(n.child_for(key))
                }
            })?;
            match next {
                Some(child) => cur = child,
                None => return Ok(cur),
            }
        }
    }

    /// Like [`BTree::find_leaf`], but also returns the tightest routing
    /// upper bound collected along the descent: every key strictly
    /// below the bound is owned by the returned leaf (`None` = the
    /// rightmost leaf, which owns everything above its separator). This
    /// is what lets the batched write paths consume a whole sorted run
    /// of keys per descent without guessing at leaf boundaries. The
    /// caller must hold the structure lock (either side).
    fn find_leaf_bounded(&self, root: PageId, key: &[u8]) -> Result<(PageId, Option<Vec<u8>>)> {
        let mut cur = root;
        let mut upper: Option<Vec<u8>> = None;
        loop {
            let next = self.pool.with_page(cur, |p| {
                let n = Node::new(p, self.key_size);
                if n.is_leaf() {
                    return None;
                }
                // child_for(), inlined to also capture the separator
                // immediately above the taken child — the tightest
                // bound at this level (a child's subtree bound is
                // always <= its ancestors', so innermost wins).
                let (child, bound) = match n.search(key) {
                    Ok(i) => (
                        PageId(n.value_at(i)),
                        (i + 1 < n.nkeys()).then(|| n.key_at(i + 1).to_vec()),
                    ),
                    Err(0) => (n.leftmost_child(), n.first_key().map(<[u8]>::to_vec)),
                    Err(i) => {
                        (PageId(n.value_at(i - 1)), (i < n.nkeys()).then(|| n.key_at(i).to_vec()))
                    }
                };
                Some((child, bound))
            })?;
            match next {
                Some((child, bound)) => {
                    if bound.is_some() {
                        upper = bound;
                    }
                    cur = child;
                }
                None => return Ok((cur, upper)),
            }
        }
    }

    /// Descends to the leaf owning the first key of `tail` (the sorted
    /// remainder of a batch's order vector; `key_of` maps an order
    /// entry to its key) and returns how many of `tail`'s leading keys
    /// that leaf owns. Single-key tails skip the bound bookkeeping.
    fn locate_run<'k>(
        &self,
        root: PageId,
        key_of: impl Fn(usize) -> &'k [u8],
        tail: &[usize],
    ) -> Result<(PageId, usize)> {
        let first = key_of(tail[0]);
        if tail.len() == 1 {
            return Ok((self.find_leaf(root, first)?, 1));
        }
        let (leaf, upper) = self.find_leaf_bounded(root, first)?;
        let run = match upper {
            Some(ub) => {
                let mut e = 1;
                while e < tail.len() && key_of(tail[e]) < ub.as_slice() {
                    e += 1;
                }
                e
            }
            None => tail.len(),
        };
        Ok((leaf, run))
    }

    /// Point lookup without cache interaction.
    pub fn get(&self, key: &[u8]) -> Result<Option<u64>> {
        self.check_key(key)?;
        let root = self.root.read();
        let leaf = self.find_leaf(*root, key)?;
        self.pool.with_page(leaf, |p| {
            let n = Node::new(p, self.key_size);
            Ok(n.search(key).ok().map(|i| n.value_at(i)))
        })?
    }

    /// Batched point lookup; results are indexed like `keys`.
    ///
    /// The whole batch shares **one** structure-lock acquisition and is
    /// processed in sorted key order, so every key that resolves in the
    /// same leaf shares a single page visit: N lookups over a hot key
    /// set cost roughly one descent per *distinct leaf* instead of N
    /// full root-to-leaf descents with N lock round-trips.
    pub fn get_many<K: AsRef<[u8]>>(&self, keys: &[K]) -> Result<Vec<Option<u64>>> {
        for k in keys {
            self.check_key(k.as_ref())?;
        }
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by(|&a, &b| keys[a].as_ref().cmp(keys[b].as_ref()));
        let mut out: Vec<Option<u64>> = vec![None; keys.len()];
        let root = self.root.read();
        let mut i = 0;
        while i < order.len() {
            let leaf = self.find_leaf(*root, keys[order[i]].as_ref())?;
            let consumed = self.pool.with_page(leaf, |p| {
                let n = Node::new(p, self.key_size);
                let mut c = 0;
                while i + c < order.len() {
                    let key = keys[order[i + c]].as_ref();
                    match n.search(key) {
                        Ok(j) => out[order[i + c]] = Some(n.value_at(j)),
                        // Past the last key: only the key that was
                        // routed here (c == 0) is definitively absent;
                        // later keys may belong to a sibling, so the
                        // outer loop re-descends for them.
                        Err(j) if j >= n.nkeys() => {
                            if c == 0 {
                                c = 1;
                            }
                            break;
                        }
                        Err(_) => {} // strictly inside the leaf: absent
                    }
                    c += 1;
                }
                c
            })?;
            i += consumed;
        }
        Ok(out)
    }

    /// Inserts `key → value`; returns the previous value when
    /// overwriting. Thin wrapper over a one-entry
    /// [`BTree::insert_many`].
    pub fn insert(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        let mut r = self.insert_many(&[(key, value)])?;
        // nbb-lint: allow(unwrap, insert_many returns one result per input entry)
        Ok(r.pop().expect("one entry in, one result out"))
    }

    /// Inserts a batch of `(key, value)` entries; results (the previous
    /// value when overwriting) are indexed like `entries`.
    ///
    /// The write analogue of [`BTree::get_many`]: keys are sorted and
    /// grouped by destination leaf, so the batch pays one descent, one
    /// leaf-latch acquisition, and one exclusive page access per
    /// **distinct leaf** instead of per key. The sorted run each leaf
    /// owns is bounded by the routing separators collected during the
    /// descent ([`BTree::find_leaf_bounded`]), so no key is ever
    /// applied to the wrong leaf. Writers on disjoint leaves proceed in
    /// parallel under the structure lock's read side; a run that fills
    /// its leaf escalates just that key to the write side (splitting as
    /// needed) and resumes the fast path for the rest of the batch.
    ///
    /// Duplicate keys within one batch are rejected whole with
    /// [`StorageError::DuplicateKeyInBatch`] **before** any mutation:
    /// inside a single batch there is no meaningful "last writer", so
    /// the ambiguity is surfaced instead of silently resolved.
    pub fn insert_many<K: AsRef<[u8]>>(&self, entries: &[(K, u64)]) -> Result<Vec<Option<u64>>> {
        for (k, _) in entries {
            self.check_key(k.as_ref())?;
        }
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        if let [(key, value)] = entries {
            // Batch of one (the `insert` wrapper's shape): same crab,
            // none of the batch bookkeeping allocations — no order
            // vector, no sort, no duplicate scan.
            self.wstats.batches.fetch_add(1, Ordering::Relaxed);
            self.wstats.keys.fetch_add(1, Ordering::Relaxed);
            return Ok(vec![self.insert_one(key.as_ref(), *value)?]);
        }
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| entries[a].0.as_ref().cmp(entries[b].0.as_ref()));
        for w in order.windows(2) {
            if entries[w[0]].0.as_ref() == entries[w[1]].0.as_ref() {
                return Err(StorageError::duplicate_key(entries[w[0]].0.as_ref()));
            }
        }
        self.wstats.batches.fetch_add(1, Ordering::Relaxed);
        self.wstats.keys.fetch_add(entries.len() as u64, Ordering::Relaxed);
        let mut out: Vec<Option<u64>> = vec![None; entries.len()];
        let mut i = 0;
        while i < order.len() {
            let mut escalate = false;
            {
                // Fast path: crab under the shared structure lock,
                // latching one leaf per sorted run. The guard is
                // released every RUNS_PER_GUARD runs so an arbitrarily
                // large batch cannot stall an escalating writer (and
                // the readers queued behind it) for its whole length.
                let root = self.root.read();
                let mut runs = 0;
                while i < order.len() && runs < RUNS_PER_GUARD {
                    runs += 1;
                    let (leaf, run) =
                        self.locate_run(*root, |pos| entries[pos].0.as_ref(), &order[i..])?;
                    let _latch = self.latches.lock(leaf);
                    self.wstats.leaf_groups.fetch_add(1, Ordering::Relaxed);
                    let applied = self.pool.with_page_mut(leaf, |p| {
                        let mut n = NodeMut::new(p, self.key_size);
                        let mut applied: Vec<(usize, Option<u64>)> = Vec::with_capacity(run);
                        for &pos in &order[i..i + run] {
                            let key = entries[pos].0.as_ref();
                            let old = n.as_ref().search(key).ok().map(|j| n.as_ref().value_at(j));
                            if n.insert(key, entries[pos].1) == InsertOutcome::NeedSplit {
                                break;
                            }
                            applied.push((pos, old));
                        }
                        applied
                    })?;
                    let done = applied.len();
                    for (pos, old) in applied {
                        if let Some(o) = old {
                            // Overwriting an existing pointer may strand
                            // a cached entry for the old tuple id; a
                            // predicate flushes it lazily.
                            self.inv.invalidate(entries[pos].0.as_ref(), o.wrapping_add(1));
                        }
                        out[pos] = old;
                    }
                    i += done;
                    if done < run {
                        escalate = true;
                        break;
                    }
                }
            }
            if escalate {
                // Slow path: the leaf is full. Split under the exclusive
                // structure lock for this one key, then resume crabbing.
                let pos = order[i];
                out[pos] = self.insert_escalated(entries[pos].0.as_ref(), entries[pos].1)?;
                i += 1;
            }
        }
        Ok(out)
    }

    /// One key through the crabbing fast path: shared structure lock,
    /// leaf latch, leaf-local write; escalates on a full leaf. The
    /// allocation-free core both `insert` and a one-entry
    /// [`BTree::insert_many`] reduce to.
    fn insert_one(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        {
            let root = self.root.read();
            let leaf = self.find_leaf(*root, key)?;
            let _latch = self.latches.lock(leaf);
            self.wstats.leaf_groups.fetch_add(1, Ordering::Relaxed);
            let (outcome, old) = self.pool.with_page_mut(leaf, |p| {
                let mut n = NodeMut::new(p, self.key_size);
                let old = n.as_ref().search(key).ok().map(|i| n.as_ref().value_at(i));
                (n.insert(key, value), old)
            })?;
            if outcome != InsertOutcome::NeedSplit {
                if let Some(o) = old {
                    // Overwriting an existing pointer may strand a
                    // cached entry for the old tuple id; a predicate
                    // flushes it lazily.
                    self.inv.invalidate(key, o.wrapping_add(1));
                }
                return Ok(old);
            }
        }
        self.insert_escalated(key, value)
    }

    /// Escalated insert: takes the structure lock's write side (every
    /// reader and fast-path writer drains first), re-descends, and
    /// splits whatever is full along the way — the only place the
    /// tree's shape changes.
    fn insert_escalated(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        self.wstats.escalations.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.root.write();
        let root = *guard;
        let (old, split) = self.insert_rec(root, key, value)?;
        if let Some((sep, right)) = split {
            let level = self.pool.with_page(root, |p| Node::new(p, self.key_size).level())?;
            let (new_root, ()) = self.pool.new_page_with(|p| {
                let mut n = NodeMut::init_internal(p, self.key_size, level + 1, root);
                let r = n.insert(&sep, right.0);
                debug_assert_eq!(r, InsertOutcome::Inserted);
            })?;
            *guard = new_root;
        }
        if let Some(old_value) = old {
            // Overwriting an existing pointer may strand a cached entry
            // for the old tuple id; a predicate flushes it lazily.
            self.inv.invalidate(key, old_value.wrapping_add(1));
        }
        Ok(old)
    }

    /// Recursive insert; returns `(old_value, Some((separator, new_right)))`
    /// when `page` split.
    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &self,
        page: PageId,
        key: &[u8],
        value: u64,
    ) -> Result<(Option<u64>, Option<(Vec<u8>, PageId)>)> {
        let is_leaf = self.pool.with_page(page, |p| Node::new(p, self.key_size).is_leaf())?;
        if is_leaf {
            let (outcome, old) = self.pool.with_page_mut(page, |p| {
                let mut n = NodeMut::new(p, self.key_size);
                let old = n.as_ref().search(key).ok().map(|i| n.as_ref().value_at(i));
                (n.insert(key, value), old)
            })?;
            if outcome != InsertOutcome::NeedSplit {
                return Ok((old, None));
            }
            let (sep, right) = self.split_page(page)?;
            let target = if key >= sep.as_slice() { right } else { page };
            let outcome = self
                .pool
                .with_page_mut(target, |p| NodeMut::new(p, self.key_size).insert(key, value))?;
            assert_ne!(outcome, InsertOutcome::NeedSplit, "post-split insert must fit");
            return Ok((None, Some((sep, right))));
        }
        let child = self.pool.with_page(page, |p| Node::new(p, self.key_size).child_for(key))?;
        let (old, child_split) = self.insert_rec(child, key, value)?;
        let Some((csep, cright)) = child_split else {
            return Ok((old, None));
        };
        let outcome = self
            .pool
            .with_page_mut(page, |p| NodeMut::new(p, self.key_size).insert(&csep, cright.0))?;
        if outcome != InsertOutcome::NeedSplit {
            return Ok((old, None));
        }
        let (sep, right) = self.split_page(page)?;
        let target = if csep.as_slice() >= sep.as_slice() { right } else { page };
        let outcome = self
            .pool
            .with_page_mut(target, |p| NodeMut::new(p, self.key_size).insert(&csep, cright.0))?;
        assert_ne!(outcome, InsertOutcome::NeedSplit, "post-split insert must fit");
        Ok((old, Some((sep, right))))
    }

    /// Splits `page` in half, returning `(separator, new_right_page)`.
    fn split_page(&self, page: PageId) -> Result<(Vec<u8>, PageId)> {
        let (entries, level, next) = self.pool.with_page(page, |p| {
            let n = Node::new(p, self.key_size);
            (n.entries(), n.level(), n.next_leaf())
        })?;
        let n = entries.len();
        debug_assert!(n >= 2, "cannot split a node with < 2 entries");
        let mid = n / 2;
        let is_leaf = level == 0;
        let (sep, left_entries, right_entries, right_leftmost) = if is_leaf {
            (entries[mid].0.clone(), &entries[..mid], &entries[mid..], None)
        } else {
            (entries[mid].0.clone(), &entries[..mid], &entries[mid + 1..], Some(entries[mid].1))
        };
        let (right, ()) = self.pool.new_page_with(|p| {
            let mut node = if is_leaf {
                NodeMut::init_leaf(p, self.key_size)
            } else {
                // nbb-lint: allow(unwrap, internal levels always carry a right-leftmost child)
                NodeMut::init_internal(p, self.key_size, level, PageId(right_leftmost.unwrap()))
            };
            for (k, v) in right_entries {
                let r = node.append_sorted(k, *v);
                debug_assert_eq!(r, InsertOutcome::Inserted);
            }
            if is_leaf {
                node.set_next_leaf(next);
            }
        })?;
        self.pool.with_page_mut(page, |p| {
            let mut node = NodeMut::new(p, self.key_size);
            node.rebuild_with(left_entries);
            if is_leaf {
                node.set_next_leaf(right);
            }
        })?;
        Ok((sep, right))
    }

    /// Removes `key`; returns its value if it was present. Thin wrapper
    /// over a one-key [`BTree::delete_many`].
    ///
    /// Underflowing nodes are left as-is (no merging) — the unused space
    /// this leaves behind is precisely what the index cache recycles.
    pub fn delete(&self, key: &[u8]) -> Result<Option<u64>> {
        let mut r = self.delete_many(&[key])?;
        // nbb-lint: allow(unwrap, delete_many returns one result per input key)
        Ok(r.pop().expect("one key in, one result out"))
    }

    /// Removes a batch of keys; results (each key's value if it was
    /// present) are indexed like `keys`.
    ///
    /// Same leaf grouping as [`BTree::insert_many`]. Deletes never
    /// restructure the tree (underflow is left for the index cache to
    /// recycle), so the whole batch runs under one shared
    /// structure-lock acquisition with no escalation — deleters on
    /// disjoint leaves proceed in parallel. Duplicate keys are
    /// permitted and idempotent: the first occurrence (in input order)
    /// removes the entry and later ones read as absent, matching the
    /// equivalent loop of single deletes.
    pub fn delete_many<K: AsRef<[u8]>>(&self, keys: &[K]) -> Result<Vec<Option<u64>>> {
        for k in keys {
            self.check_key(k.as_ref())?;
        }
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        self.wstats.batches.fetch_add(1, Ordering::Relaxed);
        self.wstats.keys.fetch_add(keys.len() as u64, Ordering::Relaxed);
        if let [key] = keys {
            // Batch of one (the `delete` wrapper's shape): same crab,
            // none of the batch bookkeeping allocations.
            let key = key.as_ref();
            let root = self.root.read();
            let leaf = self.find_leaf(*root, key)?;
            let _latch = self.latches.lock(leaf);
            self.wstats.leaf_groups.fetch_add(1, Ordering::Relaxed);
            let old =
                self.pool.with_page_mut(leaf, |p| NodeMut::new(p, self.key_size).delete(key))?;
            return Ok(vec![old]);
        }
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by(|&a, &b| keys[a].as_ref().cmp(keys[b].as_ref()));
        let mut out: Vec<Option<u64>> = vec![None; keys.len()];
        let mut i = 0;
        while i < order.len() {
            // Like insert_many's fast path, the read guard is released
            // every RUNS_PER_GUARD leaf runs so a huge batch cannot
            // monopolize the structure lock.
            let root = self.root.read();
            let mut runs = 0;
            while i < order.len() && runs < RUNS_PER_GUARD {
                runs += 1;
                let (leaf, run) = self.locate_run(*root, |pos| keys[pos].as_ref(), &order[i..])?;
                let _latch = self.latches.lock(leaf);
                self.wstats.leaf_groups.fetch_add(1, Ordering::Relaxed);
                let removed = self.pool.with_page_mut(leaf, |p| {
                    let mut n = NodeMut::new(p, self.key_size);
                    order[i..i + run]
                        .iter()
                        .map(|&pos| (pos, n.delete(keys[pos].as_ref())))
                        .collect::<Vec<_>>()
                })?;
                for (pos, old) in removed {
                    out[pos] = old;
                }
                i += run;
            }
        }
        Ok(out)
    }

    /// Updates the value of an existing key; returns false if absent.
    /// Logs an invalidation predicate for the old pointer.
    pub fn update_value(&self, key: &[u8], value: u64) -> Result<bool> {
        self.check_key(key)?;
        let root = self.root.read();
        let leaf = self.find_leaf(*root, key)?;
        let _latch = self.latches.lock(leaf);
        let old = self.pool.with_page_mut(leaf, |p| {
            let mut n = NodeMut::new(p, self.key_size);
            match n.as_ref().search(key) {
                Ok(i) => {
                    let old = n.as_ref().value_at(i);
                    let r = n.insert(key, value);
                    debug_assert_eq!(r, InsertOutcome::Updated);
                    Some(old)
                }
                Err(_) => None,
            }
        })?;
        if let Some(old) = old {
            self.inv.invalidate(key, old.wrapping_add(1));
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Visits `(key, value)` pairs in ascending key order starting at the
    /// first key ≥ `start`; stops when `f` returns false.
    pub fn scan_from(&self, start: &[u8], mut f: impl FnMut(&[u8], u64) -> bool) -> Result<()> {
        self.check_key(start)?;
        let root = self.root.read();
        let mut leaf = self.find_leaf(*root, start)?;
        let mut first_page = true;
        loop {
            let (cont, next) = self.pool.with_page(leaf, |p| {
                let n = Node::new(p, self.key_size);
                let from = if first_page {
                    match n.search(start) {
                        Ok(i) | Err(i) => i,
                    }
                } else {
                    0
                };
                for i in from..n.nkeys() {
                    if !f(n.key_at(i), n.value_at(i)) {
                        return (false, PageId::INVALID);
                    }
                }
                (true, n.next_leaf())
            })?;
            if !cont || !next.is_valid() {
                return Ok(());
            }
            first_page = false;
            leaf = next;
        }
    }

    /// Reads one ordered chunk of a range scan: the entries of the
    /// first leaf intersecting `(lower, upper)`, each probed against
    /// the leaf's §2.1 cache.
    ///
    /// The structure lock is held only for the duration of this call —
    /// a cursor that advances its lower bound past the last returned
    /// key between calls observes a consistent, ascending sequence even
    /// when leaves split mid-iteration, because each refill re-descends
    /// by *key*, never by a remembered sibling pointer.
    ///
    /// Leaves that contribute nothing (all keys below `lower`) are
    /// skipped via the sibling chain under the same lock acquisition.
    /// `exhausted` is true once `upper` was passed or the leaf chain
    /// ended. Cache hits are **not** promoted: a scan touching every
    /// entry carries no per-key popularity signal, so it must not churn
    /// the stable point that point lookups organize.
    pub fn range_chunk(&self, lower: Bound<&[u8]>, upper: Bound<&[u8]>) -> Result<RangeChunk> {
        for b in [&lower, &upper] {
            if let Bound::Included(k) | Bound::Excluded(k) = b {
                self.check_key(k)?;
            }
        }
        let cfg = self.opts.cache;
        let root = self.root.read();
        let mut leaf = match lower {
            Bound::Included(k) | Bound::Excluded(k) => self.find_leaf(*root, k)?,
            Bound::Unbounded => self.first_leaf_from(*root)?,
        };
        loop {
            let token = InvToken { csn: self.inv.csn(), newest_seq: self.inv.newest_seq() };
            struct Out {
                entries: Vec<RangeEntry>,
                verdict: Option<crate::invalidation::PageVerdict>,
                past_upper: bool,
                next: PageId,
            }
            let out = self.pool.with_page(leaf, |p| {
                let n = Node::new(p, self.key_size);
                let verdict = cfg.map(|_| {
                    let range = n.first_key().zip(n.last_key());
                    self.inv.check_page(n.csn(), n.log_watermark(), range)
                });
                let cache_valid = verdict.is_some_and(|v| v.cache_valid);
                let view = cfg
                    .as_ref()
                    .map(|c| CacheView::new_capped(p, self.key_size, c, self.cache_cap_bytes()));
                let from = match lower {
                    Bound::Included(k) => match n.search(k) {
                        Ok(i) | Err(i) => i,
                    },
                    Bound::Excluded(k) => match n.search(k) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    },
                    Bound::Unbounded => 0,
                };
                let mut entries = Vec::new();
                let mut past_upper = false;
                for i in from..n.nkeys() {
                    let key = n.key_at(i);
                    let in_range = match upper {
                        Bound::Included(u) => key <= u,
                        Bound::Excluded(u) => key < u,
                        Bound::Unbounded => true,
                    };
                    if !in_range {
                        past_upper = true;
                        break;
                    }
                    let value = n.value_at(i);
                    let payload = if cache_valid {
                        view.as_ref().and_then(|vw| {
                            vw.probe(Self::tuple_id(value)).map(|(_, pl)| pl.to_vec())
                        })
                    } else {
                        None
                    };
                    entries.push(RangeEntry { key: key.to_vec(), value, payload });
                }
                Out { entries, verdict, past_upper, next: n.next_leaf() }
            })?;
            if let Some(verdict) = &out.verdict {
                self.apply_verdict(leaf, verdict)?;
            }
            if !out.entries.is_empty() {
                let probed = out.entries.len() as u64;
                let hit = out.entries.iter().filter(|e| e.payload.is_some()).count() as u64;
                if cfg.is_some() {
                    self.stats.lookups.fetch_add(probed, Ordering::Relaxed);
                    self.stats.hits.fetch_add(hit, Ordering::Relaxed);
                    self.stats.misses.fetch_add(probed - hit, Ordering::Relaxed);
                }
                let exhausted = out.past_upper || !out.next.is_valid();
                return Ok(RangeChunk { entries: out.entries, leaf, token, exhausted });
            }
            if out.past_upper || !out.next.is_valid() {
                return Ok(RangeChunk { entries: Vec::new(), leaf, token, exhausted: true });
            }
            leaf = out.next;
        }
    }

    /// Collects up to `k` page ids worth prefetching for a scan that
    /// just consumed leaf `from` — the feeder for
    /// [`BufferPool::prefetch`]-driven cursor readahead.
    ///
    /// The walk follows the sibling chain through **already-resident**
    /// leaves only (each hop is a pool hit, zero I/O) until it meets the
    /// first non-resident leaf: that frontier page is the scan's next
    /// real fault, and the `k` ids returned are the frontier plus its
    /// physical successors. Extending by physical adjacency rather than
    /// chasing pointers is deliberate — reading a non-resident leaf to
    /// learn its successor would cost exactly the serial fault the
    /// readahead exists to avoid, while sequentially built trees (bulk
    /// load, ascending inserts) lay leaves out in allocation order, so
    /// adjacent ids are overwhelmingly the right guess. A wrong guess
    /// is cheap by construction: prefetched-untouched frames are the
    /// clock's first-choice victims.
    ///
    /// Returns an empty vec when `k == 0`, when the next `2k` chain
    /// hops are all resident (nothing to speculate about), or on any
    /// read error — speculation never surfaces failures.
    pub fn readahead_targets(&self, from: PageId, k: usize) -> Vec<PageId> {
        if k == 0 {
            return Vec::new();
        }
        // No structure lock: a concurrent split can at worst make the
        // guess stale, and stale speculation only costs a wasted frame.
        let num_pages = self.pool.disk().num_pages();
        let mut cur = from;
        for _ in 0..=(2 * k) {
            if !cur.is_valid() {
                return Vec::new();
            }
            if !self.pool.contains(cur) {
                return (0..k as u64)
                    .map(|i| PageId(cur.0 + i))
                    .filter(|p| p.0 < num_pages)
                    .collect();
            }
            let Ok(next) = self.pool.with_page(cur, |p| Node::new(p, self.key_size).next_leaf())
            else {
                return Vec::new();
            };
            cur = next;
        }
        Vec::new()
    }

    /// Number of keys in the tree (walks every leaf).
    pub fn len(&self) -> Result<usize> {
        let mut n = 0usize;
        self.for_each_leaf(|node| n += node.nkeys())?;
        Ok(n)
    }

    /// True when the tree holds no keys.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    // ---------------------------------------------------------------
    // Index cache protocol (§2.1)
    // ---------------------------------------------------------------

    /// Cache id for an index value: values are tuple pointers, and 0 is
    /// reserved for "empty slot", so ids are `value + 1`.
    #[inline]
    fn tuple_id(value: u64) -> u64 {
        value.wrapping_add(1)
    }

    /// Cache-aware point lookup. On a hit, `payload` carries the cached
    /// fields and the entry is promoted toward the stable point. On a
    /// miss, fetch the tuple from the heap and call
    /// [`BTree::cache_populate`] with the returned leaf and token.
    pub fn lookup_cached(&self, key: &[u8]) -> Result<CachedLookup> {
        self.check_key(key)?;
        let _root = self.root.read();
        let leaf = self.find_leaf(*_root, key)?;
        let token = InvToken { csn: self.inv.csn(), newest_seq: self.inv.newest_seq() };
        let Some(cfg) = self.opts.cache else {
            let value = self.pool.with_page(leaf, |p| {
                let n = Node::new(p, self.key_size);
                n.search(key).ok().map(|i| n.value_at(i))
            })?;
            return Ok(CachedLookup { value, payload: None, leaf, token });
        };

        struct ReadOut {
            value: Option<u64>,
            verdict: crate::invalidation::PageVerdict,
            probe: Option<(usize, Vec<u8>)>,
        }
        let out = self.pool.with_page(leaf, |p| {
            let n = Node::new(p, self.key_size);
            let value = n.search(key).ok().map(|i| n.value_at(i));
            let range = n.first_key().zip(n.last_key());
            let verdict = self.inv.check_page(n.csn(), n.log_watermark(), range);
            let probe = if verdict.cache_valid {
                value.and_then(|v| {
                    CacheView::new_capped(p, self.key_size, &cfg, self.cache_cap_bytes())
                        .probe(Self::tuple_id(v))
                        .map(|(slot, pl)| (slot, pl.to_vec()))
                })
            } else {
                None
            };
            ReadOut { value, verdict, probe }
        })?;

        self.apply_verdict(leaf, &out.verdict)?;

        if out.value.is_some() {
            self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        }
        if let Some((slot, payload)) = out.probe {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            // nbb-lint: allow(unwrap, a probe hit always carries its value)
            let value = out.value.expect("probe implies value");
            let promoted = self.pool.with_page_cache_write(leaf, |p| {
                let mut rng = self.rng.lock();
                let mut n = NodeMut::new(p, self.key_size);
                CacheViewMut::new_capped(n.page_mut(), self.key_size, &cfg, self.cache_cap_bytes())
                    .promote(slot, Self::tuple_id(value), &mut *rng)
                    .is_some()
            })?;
            match promoted {
                Some(true) => {
                    self.stats.promotions.fetch_add(1, Ordering::Relaxed);
                }
                Some(false) => {}
                None => {
                    self.stats.latch_giveups.fetch_add(1, Ordering::Relaxed);
                }
            }
            return Ok(CachedLookup { value: out.value, payload: Some(payload), leaf, token });
        }
        if out.value.is_some() {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        Ok(CachedLookup { value: out.value, payload: None, leaf, token })
    }

    /// Batched cache-aware point lookup; results are indexed like
    /// `keys`.
    ///
    /// Like [`BTree::get_many`], the batch shares one structure-lock
    /// acquisition and one page visit per distinct leaf — and on top of
    /// that, cache work is amortized per leaf instead of per key: the
    /// invalidation verdict is checked once per leaf, and every cache
    /// hit in a leaf is promoted under a **single** try-latch
    /// acquisition (N hot hits in one leaf cost one latch round-trip,
    /// not N).
    ///
    /// Each returned [`CachedLookup`] is populate-ready: misses carry
    /// the owning leaf and a consistency token for
    /// [`BTree::cache_populate`], exactly as the single-key path does.
    pub fn lookup_cached_many<K: AsRef<[u8]>>(&self, keys: &[K]) -> Result<Vec<CachedLookup>> {
        for k in keys {
            self.check_key(k.as_ref())?;
        }
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by(|&a, &b| keys[a].as_ref().cmp(keys[b].as_ref()));
        let mut out: Vec<Option<CachedLookup>> = (0..keys.len()).map(|_| None).collect();
        let cfg = self.opts.cache;
        let root = self.root.read();
        let mut i = 0;
        while i < order.len() {
            let token = InvToken { csn: self.inv.csn(), newest_seq: self.inv.newest_seq() };
            let leaf = self.find_leaf(*root, keys[order[i]].as_ref())?;

            /// One batch key resolved in the leaf, with its cache probe.
            struct Found {
                pos: usize,
                value: u64,
                probe: Option<(usize, Vec<u8>)>,
            }
            struct Group {
                consumed: usize,
                found: Vec<Found>,
                absent: Vec<usize>,
                verdict: Option<crate::invalidation::PageVerdict>,
            }
            let g = self.pool.with_page(leaf, |p| {
                let n = Node::new(p, self.key_size);
                let verdict = cfg.map(|_| {
                    let range = n.first_key().zip(n.last_key());
                    self.inv.check_page(n.csn(), n.log_watermark(), range)
                });
                let cache_valid = verdict.is_some_and(|v| v.cache_valid);
                let view = cfg
                    .as_ref()
                    .map(|c| CacheView::new_capped(p, self.key_size, c, self.cache_cap_bytes()));
                let mut g = Group { consumed: 0, found: Vec::new(), absent: Vec::new(), verdict };
                while i + g.consumed < order.len() {
                    let pos = order[i + g.consumed];
                    match n.search(keys[pos].as_ref()) {
                        Ok(j) => {
                            let v = n.value_at(j);
                            let probe = if cache_valid {
                                view.as_ref().and_then(|vw| {
                                    vw.probe(Self::tuple_id(v)).map(|(s, pl)| (s, pl.to_vec()))
                                })
                            } else {
                                None
                            };
                            g.found.push(Found { pos, value: v, probe });
                        }
                        Err(j) if j >= n.nkeys() => {
                            if g.consumed == 0 {
                                g.absent.push(pos);
                                g.consumed = 1;
                            }
                            break;
                        }
                        Err(_) => g.absent.push(pos),
                    }
                    g.consumed += 1;
                }
                g
            })?;

            if let Some(verdict) = &g.verdict {
                self.apply_verdict(leaf, verdict)?;
            }

            let hits: Vec<(usize, u64)> = g
                .found
                .iter()
                .filter_map(|f| f.probe.as_ref().map(|(slot, _)| (*slot, f.value)))
                .collect();
            // Stats only meter the cache protocol: a cache-less tree
            // records nothing, matching the single-key path.
            if cfg.is_some() {
                self.stats.lookups.fetch_add(g.found.len() as u64, Ordering::Relaxed);
                self.stats.hits.fetch_add(hits.len() as u64, Ordering::Relaxed);
                self.stats.misses.fetch_add((g.found.len() - hits.len()) as u64, Ordering::Relaxed);
            }
            if !hits.is_empty() {
                // All of this leaf's promotions ride one latch attempt.
                let promoted = self.pool.with_page_cache_write(leaf, |p| {
                    // nbb-lint: allow(unwrap, hits are only collected when a cache config exists)
                    let cfg = cfg.as_ref().expect("hits imply cache config");
                    let mut rng = self.rng.lock();
                    let mut n = NodeMut::new(p, self.key_size);
                    let mut done = 0u64;
                    for (slot, v) in &hits {
                        // promote re-verifies the slot still holds the
                        // entry, so earlier swaps cannot misdirect it.
                        if CacheViewMut::new_capped(
                            n.page_mut(),
                            self.key_size,
                            cfg,
                            self.cache_cap_bytes(),
                        )
                        .promote(*slot, Self::tuple_id(*v), &mut *rng)
                        .is_some()
                        {
                            done += 1;
                        }
                    }
                    done
                })?;
                match promoted {
                    Some(done) => {
                        self.stats.promotions.fetch_add(done, Ordering::Relaxed);
                    }
                    None => {
                        self.stats.latch_giveups.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }

            for f in g.found {
                out[f.pos] = Some(CachedLookup {
                    value: Some(f.value),
                    payload: f.probe.map(|(_, pl)| pl),
                    leaf,
                    token,
                });
            }
            for pos in g.absent {
                out[pos] = Some(CachedLookup { value: None, payload: None, leaf, token });
            }
            i += g.consumed;
        }
        // nbb-lint: allow(unwrap, the group loop visits every key exactly once)
        Ok(out.into_iter().map(|c| c.expect("every key visited")).collect())
    }

    /// Performs the cache bookkeeping a leaf-read verdict demands:
    /// zeroes the page cache on a predicate match, and advances the
    /// predicate-log watermark so pending entries are not rescanned.
    /// Both writes use the non-dirtying try-latch path and are simply
    /// skipped under contention (§2.1.3).
    fn apply_verdict(
        &self,
        leaf: PageId,
        verdict: &crate::invalidation::PageVerdict,
    ) -> Result<()> {
        let Some(cfg) = self.opts.cache else { return Ok(()) };
        if verdict.must_zero {
            self.stats.zeroings.fetch_add(1, Ordering::Relaxed);
            let wm = verdict.advance_watermark_to;
            let wrote = self.pool.with_page_cache_write(leaf, |p| {
                let mut n = NodeMut::new(p, self.key_size);
                if let Some(wm) = wm {
                    if wm > n.as_ref().log_watermark() {
                        n.set_log_watermark(wm);
                    }
                }
                CacheViewMut::new_capped(n.page_mut(), self.key_size, &cfg, self.cache_cap_bytes())
                    .zero();
            })?;
            if wrote.is_none() {
                self.stats.latch_giveups.fetch_add(1, Ordering::Relaxed);
            }
        } else if let Some(wm) = verdict.advance_watermark_to {
            let wrote = self.pool.with_page_cache_write(leaf, |p| {
                let mut n = NodeMut::new(p, self.key_size);
                if wm > n.as_ref().log_watermark() {
                    n.set_log_watermark(wm);
                }
            })?;
            if wrote.is_none() {
                self.stats.latch_giveups.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Stores the payload fetched from the heap after a cache miss.
    ///
    /// `leaf`, `value` and `token` come from the preceding
    /// [`BTree::lookup_cached`]. The store is skipped (returning `false`)
    /// if any invalidation occurred since the token was issued, if the
    /// latch is contended, or if the leaf has no cache room.
    pub fn cache_populate(
        &self,
        leaf: PageId,
        value: u64,
        payload: &[u8],
        token: InvToken,
    ) -> Result<bool> {
        let Some(cfg) = self.opts.cache else { return Ok(false) };
        if payload.len() != cfg.payload_size {
            return Err(StorageError::Corrupt(format!(
                "cache payload width {} != configured {}",
                payload.len(),
                cfg.payload_size
            )));
        }
        let _root = self.root.read();
        // Any invalidation after the token means the heap read may be
        // stale; skip rather than risk caching old bytes.
        if self.inv.csn() != token.csn || self.inv.newest_seq() != token.newest_seq {
            self.stats.stale_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(false);
        }
        let stored = self.pool.with_page_cache_write(leaf, |p| {
            // Re-check the token under the latch: invalidations serialize
            // with this closure via the predicate log's own lock, and the
            // page cannot be probed while we hold the write latch.
            if self.inv.csn() != token.csn || self.inv.newest_seq() != token.newest_seq {
                return StoreOutcome::NoRoom;
            }
            let mut n = NodeMut::new(p, self.key_size);
            if !n.as_ref().is_leaf() {
                return StoreOutcome::NoRoom;
            }
            if n.as_ref().csn() != token.csn {
                // Stale epoch: lazily reset this page's cache.
                let wm = self.inv.newest_seq();
                n.set_csn(token.csn);
                n.set_log_watermark(wm);
                CacheViewMut::new_capped(n.page_mut(), self.key_size, &cfg, self.cache_cap_bytes())
                    .zero();
            }
            let mut rng = self.rng.lock();
            CacheViewMut::new_capped(n.page_mut(), self.key_size, &cfg, self.cache_cap_bytes())
                .store(Self::tuple_id(value), payload, &mut *rng)
        })?;
        match stored {
            Some(StoreOutcome::Stored) => {
                self.stats.populates.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Some(StoreOutcome::StoredEvicting) => {
                self.stats.populates.fetch_add(1, Ordering::Relaxed);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Some(StoreOutcome::NoRoom) => Ok(false),
            None => {
                self.stats.latch_giveups.fetch_add(1, Ordering::Relaxed);
                Ok(false)
            }
        }
    }

    /// Logs an invalidation for a tuple whose cached fields changed in
    /// the heap (§2.1.2). `value` is the index pointer for `key`.
    pub fn invalidate(&self, key: &[u8], value: u64) -> Result<InvalidateOutcome> {
        self.check_key(key)?;
        Ok(self.inv.invalidate(key, Self::tuple_id(value)))
    }

    /// Invalidates every page cache at once (`CSNidx += 1`) — the crash
    /// recovery path.
    pub fn invalidate_all_caches(&self) {
        self.inv.invalidate_all();
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.stats.lookups.load(Ordering::Relaxed),
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            populates: self.stats.populates.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            promotions: self.stats.promotions.load(Ordering::Relaxed),
            latch_giveups: self.stats.latch_giveups.load(Ordering::Relaxed),
            zeroings: self.stats.zeroings.load(Ordering::Relaxed),
            stale_skips: self.stats.stale_skips.load(Ordering::Relaxed),
        }
    }

    /// Write-path counters (batches, keys, leaf groups, escalations,
    /// and the intent table's same-key contention).
    pub fn write_stats(&self) -> WriteStats {
        WriteStats {
            batches: self.wstats.batches.load(Ordering::Relaxed),
            keys: self.wstats.keys.load(Ordering::Relaxed),
            leaf_groups: self.wstats.leaf_groups.load(Ordering::Relaxed),
            escalations: self.wstats.escalations.load(Ordering::Relaxed),
            intent_parks: self.intents.parks(),
            intent_handoffs: self.intents.handoffs(),
        }
    }

    /// The tree's key-level write-intent table.
    ///
    /// Logical writers layered above the tree (the table's
    /// put/update/delete paths) install an intent on every key they
    /// address — via [`KeyIntents::acquire_many`], *before* any page is
    /// touched — so racing same-key writers serialize by parking on the
    /// in-flight intent with a pre-granted handoff. Readers never touch
    /// this table; disjoint-key writers pass through a stripe-map
    /// lookup and nothing more. Intents rank strictly before tree and
    /// pool locks in the lattice (`CONCURRENCY.md`), so holding one
    /// across a tree operation is deadlock-free.
    pub fn intents(&self) -> &KeyIntents {
        &self.intents
    }

    // ---------------------------------------------------------------
    // Introspection
    // ---------------------------------------------------------------

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> Result<usize> {
        let root = self.root.read();
        let mut h = 1;
        let mut cur = *root;
        loop {
            let next = self.pool.with_page(cur, |p| {
                let n = Node::new(p, self.key_size);
                if n.is_leaf() {
                    None
                } else {
                    Some(n.leftmost_child())
                }
            })?;
            match next {
                Some(c) => {
                    h += 1;
                    cur = c;
                }
                None => return Ok(h),
            }
        }
    }

    /// Leftmost leaf page.
    pub fn first_leaf(&self) -> Result<PageId> {
        let root = self.root.read();
        self.first_leaf_from(*root)
    }

    /// Leftmost-leaf descent; the caller holds the structure lock.
    fn first_leaf_from(&self, root: PageId) -> Result<PageId> {
        let mut cur = root;
        loop {
            let next = self.pool.with_page(cur, |p| {
                let n = Node::new(p, self.key_size);
                if n.is_leaf() {
                    None
                } else {
                    Some(n.leftmost_child())
                }
            })?;
            match next {
                Some(c) => cur = c,
                None => return Ok(cur),
            }
        }
    }

    /// Visits every leaf under the structure lock's read side.
    fn for_each_leaf(&self, f: impl FnMut(Node<'_>)) -> Result<()> {
        let root = self.root.read();
        self.for_each_leaf_from(*root, f)
    }

    /// Leaf-chain walk; the caller holds the structure lock.
    fn for_each_leaf_from(&self, root: PageId, mut f: impl FnMut(Node<'_>)) -> Result<()> {
        let mut leaf = self.first_leaf_from(root)?;
        loop {
            let next = self.pool.with_page(leaf, |p| {
                let n = Node::new(p, self.key_size);
                f(n);
                n.next_leaf()
            })?;
            if !next.is_valid() {
                return Ok(());
            }
            leaf = next;
        }
    }

    /// Aggregate index statistics: leaves, total keys, mean fill factor,
    /// total/occupied cache slots.
    pub fn index_stats(&self) -> Result<IndexStats> {
        let mut s = IndexStats::default();
        let cfg = self.opts.cache;
        let cap_bytes = self.cache_cap_bytes();
        self.for_each_leaf(|n| {
            s.leaf_pages += 1;
            s.keys += n.nkeys();
            s.fill_sum += n.fill_factor();
            s.free_bytes += n.free_bytes();
            if let Some(cfg) = cfg.as_ref() {
                let v = CacheView::new_from_node_capped(&n, cfg, cap_bytes);
                s.cache_slots += v.capacity();
                s.cache_occupied += v.occupied();
            }
        })?;
        Ok(s)
    }

    /// Verifies structural invariants; returns a description of the first
    /// violation. Intended for tests.
    pub fn check_invariants(&self) -> Result<std::result::Result<(), String>> {
        let guard = self.root.read();
        let root = *guard;
        let mut leaf_depth: Option<usize> = None;
        let r = self.check_node(root, None, None, 0, &mut leaf_depth)?;
        if r.is_err() {
            return Ok(r);
        }
        // Leaf chain must be ascending and cover all leaves.
        let mut prev_last: Option<Vec<u8>> = None;
        let mut chain_ok = Ok(());
        self.for_each_leaf_from(root, |n| {
            if chain_ok.is_err() {
                return;
            }
            if let (Some(prev), Some(first)) = (&prev_last, n.first_key()) {
                if prev.as_slice() >= first {
                    chain_ok = Err(format!("leaf chain out of order: {:?} >= {:?}", prev, first));
                }
            }
            if let Some(last) = n.last_key() {
                prev_last = Some(last.to_vec());
            }
        })?;
        Ok(chain_ok)
    }

    #[allow(clippy::type_complexity)]
    fn check_node(
        &self,
        page: PageId,
        lower: Option<&[u8]>,
        upper: Option<&[u8]>,
        depth: usize,
        leaf_depth: &mut Option<usize>,
    ) -> Result<std::result::Result<(), String>> {
        let (entries, is_leaf, leftmost) = self.pool.with_page(page, |p| {
            let n = Node::new(p, self.key_size);
            let lm = if n.is_leaf() { None } else { Some(n.leftmost_child()) };
            (n.entries(), n.is_leaf(), lm)
        })?;
        for w in entries.windows(2) {
            if w[0].0 >= w[1].0 {
                return Ok(Err(format!("{page}: keys not strictly ascending")));
            }
        }
        if let Some(lo) = lower {
            if let Some((k, _)) = entries.first() {
                if k.as_slice() < lo {
                    return Ok(Err(format!("{page}: key below lower bound")));
                }
            }
        }
        if let Some(hi) = upper {
            if let Some((k, _)) = entries.last() {
                if k.as_slice() >= hi {
                    return Ok(Err(format!("{page}: key at/above upper bound")));
                }
            }
        }
        if is_leaf {
            match leaf_depth {
                Some(d) if *d != depth => {
                    return Ok(Err(format!("{page}: leaf depth {depth} != {d}")))
                }
                None => *leaf_depth = Some(depth),
                _ => {}
            }
            return Ok(Ok(()));
        }
        // Internal: recurse with refined bounds.
        // nbb-lint: allow(unwrap, internal nodes always store a leftmost child)
        let lm = leftmost.expect("internal node has leftmost");
        let first_sep = entries.first().map(|(k, _)| k.as_slice());
        let r = self.check_node(lm, lower, first_sep, depth + 1, leaf_depth)?;
        if r.is_err() {
            return Ok(r);
        }
        for (i, (sep, child)) in entries.iter().enumerate() {
            let next_sep = entries.get(i + 1).map(|(k, _)| k.as_slice());
            let r = self.check_node(
                PageId(*child),
                Some(sep.as_slice()),
                next_sep,
                depth + 1,
                leaf_depth,
            )?;
            if r.is_err() {
                return Ok(r);
            }
        }
        Ok(Ok(()))
    }
}

/// Aggregate statistics over a tree's leaves.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexStats {
    /// Number of leaf pages.
    pub leaf_pages: usize,
    /// Total keys across leaves.
    pub keys: usize,
    /// Sum of per-leaf fill factors (divide by `leaf_pages` for the mean).
    pub fill_sum: f64,
    /// Total free bytes across leaves — the recyclable cache area.
    pub free_bytes: usize,
    /// Total usable cache slots.
    pub cache_slots: usize,
    /// Occupied cache slots.
    pub cache_occupied: usize,
}

impl IndexStats {
    /// Mean leaf fill factor.
    pub fn avg_fill(&self) -> f64 {
        if self.leaf_pages == 0 {
            0.0
        } else {
            self.fill_sum / self.leaf_pages as f64
        }
    }
}

impl<'a> CacheView<'a> {
    /// Builds a cache view from an existing node view (avoids re-parsing
    /// the header in aggregate walks).
    pub fn new_from_node(node: &Node<'a>, cfg: &CacheConfig) -> Self {
        CacheView::new(node.page(), node.key_size_of(), cfg)
    }

    /// [`CacheView::new_from_node`] with a cache-space cap (see
    /// [`CacheView::new_capped`]).
    pub fn new_from_node_capped(node: &Node<'a>, cfg: &CacheConfig, cap_bytes: usize) -> Self {
        CacheView::new_capped(node.page(), node.key_size_of(), cfg, cap_bytes)
    }
}
