//! Covering-index baseline (§2.1): the alternative the paper argues
//! against.
//!
//! A covering index appends the projected fields to every entry so
//! queries never touch the heap — at the cost of storing *cold* tuples'
//! fields too, bloating the index. Here the covered fields are appended
//! to the key bytes (they ride along in every node, which is precisely
//! the paper's space complaint), and lookups match on the search-key
//! prefix via a short range scan.
//!
//! `nbb-bench/ablations` compares this baseline against the index cache
//! on identical workloads: equal read paths, very different memory
//! footprints.

use crate::tree::{BTree, BTreeOptions};
use nbb_storage::buffer::BufferPool;
use nbb_storage::error::Result;
use std::sync::Arc;

/// A B+Tree whose entries carry `field_size` bytes of covered columns
/// after the `key_size`-byte search key.
pub struct CoveringIndex {
    tree: BTree,
    key_size: usize,
    field_size: usize,
}

impl CoveringIndex {
    /// Creates an empty covering index.
    pub fn create(pool: Arc<BufferPool>, key_size: usize, field_size: usize) -> Result<Self> {
        assert!(field_size > 0, "covering index needs covered fields");
        let tree = BTree::create(pool, key_size + field_size, BTreeOptions::default())?;
        Ok(CoveringIndex { tree, key_size, field_size })
    }

    /// Bulk-loads from ascending `(key, fields, value)` triples at `fill`.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        key_size: usize,
        field_size: usize,
        entries: impl IntoIterator<Item = (Vec<u8>, Vec<u8>, u64)>,
        fill: f64,
    ) -> Result<Self> {
        assert!(field_size > 0, "covering index needs covered fields");
        let composite = entries.into_iter().map(|(key, fields, value)| {
            assert_eq!(key.len(), key_size);
            assert_eq!(fields.len(), field_size);
            let mut k = key;
            k.extend_from_slice(&fields);
            (k, value)
        });
        let tree = BTree::bulk_load(
            pool,
            key_size + field_size,
            BTreeOptions::default(),
            composite,
            fill,
        )?;
        Ok(CoveringIndex { tree, key_size, field_size })
    }

    /// Inserts `key` with its covered `fields` and `value`.
    pub fn insert(&self, key: &[u8], fields: &[u8], value: u64) -> Result<()> {
        debug_assert_eq!(key.len(), self.key_size);
        debug_assert_eq!(fields.len(), self.field_size);
        let mut k = Vec::with_capacity(self.key_size + self.field_size);
        k.extend_from_slice(key);
        k.extend_from_slice(fields);
        self.tree.insert(&k, value)?;
        Ok(())
    }

    /// Index-only lookup: returns `(covered fields, value)` for the first
    /// entry whose search-key prefix equals `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<(Vec<u8>, u64)>> {
        debug_assert_eq!(key.len(), self.key_size);
        let mut probe = vec![0u8; self.key_size + self.field_size];
        probe[..self.key_size].copy_from_slice(key);
        let mut found = None;
        self.tree.scan_from(&probe, |k, v| {
            if &k[..self.key_size] == key {
                found = Some((k[self.key_size..].to_vec(), v));
            }
            false // the first entry >= probe decides; never continue
        })?;
        Ok(found)
    }

    /// Deletes the entry for `key` (first matching prefix).
    pub fn delete(&self, key: &[u8]) -> Result<bool> {
        let Some((fields, _)) = self.get(key)? else { return Ok(false) };
        let mut k = Vec::with_capacity(self.key_size + self.field_size);
        k.extend_from_slice(key);
        k.extend_from_slice(&fields);
        Ok(self.tree.delete(&k)?.is_some())
    }

    /// The underlying tree, for stats (leaf pages, fill, memory).
    pub fn tree(&self) -> &BTree {
        &self.tree
    }

    /// Bytes of entry space attributable to covered (non-key) fields —
    /// the bloat the paper quantifies.
    pub fn covered_bytes(&self) -> Result<usize> {
        Ok(self.tree.index_stats()?.keys * self.field_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbb_storage::disk::{DiskManager, InMemoryDisk};

    fn pool() -> Arc<BufferPool> {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        Arc::new(BufferPool::new(disk, 64))
    }

    #[test]
    fn insert_and_covered_get() {
        let ci = CoveringIndex::create(pool(), 8, 4).unwrap();
        ci.insert(&7u64.to_be_bytes(), b"abcd", 70).unwrap();
        ci.insert(&9u64.to_be_bytes(), b"wxyz", 90).unwrap();
        let (fields, v) = ci.get(&7u64.to_be_bytes()).unwrap().unwrap();
        assert_eq!(fields, b"abcd");
        assert_eq!(v, 70);
        assert!(ci.get(&8u64.to_be_bytes()).unwrap().is_none());
    }

    #[test]
    fn bulk_load_and_lookup_many() {
        let entries = (0..500u64).map(|i| (i.to_be_bytes().to_vec(), vec![i as u8; 16], i * 2));
        let ci = CoveringIndex::bulk_load(pool(), 8, 16, entries, 0.68).unwrap();
        for i in (0..500u64).step_by(37) {
            let (fields, v) = ci.get(&i.to_be_bytes()).unwrap().unwrap();
            assert_eq!(fields, vec![i as u8; 16]);
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn delete_removes_entry() {
        let ci = CoveringIndex::create(pool(), 8, 4).unwrap();
        ci.insert(&1u64.to_be_bytes(), b"aaaa", 1).unwrap();
        assert!(ci.delete(&1u64.to_be_bytes()).unwrap());
        assert!(ci.get(&1u64.to_be_bytes()).unwrap().is_none());
        assert!(!ci.delete(&1u64.to_be_bytes()).unwrap());
    }

    #[test]
    fn covering_bloats_index_relative_to_plain() {
        use crate::tree::BTreeOptions;
        // Same 1000 keys; covering index carries 24 extra bytes per entry.
        let p1 = pool();
        let plain = BTree::bulk_load(
            Arc::clone(&p1),
            8,
            BTreeOptions::default(),
            (0..1000u64).map(|i| (i.to_be_bytes().to_vec(), i)),
            0.68,
        )
        .unwrap();
        let ci = CoveringIndex::bulk_load(
            pool(),
            8,
            24,
            (0..1000u64).map(|i| (i.to_be_bytes().to_vec(), vec![0u8; 24], i)),
            0.68,
        )
        .unwrap();
        let plain_pages = plain.index_stats().unwrap().leaf_pages;
        let covering_pages = ci.tree().index_stats().unwrap().leaf_pages;
        assert!(
            covering_pages > plain_pages * 2,
            "covering {covering_pages} pages vs plain {plain_pages}"
        );
    }
}
