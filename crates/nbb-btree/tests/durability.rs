//! Restart tests: trees persisted to a (file or memory) disk survive a
//! full tear-down of all in-memory state, and reopened trees start a
//! fresh CSN epoch so stale on-disk cache bytes are never served.

use nbb_btree::{BTree, BTreeOptions, CacheConfig};
use nbb_storage::{BufferPool, DiskManager, FileDisk, InMemoryDisk};
use std::sync::Arc;

fn k(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

fn cached_opts() -> BTreeOptions {
    BTreeOptions {
        cache: Some(CacheConfig { payload_size: 8, bucket_slots: 8, log_threshold: 32 }),
        cache_seed: 17,
        ..Default::default()
    }
}

fn restart_round_trip(disk: Arc<dyn DiskManager>) {
    let n = 3_000u64;
    let root;
    {
        // First incarnation: build, warm caches, flush, drop everything.
        let pool = Arc::new(BufferPool::new(Arc::clone(&disk), 64));
        let tree = BTree::create(Arc::clone(&pool), 8, cached_opts()).unwrap();
        for i in 0..n {
            tree.insert(&k(i), i * 3).unwrap();
        }
        for i in (0..n).step_by(5) {
            let m = tree.lookup_cached(&k(i)).unwrap();
            tree.cache_populate(m.leaf, i * 3, &(i * 3).to_le_bytes(), m.token).unwrap();
        }
        root = tree.root_page();
        pool.flush_all().unwrap();
    } // pool + tree dropped: all in-memory state gone

    // Second incarnation: reopen from the catalog (root id).
    let pool = Arc::new(BufferPool::new(Arc::clone(&disk), 64));
    let tree = BTree::open(pool, 8, root, cached_opts()).unwrap();
    tree.check_invariants().unwrap().unwrap();
    assert_eq!(tree.len().unwrap(), n as usize);
    for i in (0..n).step_by(97) {
        assert_eq!(tree.get(&k(i)).unwrap(), Some(i * 3), "key {i} after restart");
    }
    // Stale on-disk cache bytes must not be served: the first cached
    // lookup after restart misses even for previously-cached keys.
    let m = tree.lookup_cached(&k(0)).unwrap();
    assert_eq!(m.value, Some(0));
    assert!(m.payload.is_none(), "restart must invalidate persisted caches");
    // And the cache works again after repopulation.
    tree.cache_populate(m.leaf, 0, &0u64.to_le_bytes(), m.token).unwrap();
    assert!(tree.lookup_cached(&k(0)).unwrap().payload.is_some());
}

#[test]
fn restart_from_in_memory_disk() {
    restart_round_trip(Arc::new(InMemoryDisk::new(4096)));
}

#[test]
fn restart_from_real_file() {
    let dir = std::env::temp_dir().join(format!("nbb_durability_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tree.db");
    restart_round_trip(Arc::new(FileDisk::create(&path, 4096).unwrap()));
    std::fs::remove_file(&path).ok();
}

#[test]
fn reopened_epoch_outruns_persisted_csn() {
    // Crank CSNp values high in the first incarnation (many full
    // invalidations), then reopen and verify no false validation.
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    let root;
    {
        let pool = Arc::new(BufferPool::new(Arc::clone(&disk), 64));
        let tree = BTree::create(Arc::clone(&pool), 8, cached_opts()).unwrap();
        for i in 0..100u64 {
            tree.insert(&k(i), i).unwrap();
        }
        // Inflate the epoch, then stamp pages at the high epoch by
        // populating (populate re-stamps CSNp lazily).
        for _ in 0..50 {
            tree.invalidate_all_caches();
        }
        for i in 0..100u64 {
            let m = tree.lookup_cached(&k(i)).unwrap();
            tree.cache_populate(m.leaf, i, &[0xEE; 8], m.token).unwrap();
        }
        // Dirty the pages so CSNp + cache bytes persist, then flush.
        for i in 100..110u64 {
            tree.insert(&k(i), i).unwrap();
        }
        root = tree.root_page();
        pool.flush_all().unwrap();
    }
    let pool = Arc::new(BufferPool::new(Arc::clone(&disk), 64));
    let tree = BTree::open(pool, 8, root, cached_opts()).unwrap();
    for i in 0..100u64 {
        let m = tree.lookup_cached(&k(i)).unwrap();
        assert!(
            m.payload.is_none(),
            "persisted cache bytes false-validated for key {i} (epoch collision)"
        );
    }
}

#[test]
fn open_rejects_garbage_root() {
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    let pool = Arc::new(BufferPool::new(disk, 8));
    // Allocate an uninitialized page: not a node.
    let pid = pool.new_page().unwrap();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        BTree::open(pool, 8, pid, BTreeOptions::default())
    }));
    // Either an error or a debug-assert panic is acceptable; never a
    // silently-working tree.
    if let Ok(Ok(tree)) = r {
        // If it opened (release mode skips the debug assert), any use
        // must fail loudly rather than fabricate data.
        let use_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tree.get(&k(1)).map(|v| v.is_none())
        }));
        if let Ok(Ok(none)) = use_result {
            assert!(none, "garbage root must not return values");
        } // error or panic: fine
    } // error or panic at open: fine
}
