//! Property tests for the order-preserving key codecs: memcmp order on
//! encoded bytes must equal natural order on values, for all values.

use nbb_btree::key::{
    decode_i64, decode_str, decode_u32, decode_u64, encode_i64, encode_str, encode_u32, encode_u64,
    CompositeKey,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn u64_order(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(a.cmp(&b), encode_u64(a).cmp(&encode_u64(b)));
        prop_assert_eq!(decode_u64(&encode_u64(a)), a);
    }

    #[test]
    fn u32_order(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(a.cmp(&b), encode_u32(a).cmp(&encode_u32(b)));
        prop_assert_eq!(decode_u32(&encode_u32(a)), a);
    }

    #[test]
    fn i64_order(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(a.cmp(&b), encode_i64(a).cmp(&encode_i64(b)));
        prop_assert_eq!(decode_i64(&encode_i64(a)), a);
    }

    #[test]
    fn str_order_matches_for_unpadded(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        // For strings within the width, zero padding preserves order.
        let (ea, eb) = (encode_str(&a, 16), encode_str(&b, 16));
        prop_assert_eq!(a.cmp(&b), ea.cmp(&eb), "{:?} vs {:?}", a, b);
        prop_assert_eq!(decode_str(&ea), a);
    }

    #[test]
    fn composite_component_order(
        ns_a in 0u32..16, ns_b in 0u32..16,
        t_a in "[a-z]{1,8}", t_b in "[a-z]{1,8}",
    ) {
        let ka = CompositeKey::new().u32(ns_a).str(&t_a, 12).finish();
        let kb = CompositeKey::new().u32(ns_b).str(&t_b, 12).finish();
        let expect = (ns_a, t_a.clone()).cmp(&(ns_b, t_b.clone()));
        prop_assert_eq!(expect, ka.cmp(&kb));
    }

    #[test]
    fn encoded_width_is_constant(s in ".{0,40}", w in 1usize..64) {
        prop_assert_eq!(encode_str(&s, w).len(), w);
    }
}
