//! Integration tests for the B+Tree: structure, scans, bulk load, and
//! the full §2.1 index-cache protocol.

use nbb_btree::{BTree, BTreeOptions, CacheConfig};
use nbb_storage::{BufferPool, DiskManager, DiskModel, InMemoryDisk, SimulatedDisk};
use std::sync::Arc;

fn pool_with(page_size: usize, frames: usize) -> Arc<BufferPool> {
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(page_size));
    Arc::new(BufferPool::new(disk, frames))
}

fn pool() -> Arc<BufferPool> {
    pool_with(4096, 256)
}

fn k(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

fn cached_opts(payload: usize) -> BTreeOptions {
    BTreeOptions {
        cache: Some(CacheConfig { payload_size: payload, bucket_slots: 8, log_threshold: 32 }),
        cache_seed: 7,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// Structure
// ---------------------------------------------------------------------

#[test]
fn insert_search_thousands_with_splits() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    let n = 5000u64;
    // Insert in a scrambled order to exercise mid-node inserts.
    let mut order: Vec<u64> = (0..n).collect();
    let mut x = 0xDEADBEEFu64;
    for i in (1..order.len()).rev() {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        order.swap(i, (x % (i as u64 + 1)) as usize);
    }
    for v in &order {
        tree.insert(&k(*v), v * 3).unwrap();
    }
    assert!(tree.height().unwrap() >= 2, "5000 keys must split the root");
    tree.check_invariants().unwrap().unwrap();
    for v in 0..n {
        assert_eq!(tree.get(&k(v)).unwrap(), Some(v * 3), "key {v}");
    }
    assert_eq!(tree.get(&k(n + 1)).unwrap(), None);
    assert_eq!(tree.len().unwrap(), n as usize);
}

#[test]
fn overwrite_returns_old_value() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    assert_eq!(tree.insert(&k(1), 10).unwrap(), None);
    assert_eq!(tree.insert(&k(1), 20).unwrap(), Some(10));
    assert_eq!(tree.get(&k(1)).unwrap(), Some(20));
    assert_eq!(tree.len().unwrap(), 1);
}

#[test]
fn delete_then_reinsert() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    for v in 0..1000 {
        tree.insert(&k(v), v).unwrap();
    }
    for v in (0..1000).step_by(3) {
        assert_eq!(tree.delete(&k(v)).unwrap(), Some(v), "delete {v}");
    }
    for v in 0..1000 {
        let expect = if v % 3 == 0 { None } else { Some(v) };
        assert_eq!(tree.get(&k(v)).unwrap(), expect, "get {v}");
    }
    for v in (0..1000).step_by(3) {
        tree.insert(&k(v), v + 7).unwrap();
    }
    for v in (0..1000).step_by(3) {
        assert_eq!(tree.get(&k(v)).unwrap(), Some(v + 7));
    }
    tree.check_invariants().unwrap().unwrap();
}

#[test]
fn scan_from_walks_in_order_across_leaves() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    for v in (0..2000u64).rev() {
        tree.insert(&k(v), v).unwrap();
    }
    let mut seen = Vec::new();
    tree.scan_from(&k(500), |key, value| {
        seen.push((key.to_vec(), value));
        seen.len() < 100
    })
    .unwrap();
    assert_eq!(seen.len(), 100);
    for (i, (key, value)) in seen.iter().enumerate() {
        assert_eq!(key.as_slice(), &k(500 + i as u64));
        assert_eq!(*value, 500 + i as u64);
    }
}

#[test]
fn scan_to_end_visits_everything() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    for v in 0..777u64 {
        tree.insert(&k(v), v).unwrap();
    }
    let mut count = 0u64;
    tree.scan_from(&k(0), |key, _| {
        assert_eq!(key, &k(count)[..]);
        count += 1;
        true
    })
    .unwrap();
    assert_eq!(count, 777);
}

#[test]
fn bulk_load_equivalent_to_inserts() {
    let entries: Vec<(Vec<u8>, u64)> = (0..3000u64).map(|v| (k(v).to_vec(), v * 2)).collect();
    let tree = BTree::bulk_load(pool(), 8, BTreeOptions::default(), entries, 0.68).unwrap();
    tree.check_invariants().unwrap().unwrap();
    assert_eq!(tree.len().unwrap(), 3000);
    for v in (0..3000u64).step_by(97) {
        assert_eq!(tree.get(&k(v)).unwrap(), Some(v * 2));
    }
    // Mean fill factor should be near the requested 68%.
    let stats = tree.index_stats().unwrap();
    let fill = stats.avg_fill();
    assert!((0.55..0.80).contains(&fill), "fill {fill}");
}

#[test]
fn bulk_load_full_fill_leaves_no_cache_room() {
    let entries: Vec<(Vec<u8>, u64)> = (0..2000u64).map(|v| (k(v).to_vec(), v)).collect();
    let tree = BTree::bulk_load(pool(), 8, cached_opts(16), entries, 1.0).unwrap();
    let stats = tree.index_stats().unwrap();
    // 100% fill: nearly zero free bytes per leaf (the paper's compacted
    // read-only configuration).
    let per_leaf = stats.free_bytes as f64 / stats.leaf_pages as f64;
    assert!(per_leaf < 64.0, "full leaves should have ~no free space, got {per_leaf}");
    assert!(tree.index_stats().unwrap().cache_slots <= stats.leaf_pages * 2);
}

#[test]
fn bulk_load_45_percent_fill_has_big_caches() {
    // The CarTel observation: churned indexes run at 45% fill — which
    // means *more* cache capacity.
    let entries: Vec<(Vec<u8>, u64)> = (0..2000u64).map(|v| (k(v).to_vec(), v)).collect();
    let t45 = BTree::bulk_load(pool(), 8, cached_opts(16), entries.clone(), 0.45).unwrap();
    let t90 = BTree::bulk_load(pool(), 8, cached_opts(16), entries, 0.90).unwrap();
    let s45 = t45.index_stats().unwrap();
    let s90 = t90.index_stats().unwrap();
    assert!(
        s45.cache_slots > s90.cache_slots,
        "45% fill must expose more cache slots ({} vs {})",
        s45.cache_slots,
        s90.cache_slots
    );
}

#[test]
fn bulk_load_empty_and_single() {
    let tree =
        BTree::bulk_load(pool(), 8, BTreeOptions::default(), Vec::<(Vec<u8>, u64)>::new(), 0.68)
            .unwrap();
    assert!(tree.is_empty().unwrap());
    let tree =
        BTree::bulk_load(pool(), 8, BTreeOptions::default(), vec![(k(9).to_vec(), 99u64)], 0.68)
            .unwrap();
    assert_eq!(tree.get(&k(9)).unwrap(), Some(99));
}

#[test]
fn wrong_key_width_is_an_error() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    assert!(tree.get(b"short").is_err());
    assert!(tree.insert(b"toolongtoolong", 1).is_err());
    assert!(tree.delete(b"x").is_err());
}

#[test]
fn works_under_memory_pressure() {
    // Buffer pool far smaller than the index: every descent faults pages.
    let pool = pool_with(4096, 4);
    let tree = BTree::create(pool, 8, BTreeOptions::default()).unwrap();
    for v in 0..3000u64 {
        tree.insert(&k(v), v).unwrap();
    }
    for v in (0..3000u64).step_by(61) {
        assert_eq!(tree.get(&k(v)).unwrap(), Some(v));
    }
    tree.check_invariants().unwrap().unwrap();
}

#[test]
fn update_value_changes_pointer() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    tree.insert(&k(5), 50).unwrap();
    assert!(tree.update_value(&k(5), 51).unwrap());
    assert_eq!(tree.get(&k(5)).unwrap(), Some(51));
    assert!(!tree.update_value(&k(404), 1).unwrap());
}

// ---------------------------------------------------------------------
// Batched lookups and range chunks
// ---------------------------------------------------------------------

#[test]
fn get_many_matches_point_gets() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    for v in (0..4000u64).filter(|v| v % 3 != 0) {
        tree.insert(&k(v), v * 7).unwrap();
    }
    // Unsorted batch with duplicates, absentees, and out-of-range keys.
    let mut asked: Vec<[u8; 8]> = Vec::new();
    let mut x = 99u64;
    for _ in 0..600 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        asked.push(k(x % 4500));
    }
    asked.push(k(1));
    asked.push(k(1));
    let got = tree.get_many(&asked).unwrap();
    assert_eq!(got.len(), asked.len());
    for (i, key) in asked.iter().enumerate() {
        assert_eq!(got[i], tree.get(key).unwrap(), "position {i}");
    }
}

#[test]
fn get_many_on_empty_tree() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    assert_eq!(tree.get_many(&[k(1), k(2)]).unwrap(), vec![None, None]);
    assert_eq!(tree.get_many::<[u8; 8]>(&[]).unwrap(), Vec::<Option<u64>>::new());
}

#[test]
fn lookup_cached_many_hits_after_populate() {
    let tree = BTree::create(pool(), 8, cached_opts(8)).unwrap();
    for v in 0..2000u64 {
        tree.insert(&k(v), v + 10).unwrap();
    }
    let hot: Vec<[u8; 8]> = (0..64u64).map(|v| k(v * 31)).collect();
    // First pass: all misses; populate through the returned tokens.
    let first = tree.lookup_cached_many(&hot).unwrap();
    for (i, m) in first.iter().enumerate() {
        let v = m.value.expect("key exists");
        assert_eq!(v, (i as u64 * 31) + 10);
        assert!(m.payload.is_none(), "cold cache must miss");
        tree.cache_populate(m.leaf, v, &v.to_le_bytes(), m.token).unwrap();
    }
    // Second pass: served from leaf free space.
    let second = tree.lookup_cached_many(&hot).unwrap();
    let hits = second.iter().filter(|m| m.payload.is_some()).count();
    assert!(hits > hot.len() / 2, "only {hits}/{} cache hits", hot.len());
    for (m, want) in second.iter().zip(&first) {
        if let Some(pl) = &m.payload {
            assert_eq!(pl[..], want.value.unwrap().to_le_bytes()[..]);
        }
    }
    let s = tree.cache_stats();
    assert!(s.hits >= hits as u64);
}

#[test]
fn lookup_cached_many_agrees_with_single_lookups() {
    let tree = BTree::create(pool(), 8, cached_opts(8)).unwrap();
    for v in 0..500u64 {
        tree.insert(&k(v), v).unwrap();
    }
    let asked: Vec<[u8; 8]> = (0..700u64).rev().map(k).collect();
    let batch = tree.lookup_cached_many(&asked).unwrap();
    for (i, key) in asked.iter().enumerate() {
        let single = tree.lookup_cached(key).unwrap();
        assert_eq!(batch[i].value, single.value, "position {i}");
    }
}

#[test]
fn lookup_cached_many_on_uncached_tree_records_no_cache_stats() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    for v in 0..100u64 {
        tree.insert(&k(v), v).unwrap();
    }
    let asked: Vec<[u8; 8]> = (0..100u64).map(k).collect();
    let batch = tree.lookup_cached_many(&asked).unwrap();
    assert!(batch.iter().all(|m| m.value.is_some() && m.payload.is_none()));
    // Same contract as N lookup_cached calls on a cache-less tree.
    assert_eq!(tree.cache_stats(), nbb_btree::CacheStats::default());
}

#[test]
fn range_chunk_walks_the_whole_tree_in_order() {
    use std::ops::Bound;
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    let n = 3000u64;
    for v in 0..n {
        tree.insert(&k(v), v).unwrap();
    }
    let mut seen = Vec::new();
    let mut lower: Option<Vec<u8>> = None;
    loop {
        let lb = match &lower {
            None => Bound::Unbounded,
            Some(key) => Bound::Excluded(&key[..]),
        };
        let chunk = tree.range_chunk(lb, Bound::Unbounded).unwrap();
        for e in &chunk.entries {
            seen.push(e.value);
        }
        if let Some(last) = chunk.entries.last() {
            lower = Some(last.key.clone());
        }
        if chunk.exhausted {
            break;
        }
    }
    assert_eq!(seen, (0..n).collect::<Vec<_>>());
}

#[test]
fn range_chunk_respects_bounds_between_keys() {
    use std::ops::Bound;
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    for v in (0..100u64).map(|v| v * 10) {
        tree.insert(&k(v), v).unwrap();
    }
    // 35..=65 → 40, 50, 60 (bounds fall between keys).
    let chunk = tree.range_chunk(Bound::Included(&k(35)), Bound::Included(&k(65))).unwrap();
    let got: Vec<u64> = chunk.entries.iter().map(|e| e.value).collect();
    assert_eq!(got, vec![40, 50, 60]);
    assert!(chunk.exhausted);
    // Exclusive bounds on exact keys.
    let chunk = tree.range_chunk(Bound::Excluded(&k(40)), Bound::Excluded(&k(60))).unwrap();
    let got: Vec<u64> = chunk.entries.iter().map(|e| e.value).collect();
    assert_eq!(got, vec![50]);
}

#[test]
fn range_chunk_on_empty_tree_is_exhausted() {
    use std::ops::Bound;
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    let chunk = tree.range_chunk(Bound::Unbounded, Bound::Unbounded).unwrap();
    assert!(chunk.entries.is_empty());
    assert!(chunk.exhausted);
}

#[test]
fn range_chunk_serves_cached_payloads() {
    use std::ops::Bound;
    let tree = BTree::create(pool(), 8, cached_opts(8)).unwrap();
    for v in 0..200u64 {
        tree.insert(&k(v), v).unwrap();
    }
    // Warm a few entries through the point path.
    for v in 10..20u64 {
        let m = tree.lookup_cached(&k(v)).unwrap();
        tree.cache_populate(m.leaf, v, &v.to_le_bytes(), m.token).unwrap();
    }
    let chunk = tree.range_chunk(Bound::Included(&k(10)), Bound::Excluded(&k(20))).unwrap();
    assert_eq!(chunk.entries.len(), 10);
    let warm = chunk.entries.iter().filter(|e| e.payload.is_some()).count();
    assert!(warm > 0, "scan must serve projections from leaf free space");
    for e in &chunk.entries {
        if let Some(pl) = &e.payload {
            assert_eq!(pl[..], e.value.to_le_bytes()[..]);
        }
    }
}

// ---------------------------------------------------------------------
// Index cache protocol
// ---------------------------------------------------------------------

#[test]
fn cache_miss_populate_hit_cycle() {
    let tree = BTree::create(pool(), 8, cached_opts(16)).unwrap();
    tree.insert(&k(1), 100).unwrap();
    let m = tree.lookup_cached(&k(1)).unwrap();
    assert_eq!(m.value, Some(100));
    assert!(m.payload.is_none());
    assert!(tree.cache_populate(m.leaf, 100, &[9u8; 16], m.token).unwrap());
    let h = tree.lookup_cached(&k(1)).unwrap();
    assert_eq!(h.payload.as_deref(), Some(&[9u8; 16][..]));
    let s = tree.cache_stats();
    assert_eq!(s.lookups, 2);
    assert_eq!(s.hits, 1);
    assert_eq!(s.misses, 1);
    assert_eq!(s.populates, 1);
}

#[test]
fn cache_answers_match_heap_under_mixed_workload() {
    // Ground truth: a HashMap of current payloads. Every cache hit must
    // equal ground truth at all times.
    use std::collections::HashMap;
    let tree = BTree::create(pool(), 8, cached_opts(8)).unwrap();
    let mut truth: HashMap<u64, u64> = HashMap::new(); // key -> payload word
    let n = 400u64;
    for v in 0..n {
        tree.insert(&k(v), v).unwrap();
        truth.insert(v, v * 7);
    }
    let mut x = 12345u64;
    for step in 0..20_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let key = x % n;
        if step % 25 == 24 {
            // Update the "heap" payload and invalidate.
            let nv = truth[&key].wrapping_add(1);
            truth.insert(key, nv);
            let ptr = tree.get(&k(key)).unwrap().unwrap();
            tree.invalidate(&k(key), ptr).unwrap();
        } else {
            let m = tree.lookup_cached(&k(key)).unwrap();
            let ptr = m.value.expect("key exists");
            if let Some(pl) = &m.payload {
                let got = u64::from_le_bytes(pl[..8].try_into().unwrap());
                assert_eq!(got, truth[&key], "stale cache hit for {key} at step {step}");
            } else {
                let payload = truth[&key].to_le_bytes();
                tree.cache_populate(m.leaf, ptr, &payload, m.token).unwrap();
            }
        }
    }
    let s = tree.cache_stats();
    assert!(s.hits > 500, "expected plenty of cache hits, got {:?}", s);
    assert!(s.zeroings > 0 || s.stale_skips > 0, "invalidation paths must fire: {s:?}");
}

#[test]
fn invalidate_all_drops_every_cache() {
    let tree = BTree::create(pool(), 8, cached_opts(8)).unwrap();
    for v in 0..50u64 {
        tree.insert(&k(v), v).unwrap();
    }
    for v in 0..50u64 {
        let m = tree.lookup_cached(&k(v)).unwrap();
        tree.cache_populate(m.leaf, v, &v.to_le_bytes(), m.token).unwrap();
    }
    // Everything hits now.
    let m = tree.lookup_cached(&k(10)).unwrap();
    assert!(m.payload.is_some());
    // Simulated crash: CSNidx bump.
    tree.invalidate_all_caches();
    for v in 0..50u64 {
        let m = tree.lookup_cached(&k(v)).unwrap();
        assert!(m.payload.is_none(), "cache must be invalid after CSN bump (key {v})");
    }
}

#[test]
fn predicate_log_overflow_invalidates_everything() {
    let opts = BTreeOptions {
        cache: Some(CacheConfig { payload_size: 8, bucket_slots: 8, log_threshold: 4 }),
        cache_seed: 3,
        ..Default::default()
    };
    let tree = BTree::create(pool(), 8, opts).unwrap();
    for v in 0..100u64 {
        tree.insert(&k(v), v).unwrap();
    }
    let m = tree.lookup_cached(&k(0)).unwrap();
    tree.cache_populate(m.leaf, 0, &0u64.to_le_bytes(), m.token).unwrap();
    assert!(tree.lookup_cached(&k(0)).unwrap().payload.is_some());
    // Overflow the tiny log with unrelated invalidations.
    for v in 50..60u64 {
        tree.invalidate(&k(v), v).unwrap();
    }
    // CSN must have bumped at least once -> key 0's cache is gone too.
    assert!(tree.lookup_cached(&k(0)).unwrap().payload.is_none());
}

#[test]
fn stale_token_populate_is_skipped() {
    let tree = BTree::create(pool(), 8, cached_opts(8)).unwrap();
    tree.insert(&k(1), 10).unwrap();
    let m = tree.lookup_cached(&k(1)).unwrap();
    // Invalidation races the heap read.
    tree.invalidate(&k(1), 10).unwrap();
    assert!(
        !tree.cache_populate(m.leaf, 10, &7u64.to_le_bytes(), m.token).unwrap(),
        "populate with a stale token must be refused"
    );
    assert_eq!(tree.cache_stats().stale_skips, 1);
    assert!(tree.lookup_cached(&k(1)).unwrap().payload.is_none());
}

#[test]
fn cache_lost_on_eviction_but_reads_stay_correct() {
    // Non-dirtying cache writes disappear when the frame is reclaimed;
    // lookups must degrade to misses, never wrong answers.
    let disk: Arc<dyn DiskManager> = Arc::new(SimulatedDisk::new(4096, DiskModel::free()));
    let pool = Arc::new(BufferPool::new(disk, 3));
    let tree = BTree::create(pool, 8, cached_opts(8)).unwrap();
    for v in 0..500u64 {
        tree.insert(&k(v), v).unwrap();
    }
    for v in 0..500u64 {
        let m = tree.lookup_cached(&k(v)).unwrap();
        if m.payload.is_none() {
            tree.cache_populate(m.leaf, v, &(v * 2).to_le_bytes(), m.token).unwrap();
        }
    }
    // Sweep again: hits may be rare (pool is tiny) but must be correct.
    let mut hits = 0;
    for v in 0..500u64 {
        let m = tree.lookup_cached(&k(v)).unwrap();
        assert_eq!(m.value, Some(v));
        if let Some(pl) = m.payload {
            assert_eq!(u64::from_le_bytes(pl[..8].try_into().unwrap()), v * 2);
            hits += 1;
        }
    }
    // With 3 frames and dozens of leaves, most caches were evicted.
    assert!(hits < 450, "expected eviction losses, got {hits} hits");
}

#[test]
fn splits_drop_affected_page_caches_only() {
    let tree = BTree::create(pool(), 8, cached_opts(8)).unwrap();
    // Two distant key clusters, each large enough to own whole leaves.
    for v in 0..300u64 {
        tree.insert(&k(v), v).unwrap();
    }
    for v in 10_000..10_300u64 {
        tree.insert(&k(v), v).unwrap();
    }
    for v in (0..300u64).chain(10_000..10_300) {
        let m = tree.lookup_cached(&k(v)).unwrap();
        tree.cache_populate(m.leaf, v, &v.to_le_bytes(), m.token).unwrap();
    }
    // Force splits in the low cluster only.
    for v in 300..600u64 {
        tree.insert(&k(v), v).unwrap();
    }
    tree.check_invariants().unwrap().unwrap();
    // All lookups remain correct; hits for the untouched high cluster
    // should largely survive.
    let mut high_hits = 0;
    for v in 10_000..10_300u64 {
        let m = tree.lookup_cached(&k(v)).unwrap();
        assert_eq!(m.value, Some(v));
        if m.payload.is_some() {
            high_hits += 1;
        }
    }
    assert!(high_hits > 0, "distant leaf caches should survive unrelated splits");
}

#[test]
fn cached_tree_without_cache_config_behaves_plain() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    tree.insert(&k(1), 10).unwrap();
    let m = tree.lookup_cached(&k(1)).unwrap();
    assert_eq!(m.value, Some(10));
    assert!(m.payload.is_none());
    assert!(!tree.cache_populate(m.leaf, 10, &[0u8; 16], m.token).unwrap());
    assert_eq!(tree.cache_stats().lookups, 0, "no cache, no cache accounting");
}

#[test]
fn wrong_payload_width_rejected() {
    let tree = BTree::create(pool(), 8, cached_opts(16)).unwrap();
    tree.insert(&k(1), 10).unwrap();
    let m = tree.lookup_cached(&k(1)).unwrap();
    assert!(tree.cache_populate(m.leaf, 10, &[0u8; 4], m.token).is_err());
}

#[test]
fn hot_keys_survive_cache_pressure() {
    // Fill one leaf's cache well beyond capacity with cold keys while
    // repeatedly hitting a hot key: promotion must keep the hot entry.
    let tree = BTree::create(pool_with(8192, 256), 8, cached_opts(16)).unwrap();
    let n = 200u64; // all in a handful of leaves
    for v in 0..n {
        tree.insert(&k(v), v).unwrap();
    }
    let hot = 5u64;
    let m = tree.lookup_cached(&k(hot)).unwrap();
    tree.cache_populate(m.leaf, hot, &[1u8; 16], m.token).unwrap();
    let mut x = 999u64;
    for _ in 0..5_000 {
        // Hot hit (promotes toward S)…
        let h = tree.lookup_cached(&k(hot)).unwrap();
        if h.payload.is_none() {
            tree.cache_populate(h.leaf, hot, &[1u8; 16], h.token).unwrap();
        }
        // …plus two cold misses that insert (eviction pressure).
        for _ in 0..2 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = x % n;
            let m = tree.lookup_cached(&k(c)).unwrap();
            if m.payload.is_none() {
                tree.cache_populate(m.leaf, m.value.unwrap(), &[2u8; 16], m.token).unwrap();
            }
        }
    }
    let s = tree.cache_stats();
    assert!(s.promotions > 100, "hot key should be promoted: {s:?}");
    // The hot key should hit far more often than the base rate.
    let h = tree.lookup_cached(&k(hot)).unwrap();
    assert!(h.payload.is_some(), "hot key must still be cached after churn");
}

#[test]
fn concurrent_cached_reads_and_invalidations_stay_consistent() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let tree = Arc::new(BTree::create(pool_with(8192, 512), 8, cached_opts(8)).unwrap());
    let n = 128u64;
    // Shared "heap": versioned payloads.
    let heap: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(AtomicU64::new).collect());
    for v in 0..n {
        tree.insert(&k(v), v).unwrap();
    }
    let mut handles = Vec::new();
    for t in 0..4 {
        let tree = Arc::clone(&tree);
        let heap = Arc::clone(&heap);
        handles.push(std::thread::spawn(move || {
            let mut x = 7777u64 + t;
            for _ in 0..5_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = x % n;
                if x.is_multiple_of(17) {
                    // writer: bump heap version then invalidate
                    heap[key as usize].fetch_add(1, Ordering::SeqCst);
                    tree.invalidate(&k(key), key).unwrap();
                } else {
                    let m = tree.lookup_cached(&k(key)).unwrap();
                    if let Some(pl) = &m.payload {
                        let got = u64::from_le_bytes(pl[..8].try_into().unwrap());
                        let now = heap[key as usize].load(Ordering::SeqCst);
                        // A cached value may lag only if an invalidation
                        // is still in flight; it must never exceed the
                        // heap version and never be older than the value
                        // at the instant the entry was stored. The strong
                        // check: after our own invalidate barrier below,
                        // reads converge. Here: monotone sanity.
                        assert!(got <= now, "cache ahead of heap?! {got} > {now}");
                    } else {
                        let now = heap[key as usize].load(Ordering::SeqCst);
                        let _ = tree.cache_populate(
                            m.leaf,
                            m.value.unwrap(),
                            &now.to_le_bytes(),
                            m.token,
                        );
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Quiesce: invalidate everything, then every hit must be fresh.
    tree.invalidate_all_caches();
    for v in 0..n {
        let m = tree.lookup_cached(&k(v)).unwrap();
        assert!(m.payload.is_none());
    }
}

// ---------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tree_matches_btreemap(ops in prop::collection::vec(
            (0u8..3, 0u64..300, 0u64..1000), 1..400))
        {
            let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
            let mut model = std::collections::BTreeMap::new();
            for (op, key, val) in ops {
                match op {
                    0 => {
                        let old = tree.insert(&k(key), val).unwrap();
                        prop_assert_eq!(old, model.insert(key, val));
                    }
                    1 => {
                        let got = tree.delete(&k(key)).unwrap();
                        prop_assert_eq!(got, model.remove(&key));
                    }
                    _ => {
                        let got = tree.get(&k(key)).unwrap();
                        prop_assert_eq!(got, model.get(&key).copied());
                    }
                }
            }
            prop_assert_eq!(tree.len().unwrap(), model.len());
            tree.check_invariants().unwrap().unwrap();
            // Full scan equals the model's iteration order.
            let mut pairs = Vec::new();
            tree.scan_from(&k(0), |key, value| {
                pairs.push((u64::from_be_bytes(key.try_into().unwrap()), value));
                true
            }).unwrap();
            let expect: Vec<(u64, u64)> = model.into_iter().collect();
            prop_assert_eq!(pairs, expect);
        }

        #[test]
        fn cached_lookups_never_lie(
            seed in 0u64..u64::MAX,
            nkeys in 50u64..200,
            steps in 100usize..600)
        {
            let tree = BTree::create(pool(), 8, cached_opts(8)).unwrap();
            let mut truth = std::collections::HashMap::new();
            for v in 0..nkeys {
                tree.insert(&k(v), v).unwrap();
                truth.insert(v, v);
            }
            let mut x = seed | 1;
            for _ in 0..steps {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let key = x % nkeys;
                match x % 5 {
                    0 => {
                        let nv = truth[&key].wrapping_add(x);
                        truth.insert(key, nv);
                        tree.invalidate(&k(key), key).unwrap();
                    }
                    _ => {
                        let m = tree.lookup_cached(&k(key)).unwrap();
                        if let Some(pl) = &m.payload {
                            let got = u64::from_le_bytes(pl[..8].try_into().unwrap());
                            prop_assert_eq!(got, truth[&key]);
                        } else {
                            let payload = truth[&key].to_le_bytes();
                            tree.cache_populate(m.leaf, key, &payload, m.token).unwrap();
                        }
                    }
                }
            }
        }

        #[test]
        fn bulk_load_any_fill_is_sound(fill in 0.05f64..1.0, n in 1u64..2000) {
            let entries: Vec<(Vec<u8>, u64)> =
                (0..n).map(|v| (k(v).to_vec(), v)).collect();
            let tree = BTree::bulk_load(pool(), 8, BTreeOptions::default(), entries, fill).unwrap();
            tree.check_invariants().unwrap().unwrap();
            prop_assert_eq!(tree.len().unwrap(), n as usize);
            // Spot check lookups.
            for v in (0..n).step_by((n as usize / 13).max(1)) {
                prop_assert_eq!(tree.get(&k(v)).unwrap(), Some(v));
            }
        }
    }
}
