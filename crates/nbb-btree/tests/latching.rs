//! The write-path latching matrix: sorted multi-key ops, per-leaf
//! latching under contention, escalated splits racing fast-path
//! writers, and writers racing range cursors mid-iteration.
//!
//! The contract under test (see `tree.rs` module docs): writers crab —
//! shared structure lock + per-leaf latch — so disjoint-leaf writers
//! run in parallel; a full leaf escalates to the exclusive structure
//! lock and splits there; readers never block each other and always
//! observe a leaf between two whole operations.

use nbb_btree::{BTree, BTreeOptions};
use nbb_storage::error::StorageError;
use nbb_storage::{BufferPool, DiskManager, InMemoryDisk};
use std::ops::Bound;
use std::sync::Arc;

fn pool_with(page_size: usize, frames: usize) -> Arc<BufferPool> {
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(page_size));
    Arc::new(BufferPool::new(disk, frames))
}

fn pool() -> Arc<BufferPool> {
    pool_with(4096, 512)
}

fn k(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

// ---------------------------------------------------------------------
// Multi-key op semantics (single-threaded)
// ---------------------------------------------------------------------

#[test]
fn insert_many_matches_insert_loop_across_splits() {
    let batched = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    let looped = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    // Unsorted input with enough keys to split several times.
    let entries: Vec<([u8; 8], u64)> =
        (0..4000u64).map(|v| (k(v.wrapping_mul(2654435761) % 10_000), v)).collect();
    let mut dedup = std::collections::HashMap::new();
    let mut unique = Vec::new();
    for (key, v) in entries {
        if dedup.insert(key, v).is_none() {
            unique.push((key, v));
        }
    }
    let olds = batched.insert_many(&unique).unwrap();
    assert!(olds.iter().all(Option::is_none), "unique keys never overwrite");
    for (key, v) in &unique {
        looped.insert(key, *v).unwrap();
    }
    batched.check_invariants().unwrap().unwrap();
    assert_eq!(batched.len().unwrap(), looped.len().unwrap());
    for (key, v) in &unique {
        assert_eq!(batched.get(key).unwrap(), Some(*v));
    }
    let w = batched.write_stats();
    assert!(w.escalations > 0, "4000 keys into 4KiB pages must split: {w:?}");
    assert!(w.keys_per_leaf_group() > 2.0, "sorted grouping must amortize descents: {w:?}");
}

#[test]
fn insert_many_returns_old_values_in_input_order() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    tree.insert_many(&[(k(1), 10), (k(3), 30)]).unwrap();
    // Unsorted batch mixing overwrites and fresh keys.
    let olds = tree.insert_many(&[(k(3), 33), (k(2), 22), (k(1), 11)]).unwrap();
    assert_eq!(olds, vec![Some(30), None, Some(10)]);
    assert_eq!(tree.get(&k(1)).unwrap(), Some(11));
    assert_eq!(tree.get(&k(2)).unwrap(), Some(22));
    assert_eq!(tree.get(&k(3)).unwrap(), Some(33));
}

#[test]
fn insert_many_duplicate_key_is_named_error_and_atomic() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    tree.insert(&k(5), 50).unwrap();
    let err = tree.insert_many(&[(k(1), 1), (k(2), 2), (k(1), 9)]).unwrap_err();
    assert!(
        matches!(err, StorageError::DuplicateKeyInBatch { .. }),
        "want the named error, got {err:?}"
    );
    // Rejection happens before any mutation.
    assert_eq!(tree.len().unwrap(), 1);
    assert_eq!(tree.get(&k(1)).unwrap(), None);
    assert_eq!(tree.get(&k(5)).unwrap(), Some(50));
    assert_eq!(tree.write_stats().batches, 1, "rejected batch must not be counted");
}

#[test]
fn delete_many_matches_delete_loop() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    let entries: Vec<([u8; 8], u64)> = (0..2000u64).map(|v| (k(v), v)).collect();
    tree.insert_many(&entries).unwrap();
    // Delete every third key plus some absentees and a duplicate.
    let mut doomed: Vec<[u8; 8]> = (0..2000u64).step_by(3).map(k).collect();
    doomed.push(k(999_999));
    doomed.push(k(0)); // duplicate of the first entry
    let removed = tree.delete_many(&doomed).unwrap();
    for (i, key) in doomed.iter().enumerate() {
        let v = u64::from_be_bytes(*key);
        let expect = if v < 2000 && i + 2 < doomed.len() { Some(v) } else { None };
        assert_eq!(removed[i], expect, "position {i}");
    }
    tree.check_invariants().unwrap().unwrap();
    for v in 0..2000u64 {
        let expect = (v % 3 != 0).then_some(v);
        assert_eq!(tree.get(&k(v)).unwrap(), expect, "key {v}");
    }
}

#[test]
fn write_stats_meter_amortization() {
    let tree = BTree::create(pool(), 8, BTreeOptions::default()).unwrap();
    // A loop of singles: one leaf group per key.
    for v in 0..10u64 {
        tree.insert(&k(v), v).unwrap();
    }
    let w = tree.write_stats();
    assert_eq!((w.batches, w.keys, w.leaf_groups), (10, 10, 10));
    // One batch over one leaf: a single group.
    tree.insert_many(&(10..40u64).map(|v| (k(v), v)).collect::<Vec<_>>()).unwrap();
    let w = tree.write_stats();
    assert_eq!(w.batches, 11);
    assert_eq!(w.keys, 40);
    assert_eq!(w.leaf_groups, 11, "30 same-leaf keys must share one descent");
}

// ---------------------------------------------------------------------
// Contention matrix
// ---------------------------------------------------------------------

/// Split under contention: writer threads hammer interleaved key
/// stripes hard enough to split leaves repeatedly while point readers
/// verify published keys stay visible.
#[test]
fn concurrent_writers_split_safely() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 3000;
    let tree = Arc::new(BTree::create(pool_with(4096, 1024), 8, BTreeOptions::default()).unwrap());
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                // Interleaved stripes (w, w+W, w+2W, …): every writer
                // keeps landing on the same leaves as its peers, so
                // leaf latches and escalated splits genuinely contend.
                for i in 0..PER_WRITER {
                    let key = i * WRITERS + w;
                    tree.insert(&k(key), key * 7).unwrap();
                }
            });
        }
        let tree = Arc::clone(&tree);
        s.spawn(move || {
            for i in 0..2000u64 {
                // Whatever exists must carry the right value.
                if let Some(v) = tree.get(&k(i)).unwrap() {
                    assert_eq!(v, i * 7, "key {i}");
                }
            }
        });
    });
    tree.check_invariants().unwrap().unwrap();
    assert_eq!(tree.len().unwrap(), (WRITERS * PER_WRITER) as usize);
    for i in 0..WRITERS * PER_WRITER {
        assert_eq!(tree.get(&k(i)).unwrap(), Some(i * 7), "key {i}");
    }
    assert!(tree.write_stats().escalations > 0, "the workload must have split");
}

/// Batched writers on disjoint ranges racing batched deleters on other
/// disjoint ranges: the latch discipline must keep every range exact.
#[test]
fn concurrent_insert_many_delete_many_disjoint_ranges() {
    const THREADS: u64 = 4;
    const RANGE: u64 = 4000;
    const BATCH: u64 = 250;
    let tree = Arc::new(BTree::create(pool_with(4096, 1024), 8, BTreeOptions::default()).unwrap());
    // Pre-populate even thread ranges so deleters have work.
    for t in (0..THREADS).step_by(2) {
        let entries: Vec<([u8; 8], u64)> =
            (t * RANGE..(t + 1) * RANGE).map(|v| (k(v), v)).collect();
        tree.insert_many(&entries).unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                let base = t * RANGE;
                if t % 2 == 0 {
                    // Deleter: drain the pre-populated range in batches.
                    for chunk in (0..RANGE).step_by(BATCH as usize) {
                        let keys: Vec<[u8; 8]> =
                            (base + chunk..base + chunk + BATCH).map(k).collect();
                        let removed = tree.delete_many(&keys).unwrap();
                        assert!(removed.iter().all(Option::is_some), "own range, no races");
                    }
                } else {
                    // Inserter: fill the empty range in batches.
                    for chunk in (0..RANGE).step_by(BATCH as usize) {
                        let entries: Vec<([u8; 8], u64)> =
                            (base + chunk..base + chunk + BATCH).map(|v| (k(v), v * 2)).collect();
                        let olds = tree.insert_many(&entries).unwrap();
                        assert!(olds.iter().all(Option::is_none), "own range, no races");
                    }
                }
            });
        }
    });
    tree.check_invariants().unwrap().unwrap();
    for t in 0..THREADS {
        for v in t * RANGE..(t + 1) * RANGE {
            let expect = (t % 2 == 1).then_some(v * 2);
            assert_eq!(tree.get(&k(v)).unwrap(), expect, "key {v}");
        }
    }
}

/// Writer vs. range cursor mid-iteration: a `range_chunk` walk whose
/// leaves split underneath it must still yield an ascending, duplicate-
/// free sequence containing every key that existed before the scan.
#[test]
fn range_scan_survives_concurrent_splits() {
    const PREEXISTING: u64 = 2000;
    let tree = Arc::new(BTree::create(pool_with(4096, 1024), 8, BTreeOptions::default()).unwrap());
    // Even keys exist up front; a writer adds odd keys during the scan.
    let entries: Vec<([u8; 8], u64)> = (0..PREEXISTING).map(|v| (k(v * 2), v)).collect();
    tree.insert_many(&entries).unwrap();
    std::thread::scope(|s| {
        let writer = {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for v in 0..PREEXISTING {
                    tree.insert(&k(v * 2 + 1), v).unwrap();
                }
            })
        };
        // Cursor discipline from the query layer: advance the lower
        // bound past the last yielded key, re-descending per refill.
        let mut seen: Vec<u64> = Vec::new();
        let mut lower: Option<Vec<u8>> = None;
        loop {
            let lb = match &lower {
                Some(key) => Bound::Excluded(key.as_slice()),
                None => Bound::Unbounded,
            };
            let chunk = tree.range_chunk(lb, Bound::Unbounded).unwrap();
            for e in &chunk.entries {
                seen.push(u64::from_be_bytes(e.key[..8].try_into().unwrap()));
            }
            if let Some(last) = chunk.entries.last() {
                lower = Some(last.key.clone());
            }
            if chunk.exhausted {
                break;
            }
        }
        writer.join().unwrap();
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "cursor must stay strictly ascending");
        let evens: Vec<u64> = seen.iter().copied().filter(|v| v % 2 == 0).collect();
        assert_eq!(
            evens,
            (0..PREEXISTING).map(|v| v * 2).collect::<Vec<_>>(),
            "every pre-existing key must be yielded exactly once"
        );
    });
    tree.check_invariants().unwrap().unwrap();
    assert_eq!(tree.len().unwrap(), 2 * PREEXISTING as usize);
}

/// Same-leaf contention: many writers all updating one tiny key range
/// serialize on the leaf latch without losing updates.
#[test]
fn same_leaf_writers_serialize_on_the_latch() {
    const THREADS: usize = 8;
    const ROUNDS: u64 = 500;
    let tree = Arc::new(BTree::create(pool(), 8, BTreeOptions::default()).unwrap());
    for v in 0..4u64 {
        tree.insert(&k(v), 0).unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..ROUNDS {
                    let key = k((t as u64 + i) % 4);
                    // Overwriting insert + point read on a shared leaf.
                    tree.insert(&key, t as u64 * ROUNDS + i).unwrap();
                    assert!(tree.get(&key).unwrap().is_some());
                }
            });
        }
    });
    tree.check_invariants().unwrap().unwrap();
    assert_eq!(tree.len().unwrap(), 4);
}

/// Batched reads vs the buffer pool's in-flight (`Loading`) frames: a
/// tiny single-shard pool over a blocking disk keeps every `get_many`
/// batch faulting cold leaves, so concurrent readers constantly
/// encounter pages mid-load. They must park on (or proceed past) the
/// in-flight fault — never deadlock, never read a half-loaded page —
/// and co-waiter joins replace duplicate disk reads.
#[test]
fn batched_gets_tolerate_in_flight_page_faults() {
    use nbb_storage::{DiskModel, LatencyDisk};
    const THREADS: usize = 4;
    const ROUNDS: usize = 3;
    const N: u64 = 2000;

    let disk: Arc<dyn DiskManager> =
        Arc::new(LatencyDisk::new(4096, DiskModel { read_ns: 200_000, write_ns: 0 }));
    let pool = Arc::new(BufferPool::with_options(disk, 8, 1, 16, 0));
    let tree = Arc::new(BTree::create(Arc::clone(&pool), 8, BTreeOptions::default()).unwrap());
    let entries: Vec<([u8; 8], u64)> = (0..N).map(|v| (k(v), v.wrapping_mul(7))).collect();
    tree.insert_many(&entries).unwrap();
    pool.reset_stats();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for round in 0..ROUNDS {
                    // Stride the key space so threads collide on some
                    // leaves (joining in-flight loads) and diverge on
                    // others (overlapping distinct faults).
                    let keys: Vec<[u8; 8]> = (0..64u64)
                        .map(|i| k((i * 31 + (t as u64) * 16 + round as u64) % N))
                        .collect();
                    let got = tree.get_many(&keys).unwrap();
                    for (key, v) in keys.iter().zip(got) {
                        let expect = u64::from_be_bytes(*key).wrapping_mul(7);
                        assert_eq!(v, Some(expect), "cold batched get under fault churn");
                    }
                }
            });
        }
    });
    let s = pool.stats();
    assert!(s.faults > 0, "an 8-frame pool must keep faulting: {s:?}");
    assert_eq!(s.misses, s.faults + s.fault_joins, "every miss loaded or parked: {s:?}");
}
