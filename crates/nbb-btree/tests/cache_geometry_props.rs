//! Property tests for the cache/page geometry: under arbitrary
//! interleavings of key operations and cache operations, the cache must
//! never fabricate data — every probe result must be byte-identical to
//! a payload previously stored for that exact tuple id.

use nbb_btree::cache::{CacheConfig, CacheView, CacheViewMut, StoreOutcome};
use nbb_btree::node::{
    node_capacity, stable_point, Node, NodeMut, NODE_FOOTER_SIZE, NODE_HEADER_SIZE,
};
use nbb_storage::page::Page;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn cfg(payload: usize, bucket: usize) -> CacheConfig {
    CacheConfig { payload_size: payload, bucket_slots: bucket, log_threshold: 64 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary op sequences: the cache never returns bytes that were
    /// not stored for that id, and node keys are never corrupted.
    #[test]
    fn cache_never_fabricates_under_churn(
        ops in prop::collection::vec((0u8..5, 1u64..500), 1..300),
        payload in 4usize..40,
        bucket in 2usize..16,
        seed in any::<u64>(),
    ) {
        let c = cfg(payload, bucket);
        let mut page = Page::new(4096);
        NodeMut::init_leaf(&mut page, 8);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Ground truth of what we stored per id, and of live keys.
        let mut stored: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut keys: std::collections::BTreeMap<u64, u64> = Default::default();
        for (op, x) in ops {
            match op {
                0 => {
                    // key insert (may overwrite cache periphery)
                    let mut n = NodeMut::new(&mut page, 8);
                    if n.insert(&x.to_be_bytes(), x) != nbb_btree::InsertOutcome::NeedSplit {
                        keys.insert(x, x);
                    }
                }
                1 => {
                    // key delete (zeroes the free region = drops cache)
                    let mut n = NodeMut::new(&mut page, 8);
                    if n.delete(&x.to_be_bytes()).is_some() {
                        keys.remove(&x);
                        stored.clear(); // free-region zeroing drops all
                    }
                }
                2 => {
                    // cache store
                    let pl: Vec<u8> = (0..payload).map(|i| (x as u8).wrapping_add(i as u8)).collect();
                    let mut cv = CacheViewMut::new(&mut page, 8, &c);
                    match cv.store(x, &pl, &mut rng) {
                        StoreOutcome::Stored | StoreOutcome::StoredEvicting => {
                            stored.insert(x, pl);
                        }
                        StoreOutcome::NoRoom => {}
                    }
                }
                3 => {
                    // probe + promote
                    let found = CacheView::new(&page, 8, &c)
                        .probe(x)
                        .map(|(s, pl)| (s, pl.to_vec()));
                    if let Some((slot, pl)) = found {
                        let expect = stored.get(&x);
                        prop_assert_eq!(Some(&pl), expect,
                            "probe returned bytes never stored for id {}", x);
                        let mut cv = CacheViewMut::new(&mut page, 8, &c);
                        cv.promote(slot, x, &mut rng);
                    }
                }
                _ => {
                    // full verification sweep
                    let v = CacheView::new(&page, 8, &c);
                    for (id, pl) in v.entries() {
                        let expect = stored.get(&id);
                        prop_assert_eq!(Some(&pl.to_vec()), expect,
                            "cache entry {} not in stored set", id);
                    }
                }
            }
            // Node keys always intact and sorted.
            let n = Node::new(&page, 8);
            prop_assert_eq!(n.nkeys(), keys.len());
            for (i, (k, v)) in keys.iter().enumerate() {
                prop_assert_eq!(n.key_at(i), &k.to_be_bytes());
                prop_assert_eq!(n.value_at(i), *v);
            }
            // Geometry invariants.
            prop_assert!(n.free_low() <= n.free_high());
            prop_assert!(n.free_low() >= NODE_HEADER_SIZE);
            prop_assert!(n.free_high() <= page.size() - NODE_FOOTER_SIZE);
        }
    }

    /// The stable point lies strictly inside the usable area for any
    /// sane page/key size, and closer to the directory end than the
    /// key end (since K >> D).
    #[test]
    fn stable_point_inside_page(page_size in 256usize..=65536, key_size in 1usize..=128) {
        prop_assume!(node_capacity(page_size, key_size) >= 2);
        let s = stable_point(page_size, key_size);
        prop_assert!(s >= NODE_HEADER_SIZE);
        prop_assert!(s <= page_size - NODE_FOOTER_SIZE);
        let mid = NODE_HEADER_SIZE + (page_size - NODE_HEADER_SIZE - NODE_FOOTER_SIZE) / 2;
        prop_assert!(s >= mid, "S={s} must sit in the upper half (K > D)");
    }

    /// Slot ranges never overlap the key region or directory, for any
    /// fill level and entry size.
    #[test]
    fn slots_fully_inside_free_region(
        nkeys in 0usize..200,
        payload in 1usize..64,
    ) {
        let c = cfg(payload, 8);
        let mut page = Page::new(4096);
        let mut n = NodeMut::init_leaf(&mut page, 8);
        let cap = n.as_ref().capacity();
        for i in 0..nkeys.min(cap) as u64 {
            n.append_sorted(&i.to_be_bytes(), i);
        }
        let node = Node::new(&page, 8);
        let (lo, hi) = (node.free_low(), node.free_high());
        let v = CacheView::new(&page, 8, &c);
        let (first, last) = v.slot_range();
        let entry = c.entry_size();
        if first < last {
            prop_assert!(first * entry >= lo, "first slot below free_low");
            prop_assert!(last * entry <= hi, "last slot above free_high");
        }
        prop_assert_eq!(v.capacity(), last - first);
    }
}

/// Deterministic regression: storing into every leaf of a real tree
/// then reading through lookup_cached never mixes payloads across keys.
#[test]
fn payload_isolation_across_keys() {
    use nbb_btree::{BTree, BTreeOptions};
    use nbb_storage::{BufferPool, DiskManager, InMemoryDisk};
    use std::sync::Arc;
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
    let pool = Arc::new(BufferPool::new(disk, 256));
    let tree = BTree::create(
        pool,
        8,
        BTreeOptions { cache: Some(cfg(8, 8)), cache_seed: 3, ..Default::default() },
    )
    .unwrap();
    let n = 2_000u64;
    for i in 0..n {
        tree.insert(&i.to_be_bytes(), i).unwrap();
    }
    for i in 0..n {
        let m = tree.lookup_cached(&i.to_be_bytes()).unwrap();
        tree.cache_populate(m.leaf, i, &(i * 31).to_le_bytes(), m.token).unwrap();
    }
    let mut hits = 0;
    for i in 0..n {
        let m = tree.lookup_cached(&i.to_be_bytes()).unwrap();
        if let Some(pl) = m.payload {
            assert_eq!(
                u64::from_le_bytes(pl[..8].try_into().unwrap()),
                i * 31,
                "payload for key {i} belongs to another key"
            );
            hits += 1;
        }
    }
    assert!(hits > (n as usize) / 2, "most populated entries should survive: {hits}");
}
