//! Property tests for the wire codec: every representable frame round
//! trips bit-exactly, and *no* byte sequence — truncated, spliced, or
//! random — can make the decoder panic; it either decodes or names a
//! [`DecodeError`].

use nbb_proto::{
    decode_request, decode_response, encode_request, encode_response, DecodeError, Framer, Request,
    RequestOp, Response, ResponseBody, WireBatchOp, WireBatchOutput, WireBound, WireProjection,
    WireServerStats, HEADER_LEN,
};
use proptest::prelude::*;

/// Deterministically builds one of every request-op shape from plain
/// generated scalars (the shim has no `prop_oneof`, so selection is an
/// integer and construction happens in the test body).
fn build_request_op(
    sel: u8,
    table: String,
    index: String,
    blobs: Vec<Vec<u8>>,
    limit: u32,
    bsel: u8,
) -> RequestOp {
    let first = blobs.first().cloned().unwrap_or_default();
    let bound = |sel: u8, k: Vec<u8>| match sel % 3 {
        0 => WireBound::Unbounded,
        1 => WireBound::Included(k),
        _ => WireBound::Excluded(k),
    };
    match sel % 9 {
        0 => RequestOp::GetMany { table, index, keys: blobs },
        1 => RequestOp::ProjectMany { table, index, keys: blobs },
        2 => RequestOp::InsertMany { table, tuples: blobs },
        3 => RequestOp::PutMany { table, index, tuples: blobs },
        4 => {
            let pairs = blobs.iter().map(|b| (b.clone(), first.clone())).collect();
            RequestOp::UpdateMany { table, index, pairs }
        }
        5 => RequestOp::DeleteMany { table, index, keys: blobs },
        6 => RequestOp::Range {
            table,
            index,
            lo: bound(bsel, first.clone()),
            hi: bound(bsel.wrapping_add(1), first),
            limit,
        },
        7 => {
            let ops = blobs
                .iter()
                .enumerate()
                .map(|(i, b)| match i % 5 {
                    0 => WireBatchOp::Get { index: index.clone(), key: b.clone() },
                    1 => WireBatchOp::Project { index: index.clone(), key: b.clone() },
                    2 => WireBatchOp::Put { index: index.clone(), tuple: b.clone() },
                    3 => WireBatchOp::Update {
                        index: index.clone(),
                        key: b.clone(),
                        tuple: first.clone(),
                    },
                    _ => WireBatchOp::Delete { index: index.clone(), key: b.clone() },
                })
                .collect();
            RequestOp::Batch { table, ops }
        }
        _ => RequestOp::Stats,
    }
}

fn build_response_body(sel: u8, blobs: Vec<Vec<u8>>, flags: u64) -> ResponseBody {
    let first = blobs.first().cloned().unwrap_or_default();
    match sel % 9 {
        0 => ResponseBody::Error { message: String::from_utf8_lossy(&first).into_owned() },
        1 => ResponseBody::GetMany {
            rows: blobs
                .into_iter()
                .enumerate()
                .map(|(i, b)| if i % 2 == 0 { Some(b) } else { None })
                .collect(),
        },
        2 => ResponseBody::ProjectMany {
            rows: blobs
                .into_iter()
                .enumerate()
                .map(|(i, b)| match i % 3 {
                    0 => None,
                    n => Some(WireProjection { payload: b, index_only: n == 1 }),
                })
                .collect(),
        },
        3 => ResponseBody::InsertMany {
            rids: blobs.iter().map(|b| b.len() as u64 ^ flags).collect(),
        },
        4 => ResponseBody::PutMany { rids: blobs.iter().map(|b| b.len() as u64).collect() },
        5 => ResponseBody::UpdateMany { applied: blobs.iter().map(|b| b.len() % 2 == 0).collect() },
        6 => ResponseBody::Range {
            rows: blobs.iter().map(|b| (b.clone(), first.clone())).collect(),
            more: flags.is_multiple_of(2),
            resume: if blobs.is_empty() { None } else { Some(first) },
        },
        7 => ResponseBody::Batch {
            outputs: blobs
                .into_iter()
                .enumerate()
                .map(|(i, b)| match i % 5 {
                    0 => WireBatchOutput::Tuple(Some(b)),
                    1 => WireBatchOutput::Projection(Some(WireProjection {
                        payload: b,
                        index_only: false,
                    })),
                    2 => WireBatchOutput::Put(b.len() as u64),
                    3 => WireBatchOutput::Updated(b.len() % 2 == 0),
                    _ => WireBatchOutput::Deleted(b.is_empty()),
                })
                .collect(),
        },
        _ => ResponseBody::Stats(WireServerStats {
            frames_in: flags,
            frames_out: flags.wrapping_mul(3),
            bytes_in: flags >> 1,
            bytes_out: flags >> 2,
            batches_executed: flags & 0xFF,
            queue_full_parks: flags % 7,
            active_connections: flags % 11,
            connections_opened: flags % 13,
            connections_refused: flags % 17,
            decode_errors: flags % 19,
        }),
    }
}

proptest! {
    #[test]
    fn requests_round_trip(
        id in proptest::prelude::any::<u64>(),
        sel in 0u8..9,
        table in "[a-z]{1,8}",
        index in "[a-z]{1,8}",
        blobs in prop::collection::vec(prop::collection::vec(0u8..=255, 0..24), 0..8),
        limit in 0u32..100_000,
        bsel in 0u8..6,
    ) {
        let req = Request { id, op: build_request_op(sel, table, index, blobs, limit, bsel) };
        let frame = encode_request(&req);
        prop_assert_eq!(decode_request(&frame[HEADER_LEN..]), Ok(req));
    }

    #[test]
    fn responses_round_trip(
        id in proptest::prelude::any::<u64>(),
        sel in 0u8..9,
        blobs in prop::collection::vec(prop::collection::vec(0u8..=255, 0..24), 0..8),
        flags in proptest::prelude::any::<u64>(),
    ) {
        let resp = Response { id, body: build_response_body(sel, blobs, flags) };
        let frame = encode_response(&resp);
        prop_assert_eq!(decode_response(&frame[HEADER_LEN..]), Ok(resp));
    }

    #[test]
    fn truncated_requests_never_decode_and_never_panic(
        sel in 0u8..9,
        table in "[a-z]{1,8}",
        index in "[a-z]{1,8}",
        blobs in prop::collection::vec(prop::collection::vec(0u8..=255, 0..16), 1..5),
        cut_frac in 0.0f64..1.0,
    ) {
        let req = Request { id: 7, op: build_request_op(sel, table, index, blobs, 10, 1) };
        let frame = encode_request(&req);
        let payload = &frame[HEADER_LEN..];
        let cut = ((payload.len() as f64) * cut_frac) as usize;
        if cut < payload.len() {
            // A strict prefix must fail by name — Truncated, since no
            // field can be mistaken for another under a clean cut.
            prop_assert!(matches!(
                decode_request(&payload[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn spliced_garbage_decodes_or_errors_but_never_panics(
        sel in 0u8..9,
        table in "[a-z]{1,8}",
        index in "[a-z]{1,8}",
        blobs in prop::collection::vec(prop::collection::vec(0u8..=255, 0..16), 1..5),
        pos_frac in 0.0f64..1.0,
        splice in prop::collection::vec(0u8..=255, 1..12),
    ) {
        // Overwrite a window of a valid payload with random bytes: the
        // decoder must terminate with Ok or a named error.
        let req = Request { id: 7, op: build_request_op(sel, table, index, blobs, 10, 1) };
        let frame = encode_request(&req);
        let mut payload = frame[HEADER_LEN..].to_vec();
        let pos = ((payload.len() as f64) * pos_frac) as usize;
        for (i, b) in splice.iter().enumerate() {
            if pos + i < payload.len() {
                payload[pos + i] = *b;
            }
        }
        let _ = decode_request(&payload); // must return, not panic
    }

    #[test]
    fn raw_random_bytes_never_panic_either_decoder(
        bytes in prop::collection::vec(0u8..=255, 0..64),
    ) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    #[test]
    fn framer_reassembly_is_chunking_independent(
        id in proptest::prelude::any::<u64>(),
        sel in 0u8..9,
        table in "[a-z]{1,8}",
        blobs in prop::collection::vec(prop::collection::vec(0u8..=255, 0..16), 0..4),
        chunk in 1usize..17,
    ) {
        let req = Request {
            id,
            op: build_request_op(sel, table, "pk".to_string(), blobs, 5, 0),
        };
        let stream: Vec<u8> = encode_request(&req)
            .into_iter()
            .chain(encode_request(&req))
            .collect();
        let mut framer = Framer::new();
        let mut seen = 0usize;
        for part in stream.chunks(chunk) {
            framer.extend(part);
            while let Some(payload) = framer.next_payload().expect("valid stream") {
                prop_assert_eq!(decode_request(&payload), Ok(req.clone()));
                seen += 1;
            }
        }
        prop_assert_eq!(seen, 2);
        prop_assert_eq!(framer.eof_error(), None);
    }
}
