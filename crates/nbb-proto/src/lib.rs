//! # nbb-proto — the engine's wire protocol, sans-io
//!
//! A dependency-free (workspace-only), length-prefixed binary codec
//! whose frames decode straight into the engine's batched operations
//! (`get_many`, `insert_many`, `Batch`, …). Everything here is pure
//! `encode`/`decode` over byte buffers — no sockets, no threads — so
//! the protocol is fully testable without I/O, and any transport
//! (`nbb-server`'s loopback TCP, a unit test's `Vec<u8>`) can carry it.
//!
//! ## Frame layout
//!
//! ```text
//! frame    := len:u32 payload                len counts payload bytes only
//! request  := id:u64 tag:u8 body             id is client-chosen; echoed back
//! response := id:u64 status:u8 result        status 0 = ok, 1 = error
//! ok       := tag:u8 body                    tag repeats the request's op tag
//! error    := msg:str                        human-readable failure
//! str      := len:u32 utf8-bytes
//! bytes    := len:u32 raw-bytes              keys/tuples are opaque key bytes
//! bound    := 0 | 1 key:bytes | 2 key:bytes  unbounded / included / excluded
//! ```
//!
//! All integers ride `nbb-encoding`'s order-preserving big-endian
//! codecs ([`nbb_encoding::wire`]), the same convention the engine's
//! index keys use, so a `u64` captured off the wire is directly
//! `memcmp`-comparable against leaf bytes.
//!
//! Requests carry a client-chosen [`Request::id`]; responses echo it, so
//! a pipelined connection may complete requests **out of order** — the
//! transport never needs to serialize a fast read behind a slow fault.
//!
//! ## Robustness contract
//!
//! Decoding never panics. Every malformed input yields a named
//! [`DecodeError`]: a frame longer than the configured cap is
//! [`DecodeError::Oversize`] *before* any allocation, a short body is
//! [`DecodeError::Truncated`], an unknown op/bound/status byte is
//! [`DecodeError::BadTag`], and leftover bytes after a well-formed body
//! are [`DecodeError::Trailing`]. Counts are never trusted for
//! pre-allocation — element vectors grow only as bytes are actually
//! consumed, so a hostile count cannot balloon memory.

#![warn(missing_docs)]

use nbb_encoding::wire;
use std::fmt;

/// Default cap on one frame's payload bytes (1 MiB). Both sides of a
/// connection must agree; [`Framer::with_max`] overrides it.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Bytes of the `len` prefix in front of every payload.
pub const HEADER_LEN: usize = 4;

// ---- Errors ---------------------------------------------------------

/// A named decode failure. Every variant is a protocol error the peer
/// caused; none of them panic and none of them poison engine state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The body ended before a field it promised.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually left.
        have: usize,
    },
    /// The length prefix exceeds the frame cap.
    Oversize {
        /// Declared payload length.
        len: usize,
        /// The configured cap.
        max: usize,
    },
    /// An op/bound/status/kind byte had no meaning.
    BadTag {
        /// Which tag position was bad (e.g. `"op"`, `"bound"`).
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A well-formed body was followed by garbage bytes.
    Trailing {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A table/index name was not valid UTF-8.
    BadName,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, have } => {
                write!(f, "truncated frame: next field needs {needed} bytes, {have} left")
            }
            DecodeError::Oversize { len, max } => {
                write!(f, "oversize frame: declared length {len} exceeds max {max}")
            }
            DecodeError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            DecodeError::Trailing { extra } => {
                write!(f, "trailing bytes: {extra} after a complete body")
            }
            DecodeError::BadName => write!(f, "name is not valid utf-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decode result alias.
pub type Result<T> = std::result::Result<T, DecodeError>;

// ---- Model ----------------------------------------------------------

/// One request frame: a client-chosen id plus one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed by the response. Ids only
    /// need to be unique among a connection's in-flight requests.
    pub id: u64,
    /// The operation to execute.
    pub op: RequestOp,
}

/// A range bound over key bytes (the wire twin of [`std::ops::Bound`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireBound {
    /// No bound on this side.
    Unbounded,
    /// Inclusive key bound.
    Included(Vec<u8>),
    /// Exclusive key bound.
    Excluded(Vec<u8>),
}

/// One operation of a [`Request`], mirroring the engine's batched
/// fast paths one-to-one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOp {
    /// Batched full-tuple lookup (`IndexRef::get_many`).
    GetMany {
        /// Target table.
        table: String,
        /// Index to look through.
        index: String,
        /// Keys, in result order.
        keys: Vec<Vec<u8>>,
    },
    /// Batched cached-field projection (`IndexRef::project_many`).
    ProjectMany {
        /// Target table.
        table: String,
        /// Index to look through.
        index: String,
        /// Keys, in result order.
        keys: Vec<Vec<u8>>,
    },
    /// Batched heap insert with full index maintenance
    /// (`Table::insert_many`).
    InsertMany {
        /// Target table.
        table: String,
        /// Fixed-width tuples.
        tuples: Vec<Vec<u8>>,
    },
    /// Batched upsert by an index's key (`IndexRef::put_many`).
    PutMany {
        /// Target table.
        table: String,
        /// Index whose key identifies each tuple.
        index: String,
        /// Fixed-width tuples.
        tuples: Vec<Vec<u8>>,
    },
    /// Batched in-place update (`IndexRef::update_many`).
    UpdateMany {
        /// Target table.
        table: String,
        /// Index whose key addresses each row.
        index: String,
        /// `(key, replacement tuple)` pairs.
        pairs: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// Batched delete (`IndexRef::delete_many`).
    DeleteMany {
        /// Target table.
        table: String,
        /// Index whose key addresses each row.
        index: String,
        /// Keys, in result order.
        keys: Vec<Vec<u8>>,
    },
    /// One page of an ordered range scan (`IndexRef::range`). The
    /// response says whether more rows exist and where to resume, so a
    /// client pages a scan with a chain of these.
    Range {
        /// Target table.
        table: String,
        /// Index defining the order.
        index: String,
        /// Lower key bound.
        lo: WireBound,
        /// Upper key bound.
        hi: WireBound,
        /// Max rows in this page.
        limit: u32,
    },
    /// A heterogeneous multi-op batch (`Table::execute`), with the
    /// engine's documented put → update → delete → read group order.
    Batch {
        /// Target table.
        table: String,
        /// The queued operations, in batch order.
        ops: Vec<WireBatchOp>,
    },
    /// Server counter snapshot (frames, bytes, parks, connections).
    Stats,
}

impl RequestOp {
    /// The op's wire tag (also echoed in ok-responses).
    fn tag(&self) -> u8 {
        match self {
            RequestOp::GetMany { .. } => tags::GET_MANY,
            RequestOp::ProjectMany { .. } => tags::PROJECT_MANY,
            RequestOp::InsertMany { .. } => tags::INSERT_MANY,
            RequestOp::PutMany { .. } => tags::PUT_MANY,
            RequestOp::UpdateMany { .. } => tags::UPDATE_MANY,
            RequestOp::DeleteMany { .. } => tags::DELETE_MANY,
            RequestOp::Range { .. } => tags::RANGE,
            RequestOp::Batch { .. } => tags::BATCH,
            RequestOp::Stats => tags::STATS,
        }
    }
}

/// One op inside a wire [`RequestOp::Batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireBatchOp {
    /// Full-tuple lookup through `index`.
    Get {
        /// Index name.
        index: String,
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Cached-field projection through `index`.
    Project {
        /// Index name.
        index: String,
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Upsert of `tuple` through `index`.
    Put {
        /// Index name.
        index: String,
        /// Tuple bytes.
        tuple: Vec<u8>,
    },
    /// In-place update of the row at `key` to `tuple`.
    Update {
        /// Index name.
        index: String,
        /// Key bytes.
        key: Vec<u8>,
        /// Replacement tuple bytes.
        tuple: Vec<u8>,
    },
    /// Delete of the row at `key`.
    Delete {
        /// Index name.
        index: String,
        /// Key bytes.
        key: Vec<u8>,
    },
}

/// One response frame: the echoed request id plus the result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's [`Request::id`], echoed verbatim.
    pub id: u64,
    /// The result body.
    pub body: ResponseBody,
}

/// A cached-field projection on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireProjection {
    /// The cached-field payload bytes.
    pub payload: Vec<u8>,
    /// Whether the engine answered from leaf free space without
    /// touching the heap.
    pub index_only: bool,
}

/// One result of a wire batch, mirroring the engine's `BatchOutput`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireBatchOutput {
    /// Result of a `Get` op.
    Tuple(Option<Vec<u8>>),
    /// Result of a `Project` op.
    Projection(Option<WireProjection>),
    /// Result of a `Put` op: the packed record id the tuple landed at.
    Put(u64),
    /// Result of an `Update` op: whether the key existed.
    Updated(bool),
    /// Result of a `Delete` op: whether the key existed.
    Deleted(bool),
}

/// Server counter snapshot carried by [`ResponseBody::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireServerStats {
    /// Request frames decoded and submitted.
    pub frames_in: u64,
    /// Response frames written.
    pub frames_out: u64,
    /// Raw bytes read off connections.
    pub bytes_in: u64,
    /// Raw bytes written to connections.
    pub bytes_out: u64,
    /// Engine batch executions (one per request op).
    pub batches_executed: u64,
    /// Times a reader parked because a connection's response queue was
    /// full (the backpressure signal).
    pub queue_full_parks: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Connections accepted over the server's lifetime.
    pub connections_opened: u64,
    /// Connections refused at the `max_connections` cap.
    pub connections_refused: u64,
    /// Malformed frames that closed a connection.
    pub decode_errors: u64,
}

/// The result half of a [`Response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseBody {
    /// The op failed; the engine error rendered as text.
    Error {
        /// Human-readable failure message.
        message: String,
    },
    /// [`RequestOp::GetMany`] results, indexed like the request keys.
    GetMany {
        /// Per-key tuple, `None` when absent.
        rows: Vec<Option<Vec<u8>>>,
    },
    /// [`RequestOp::ProjectMany`] results.
    ProjectMany {
        /// Per-key projection, `None` when absent.
        rows: Vec<Option<WireProjection>>,
    },
    /// [`RequestOp::InsertMany`] results.
    InsertMany {
        /// Packed record ids, indexed like the request tuples.
        rids: Vec<u64>,
    },
    /// [`RequestOp::PutMany`] results.
    PutMany {
        /// Packed record ids, indexed like the request tuples.
        rids: Vec<u64>,
    },
    /// [`RequestOp::UpdateMany`] results.
    UpdateMany {
        /// Whether each key existed.
        applied: Vec<bool>,
    },
    /// [`RequestOp::DeleteMany`] results.
    DeleteMany {
        /// Whether each key existed.
        applied: Vec<bool>,
    },
    /// One [`RequestOp::Range`] page.
    Range {
        /// `(key, tuple)` rows in key order.
        rows: Vec<(Vec<u8>, Vec<u8>)>,
        /// Whether rows remain past this page.
        more: bool,
        /// Last key of this page (resume with `lo = Excluded(resume)`);
        /// `None` when the page is empty.
        resume: Option<Vec<u8>>,
    },
    /// [`RequestOp::Batch`] results, in batch op order.
    Batch {
        /// Per-op outputs.
        outputs: Vec<WireBatchOutput>,
    },
    /// [`RequestOp::Stats`] snapshot.
    Stats(WireServerStats),
}

impl ResponseBody {
    fn tag(&self) -> u8 {
        match self {
            // Unused for errors (status byte distinguishes), kept total.
            ResponseBody::Error { .. } => 0,
            ResponseBody::GetMany { .. } => tags::GET_MANY,
            ResponseBody::ProjectMany { .. } => tags::PROJECT_MANY,
            ResponseBody::InsertMany { .. } => tags::INSERT_MANY,
            ResponseBody::PutMany { .. } => tags::PUT_MANY,
            ResponseBody::UpdateMany { .. } => tags::UPDATE_MANY,
            ResponseBody::DeleteMany { .. } => tags::DELETE_MANY,
            ResponseBody::Range { .. } => tags::RANGE,
            ResponseBody::Batch { .. } => tags::BATCH,
            ResponseBody::Stats(_) => tags::STATS,
        }
    }
}

mod tags {
    pub const GET_MANY: u8 = 1;
    pub const PROJECT_MANY: u8 = 2;
    pub const INSERT_MANY: u8 = 3;
    pub const PUT_MANY: u8 = 4;
    pub const UPDATE_MANY: u8 = 5;
    pub const DELETE_MANY: u8 = 6;
    pub const RANGE: u8 = 7;
    pub const BATCH: u8 = 8;
    pub const STATS: u8 = 9;

    pub const BATCH_GET: u8 = 1;
    pub const BATCH_PROJECT: u8 = 2;
    pub const BATCH_PUT: u8 = 3;
    pub const BATCH_UPDATE: u8 = 4;
    pub const BATCH_DELETE: u8 = 5;

    pub const STATUS_OK: u8 = 0;
    pub const STATUS_ERR: u8 = 1;

    pub const BOUND_UNBOUNDED: u8 = 0;
    pub const BOUND_INCLUDED: u8 = 1;
    pub const BOUND_EXCLUDED: u8 = 2;
}

// ---- Encode ---------------------------------------------------------

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    wire::put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(u8::from(b));
}

fn put_opt_bytes(out: &mut Vec<u8>, b: Option<&[u8]>) {
    match b {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            put_bytes(out, b);
        }
    }
}

fn put_bound(out: &mut Vec<u8>, b: &WireBound) {
    match b {
        WireBound::Unbounded => out.push(tags::BOUND_UNBOUNDED),
        WireBound::Included(k) => {
            out.push(tags::BOUND_INCLUDED);
            put_bytes(out, k);
        }
        WireBound::Excluded(k) => {
            out.push(tags::BOUND_EXCLUDED);
            put_bytes(out, k);
        }
    }
}

fn put_byte_list(out: &mut Vec<u8>, items: &[Vec<u8>]) {
    wire::put_u32(out, items.len() as u32);
    for it in items {
        put_bytes(out, it);
    }
}

/// Wraps a finished payload in its length prefix.
fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    wire::put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Encodes a request as one complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut p = Vec::new();
    wire::put_u64(&mut p, req.id);
    p.push(req.op.tag());
    match &req.op {
        RequestOp::GetMany { table, index, keys }
        | RequestOp::ProjectMany { table, index, keys }
        | RequestOp::DeleteMany { table, index, keys } => {
            put_str(&mut p, table);
            put_str(&mut p, index);
            put_byte_list(&mut p, keys);
        }
        RequestOp::InsertMany { table, tuples } => {
            put_str(&mut p, table);
            put_byte_list(&mut p, tuples);
        }
        RequestOp::PutMany { table, index, tuples } => {
            put_str(&mut p, table);
            put_str(&mut p, index);
            put_byte_list(&mut p, tuples);
        }
        RequestOp::UpdateMany { table, index, pairs } => {
            put_str(&mut p, table);
            put_str(&mut p, index);
            wire::put_u32(&mut p, pairs.len() as u32);
            for (k, t) in pairs {
                put_bytes(&mut p, k);
                put_bytes(&mut p, t);
            }
        }
        RequestOp::Range { table, index, lo, hi, limit } => {
            put_str(&mut p, table);
            put_str(&mut p, index);
            put_bound(&mut p, lo);
            put_bound(&mut p, hi);
            wire::put_u32(&mut p, *limit);
        }
        RequestOp::Batch { table, ops } => {
            put_str(&mut p, table);
            wire::put_u32(&mut p, ops.len() as u32);
            for op in ops {
                match op {
                    WireBatchOp::Get { index, key } => {
                        p.push(tags::BATCH_GET);
                        put_str(&mut p, index);
                        put_bytes(&mut p, key);
                    }
                    WireBatchOp::Project { index, key } => {
                        p.push(tags::BATCH_PROJECT);
                        put_str(&mut p, index);
                        put_bytes(&mut p, key);
                    }
                    WireBatchOp::Put { index, tuple } => {
                        p.push(tags::BATCH_PUT);
                        put_str(&mut p, index);
                        put_bytes(&mut p, tuple);
                    }
                    WireBatchOp::Update { index, key, tuple } => {
                        p.push(tags::BATCH_UPDATE);
                        put_str(&mut p, index);
                        put_bytes(&mut p, key);
                        put_bytes(&mut p, tuple);
                    }
                    WireBatchOp::Delete { index, key } => {
                        p.push(tags::BATCH_DELETE);
                        put_str(&mut p, index);
                        put_bytes(&mut p, key);
                    }
                }
            }
        }
        RequestOp::Stats => {}
    }
    frame(p)
}

/// Encodes a response as one complete frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut p = Vec::new();
    wire::put_u64(&mut p, resp.id);
    match &resp.body {
        ResponseBody::Error { message } => {
            p.push(tags::STATUS_ERR);
            put_str(&mut p, message);
        }
        ok => {
            p.push(tags::STATUS_OK);
            p.push(ok.tag());
            match ok {
                ResponseBody::Error { .. } => unreachable!("handled above"),
                ResponseBody::GetMany { rows } => {
                    wire::put_u32(&mut p, rows.len() as u32);
                    for r in rows {
                        put_opt_bytes(&mut p, r.as_deref());
                    }
                }
                ResponseBody::ProjectMany { rows } => {
                    wire::put_u32(&mut p, rows.len() as u32);
                    for r in rows {
                        match r {
                            None => p.push(0),
                            Some(pr) => {
                                p.push(1);
                                put_bytes(&mut p, &pr.payload);
                                put_bool(&mut p, pr.index_only);
                            }
                        }
                    }
                }
                ResponseBody::InsertMany { rids } | ResponseBody::PutMany { rids } => {
                    wire::put_u32(&mut p, rids.len() as u32);
                    for r in rids {
                        wire::put_u64(&mut p, *r);
                    }
                }
                ResponseBody::UpdateMany { applied } | ResponseBody::DeleteMany { applied } => {
                    wire::put_u32(&mut p, applied.len() as u32);
                    for a in applied {
                        put_bool(&mut p, *a);
                    }
                }
                ResponseBody::Range { rows, more, resume } => {
                    wire::put_u32(&mut p, rows.len() as u32);
                    for (k, t) in rows {
                        put_bytes(&mut p, k);
                        put_bytes(&mut p, t);
                    }
                    put_bool(&mut p, *more);
                    put_opt_bytes(&mut p, resume.as_deref());
                }
                ResponseBody::Batch { outputs } => {
                    wire::put_u32(&mut p, outputs.len() as u32);
                    for o in outputs {
                        match o {
                            WireBatchOutput::Tuple(t) => {
                                p.push(tags::BATCH_GET);
                                put_opt_bytes(&mut p, t.as_deref());
                            }
                            WireBatchOutput::Projection(pr) => {
                                p.push(tags::BATCH_PROJECT);
                                match pr {
                                    None => p.push(0),
                                    Some(pr) => {
                                        p.push(1);
                                        put_bytes(&mut p, &pr.payload);
                                        put_bool(&mut p, pr.index_only);
                                    }
                                }
                            }
                            WireBatchOutput::Put(rid) => {
                                p.push(tags::BATCH_PUT);
                                wire::put_u64(&mut p, *rid);
                            }
                            WireBatchOutput::Updated(b) => {
                                p.push(tags::BATCH_UPDATE);
                                put_bool(&mut p, *b);
                            }
                            WireBatchOutput::Deleted(b) => {
                                p.push(tags::BATCH_DELETE);
                                put_bool(&mut p, *b);
                            }
                        }
                    }
                }
                ResponseBody::Stats(s) => {
                    for v in [
                        s.frames_in,
                        s.frames_out,
                        s.bytes_in,
                        s.bytes_out,
                        s.batches_executed,
                        s.queue_full_parks,
                        s.active_connections,
                        s.connections_opened,
                        s.connections_refused,
                        s.decode_errors,
                    ] {
                        wire::put_u64(&mut p, v);
                    }
                }
            }
        }
    }
    frame(p)
}

// ---- Decode ---------------------------------------------------------

/// A bounds-checked reader over one frame payload.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn left(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.left() < n {
            return Err(DecodeError::Truncated { needed: n, have: self.left() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        wire::get_u32(s).ok_or(DecodeError::Truncated { needed: 4, have: s.len() })
    }

    fn u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        wire::get_u64(s).ok_or(DecodeError::Truncated { needed: 8, have: s.len() })
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn name(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|_| DecodeError::BadName)
    }

    fn boolean(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::BadTag { what: "bool", tag: t }),
        }
    }

    fn opt_bytes(&mut self) -> Result<Option<Vec<u8>>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.bytes()?)),
            t => Err(DecodeError::BadTag { what: "option", tag: t }),
        }
    }

    fn bound(&mut self) -> Result<WireBound> {
        match self.u8()? {
            tags::BOUND_UNBOUNDED => Ok(WireBound::Unbounded),
            tags::BOUND_INCLUDED => Ok(WireBound::Included(self.bytes()?)),
            tags::BOUND_EXCLUDED => Ok(WireBound::Excluded(self.bytes()?)),
            t => Err(DecodeError::BadTag { what: "bound", tag: t }),
        }
    }

    fn byte_list(&mut self) -> Result<Vec<Vec<u8>>> {
        let n = self.u32()?;
        // Grown per element, never pre-allocated from the wire count: a
        // hostile count meets Truncated, not an allocation.
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.bytes()?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<()> {
        if self.left() > 0 {
            return Err(DecodeError::Trailing { extra: self.left() });
        }
        Ok(())
    }
}

/// Best-effort request id from a payload that may fail to decode, so a
/// server can address an error response even for a malformed frame.
pub fn request_id_hint(payload: &[u8]) -> Option<u64> {
    wire::get_u64(payload)
}

/// Decodes one request payload (the bytes *after* the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<Request> {
    let mut c = Cur::new(payload);
    let id = c.u64()?;
    let tag = c.u8()?;
    let op = match tag {
        tags::GET_MANY | tags::PROJECT_MANY | tags::DELETE_MANY => {
            let table = c.name()?;
            let index = c.name()?;
            let keys = c.byte_list()?;
            match tag {
                tags::GET_MANY => RequestOp::GetMany { table, index, keys },
                tags::PROJECT_MANY => RequestOp::ProjectMany { table, index, keys },
                _ => RequestOp::DeleteMany { table, index, keys },
            }
        }
        tags::INSERT_MANY => RequestOp::InsertMany { table: c.name()?, tuples: c.byte_list()? },
        tags::PUT_MANY => {
            RequestOp::PutMany { table: c.name()?, index: c.name()?, tuples: c.byte_list()? }
        }
        tags::UPDATE_MANY => {
            let table = c.name()?;
            let index = c.name()?;
            let n = c.u32()?;
            let mut pairs = Vec::new();
            for _ in 0..n {
                let k = c.bytes()?;
                let t = c.bytes()?;
                pairs.push((k, t));
            }
            RequestOp::UpdateMany { table, index, pairs }
        }
        tags::RANGE => RequestOp::Range {
            table: c.name()?,
            index: c.name()?,
            lo: c.bound()?,
            hi: c.bound()?,
            limit: c.u32()?,
        },
        tags::BATCH => {
            let table = c.name()?;
            let n = c.u32()?;
            let mut ops = Vec::new();
            for _ in 0..n {
                let kind = c.u8()?;
                ops.push(match kind {
                    tags::BATCH_GET => WireBatchOp::Get { index: c.name()?, key: c.bytes()? },
                    tags::BATCH_PROJECT => {
                        WireBatchOp::Project { index: c.name()?, key: c.bytes()? }
                    }
                    tags::BATCH_PUT => WireBatchOp::Put { index: c.name()?, tuple: c.bytes()? },
                    tags::BATCH_UPDATE => {
                        WireBatchOp::Update { index: c.name()?, key: c.bytes()?, tuple: c.bytes()? }
                    }
                    tags::BATCH_DELETE => WireBatchOp::Delete { index: c.name()?, key: c.bytes()? },
                    t => return Err(DecodeError::BadTag { what: "batch op", tag: t }),
                });
            }
            RequestOp::Batch { table, ops }
        }
        tags::STATS => RequestOp::Stats,
        t => return Err(DecodeError::BadTag { what: "op", tag: t }),
    };
    c.finish()?;
    Ok(Request { id, op })
}

/// Decodes one response payload (the bytes *after* the length prefix).
pub fn decode_response(payload: &[u8]) -> Result<Response> {
    let mut c = Cur::new(payload);
    let id = c.u64()?;
    let status = c.u8()?;
    let body = match status {
        tags::STATUS_ERR => ResponseBody::Error { message: c.name()? },
        tags::STATUS_OK => {
            let tag = c.u8()?;
            match tag {
                tags::GET_MANY => {
                    let n = c.u32()?;
                    let mut rows = Vec::new();
                    for _ in 0..n {
                        rows.push(c.opt_bytes()?);
                    }
                    ResponseBody::GetMany { rows }
                }
                tags::PROJECT_MANY => {
                    let n = c.u32()?;
                    let mut rows = Vec::new();
                    for _ in 0..n {
                        rows.push(match c.u8()? {
                            0 => None,
                            1 => {
                                let payload = c.bytes()?;
                                let index_only = c.boolean()?;
                                Some(WireProjection { payload, index_only })
                            }
                            t => return Err(DecodeError::BadTag { what: "option", tag: t }),
                        });
                    }
                    ResponseBody::ProjectMany { rows }
                }
                tags::INSERT_MANY | tags::PUT_MANY => {
                    let n = c.u32()?;
                    let mut rids = Vec::new();
                    for _ in 0..n {
                        rids.push(c.u64()?);
                    }
                    if tag == tags::INSERT_MANY {
                        ResponseBody::InsertMany { rids }
                    } else {
                        ResponseBody::PutMany { rids }
                    }
                }
                tags::UPDATE_MANY | tags::DELETE_MANY => {
                    let n = c.u32()?;
                    let mut applied = Vec::new();
                    for _ in 0..n {
                        applied.push(c.boolean()?);
                    }
                    if tag == tags::UPDATE_MANY {
                        ResponseBody::UpdateMany { applied }
                    } else {
                        ResponseBody::DeleteMany { applied }
                    }
                }
                tags::RANGE => {
                    let n = c.u32()?;
                    let mut rows = Vec::new();
                    for _ in 0..n {
                        let k = c.bytes()?;
                        let t = c.bytes()?;
                        rows.push((k, t));
                    }
                    let more = c.boolean()?;
                    let resume = c.opt_bytes()?;
                    ResponseBody::Range { rows, more, resume }
                }
                tags::BATCH => {
                    let n = c.u32()?;
                    let mut outputs = Vec::new();
                    for _ in 0..n {
                        let kind = c.u8()?;
                        outputs.push(match kind {
                            tags::BATCH_GET => WireBatchOutput::Tuple(c.opt_bytes()?),
                            tags::BATCH_PROJECT => WireBatchOutput::Projection(match c.u8()? {
                                0 => None,
                                1 => {
                                    let payload = c.bytes()?;
                                    let index_only = c.boolean()?;
                                    Some(WireProjection { payload, index_only })
                                }
                                t => return Err(DecodeError::BadTag { what: "option", tag: t }),
                            }),
                            tags::BATCH_PUT => WireBatchOutput::Put(c.u64()?),
                            tags::BATCH_UPDATE => WireBatchOutput::Updated(c.boolean()?),
                            tags::BATCH_DELETE => WireBatchOutput::Deleted(c.boolean()?),
                            t => return Err(DecodeError::BadTag { what: "batch output", tag: t }),
                        });
                    }
                    ResponseBody::Batch { outputs }
                }
                tags::STATS => ResponseBody::Stats(WireServerStats {
                    frames_in: c.u64()?,
                    frames_out: c.u64()?,
                    bytes_in: c.u64()?,
                    bytes_out: c.u64()?,
                    batches_executed: c.u64()?,
                    queue_full_parks: c.u64()?,
                    active_connections: c.u64()?,
                    connections_opened: c.u64()?,
                    connections_refused: c.u64()?,
                    decode_errors: c.u64()?,
                }),
                t => return Err(DecodeError::BadTag { what: "response op", tag: t }),
            }
        }
        t => return Err(DecodeError::BadTag { what: "status", tag: t }),
    };
    c.finish()?;
    Ok(Response { id, body })
}

// ---- Framing --------------------------------------------------------

/// Incremental frame splitter: feed it transport bytes in any chunking,
/// pull complete payloads out. Sans-io — it never touches a socket.
///
/// The length prefix is validated against the frame cap *before* the
/// body arrives, so an attacker declaring a 4 GiB frame is rejected
/// after 4 bytes, not buffered.
#[derive(Debug)]
pub struct Framer {
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
}

impl Default for Framer {
    fn default() -> Self {
        Self::new()
    }
}

impl Framer {
    /// A framer with the [`DEFAULT_MAX_FRAME`] cap.
    pub fn new() -> Self {
        Self::with_max(DEFAULT_MAX_FRAME)
    }

    /// A framer with an explicit frame cap.
    pub fn with_max(max_frame: usize) -> Self {
        Framer { buf: Vec::new(), start: 0, max_frame }
    }

    /// Appends transport bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: reclaim consumed prefix before growing.
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a payload.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete payload, `Ok(None)` when more bytes are
    /// needed, or [`DecodeError::Oversize`] when the pending length
    /// prefix exceeds the cap.
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>> {
        let avail = &self.buf[self.start..];
        let Some(len) = wire::get_u32(avail) else { return Ok(None) };
        let len = len as usize;
        if len > self.max_frame {
            return Err(DecodeError::Oversize { len, max: self.max_frame });
        }
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = avail[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.start += HEADER_LEN + len;
        Ok(Some(payload))
    }

    /// The named error for an EOF that cuts a frame short: `Some` when
    /// bytes are buffered but don't form a complete frame, `None` when
    /// the stream ended on a clean frame boundary.
    pub fn eof_error(&self) -> Option<DecodeError> {
        let have = self.buffered();
        if have == 0 {
            return None;
        }
        let needed = match wire::get_u32(&self.buf[self.start..]) {
            Some(len) => HEADER_LEN + len as usize,
            None => HEADER_LEN,
        };
        Some(DecodeError::Truncated { needed, have })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            id: 42,
            op: RequestOp::UpdateMany {
                table: "t".into(),
                index: "pk".into(),
                pairs: vec![(vec![1, 2], vec![3, 4, 5]), (vec![], vec![9])],
            },
        }
    }

    #[test]
    fn request_round_trip_all_ops() {
        let ops = vec![
            RequestOp::GetMany { table: "t".into(), index: "pk".into(), keys: vec![vec![1]] },
            RequestOp::ProjectMany { table: "t".into(), index: "i".into(), keys: vec![] },
            RequestOp::InsertMany { table: "t".into(), tuples: vec![vec![0; 24]] },
            RequestOp::PutMany { table: "t".into(), index: "pk".into(), tuples: vec![vec![7]] },
            RequestOp::UpdateMany {
                table: "t".into(),
                index: "pk".into(),
                pairs: vec![(vec![1], vec![2])],
            },
            RequestOp::DeleteMany { table: "t".into(), index: "pk".into(), keys: vec![vec![1]] },
            RequestOp::Range {
                table: "t".into(),
                index: "pk".into(),
                lo: WireBound::Included(vec![0, 1]),
                hi: WireBound::Excluded(vec![9]),
                limit: 128,
            },
            RequestOp::Batch {
                table: "t".into(),
                ops: vec![
                    WireBatchOp::Get { index: "pk".into(), key: vec![1] },
                    WireBatchOp::Put { index: "pk".into(), tuple: vec![2; 8] },
                    WireBatchOp::Update { index: "pk".into(), key: vec![3], tuple: vec![4] },
                    WireBatchOp::Delete { index: "pk".into(), key: vec![5] },
                    WireBatchOp::Project { index: "pk".into(), key: vec![6] },
                ],
            },
            RequestOp::Stats,
        ];
        for (i, op) in ops.into_iter().enumerate() {
            let req = Request { id: i as u64 * 7 + 1, op };
            let bytes = encode_request(&req);
            let decoded = decode_request(&bytes[HEADER_LEN..]).expect("round trip");
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn response_round_trip_all_bodies() {
        let bodies = vec![
            ResponseBody::Error { message: "no table named x".into() },
            ResponseBody::GetMany { rows: vec![Some(vec![1, 2]), None] },
            ResponseBody::ProjectMany {
                rows: vec![
                    Some(WireProjection { payload: vec![1], index_only: true }),
                    None,
                    Some(WireProjection { payload: vec![], index_only: false }),
                ],
            },
            ResponseBody::InsertMany { rids: vec![1, u64::MAX >> 1] },
            ResponseBody::PutMany { rids: vec![] },
            ResponseBody::UpdateMany { applied: vec![true, false] },
            ResponseBody::DeleteMany { applied: vec![false] },
            ResponseBody::Range {
                rows: vec![(vec![1], vec![2, 3])],
                more: true,
                resume: Some(vec![1]),
            },
            ResponseBody::Range { rows: vec![], more: false, resume: None },
            ResponseBody::Batch {
                outputs: vec![
                    WireBatchOutput::Tuple(Some(vec![1])),
                    WireBatchOutput::Tuple(None),
                    WireBatchOutput::Projection(Some(WireProjection {
                        payload: vec![2],
                        index_only: false,
                    })),
                    WireBatchOutput::Projection(None),
                    WireBatchOutput::Put(77),
                    WireBatchOutput::Updated(true),
                    WireBatchOutput::Deleted(false),
                ],
            },
            ResponseBody::Stats(WireServerStats {
                frames_in: 1,
                frames_out: 2,
                bytes_in: 3,
                bytes_out: 4,
                batches_executed: 5,
                queue_full_parks: 6,
                active_connections: 7,
                connections_opened: 8,
                connections_refused: 9,
                decode_errors: 10,
            }),
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let resp = Response { id: i as u64, body };
            let bytes = encode_response(&resp);
            let decoded = decode_response(&bytes[HEADER_LEN..]).expect("round trip");
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn golden_frame_layout_is_pinned() {
        // One hand-checked frame so the byte layout can't drift
        // silently: get_many(id=0x0102030405060708, t="t", pk="pk",
        // keys=[[0xAA]]).
        let req = Request {
            id: 0x0102_0304_0506_0708,
            op: RequestOp::GetMany {
                table: "t".into(),
                index: "pk".into(),
                keys: vec![vec![0xAA]],
            },
        };
        let bytes = encode_request(&req);
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            0, 0, 0, 29,                          // frame length
            1, 2, 3, 4, 5, 6, 7, 8,               // request id (big-endian)
            1,                                    // op tag: GET_MANY
            0, 0, 0, 1, b't',                     // table name
            0, 0, 0, 2, b'p', b'k',               // index name
            0, 0, 0, 1,                           // key count
            0, 0, 0, 1, 0xAA,                     // key[0]
        ];
        assert_eq!(bytes, expected);
    }

    #[test]
    fn truncation_at_every_split_yields_named_error_or_incomplete() {
        let bytes = encode_request(&sample_request());
        let payload = &bytes[HEADER_LEN..];
        for cut in 0..payload.len() {
            match decode_request(&payload[..cut]) {
                Err(DecodeError::Truncated { .. }) => {}
                Err(e) => panic!("cut at {cut}: unexpected error {e}"),
                Ok(_) => panic!("cut at {cut}: decoded from a truncated body"),
            }
        }
        assert!(decode_request(payload).is_ok());
    }

    #[test]
    fn unknown_tags_error_by_name() {
        // Op tag 200.
        let mut p = Vec::new();
        nbb_encoding::wire::put_u64(&mut p, 1);
        p.push(200);
        assert_eq!(decode_request(&p), Err(DecodeError::BadTag { what: "op", tag: 200 }));

        // Status byte 9.
        let mut p = Vec::new();
        nbb_encoding::wire::put_u64(&mut p, 1);
        p.push(9);
        assert_eq!(decode_response(&p), Err(DecodeError::BadTag { what: "status", tag: 9 }));

        // Bad bound tag inside a range request.
        let mut p = Vec::new();
        nbb_encoding::wire::put_u64(&mut p, 1);
        p.push(7); // RANGE
        put_str(&mut p, "t");
        put_str(&mut p, "pk");
        p.push(7); // bound tag 7: invalid
        assert_eq!(decode_request(&p), Err(DecodeError::BadTag { what: "bound", tag: 7 }));
    }

    #[test]
    fn trailing_garbage_is_named() {
        let bytes = encode_request(&sample_request());
        let mut payload = bytes[HEADER_LEN..].to_vec();
        payload.extend_from_slice(&[0xDE, 0xAD]);
        assert_eq!(decode_request(&payload), Err(DecodeError::Trailing { extra: 2 }));
    }

    #[test]
    fn bad_utf8_name_is_named() {
        let mut p = Vec::new();
        nbb_encoding::wire::put_u64(&mut p, 1);
        p.push(1); // GET_MANY
        put_bytes(&mut p, &[0xFF, 0xFE]); // invalid utf-8 table name
        put_str(&mut p, "pk");
        nbb_encoding::wire::put_u32(&mut p, 0);
        assert_eq!(decode_request(&p), Err(DecodeError::BadName));
    }

    #[test]
    fn hostile_count_meets_truncation_not_allocation() {
        // Claims 4 billion keys but carries none: must error fast.
        let mut p = Vec::new();
        nbb_encoding::wire::put_u64(&mut p, 1);
        p.push(1); // GET_MANY
        put_str(&mut p, "t");
        put_str(&mut p, "pk");
        nbb_encoding::wire::put_u32(&mut p, u32::MAX);
        assert!(matches!(decode_request(&p), Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn framer_reassembles_byte_at_a_time() {
        let a = encode_request(&sample_request());
        let b =
            encode_response(&Response { id: 9, body: ResponseBody::GetMany { rows: vec![None] } });
        let stream: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        let mut f = Framer::new();
        let mut payloads = Vec::new();
        for byte in stream {
            f.extend(&[byte]);
            while let Some(p) = f.next_payload().expect("no decode error") {
                payloads.push(p);
            }
        }
        assert_eq!(payloads.len(), 2);
        assert_eq!(decode_request(&payloads[0]).expect("request"), sample_request());
        assert_eq!(decode_response(&payloads[1]).expect("response").id, 9);
        assert_eq!(f.buffered(), 0);
        assert_eq!(f.eof_error(), None);
    }

    #[test]
    fn framer_rejects_oversize_before_buffering_the_body() {
        let mut f = Framer::with_max(64);
        let mut header = Vec::new();
        wire::put_u32(&mut header, 65);
        f.extend(&header);
        assert_eq!(f.next_payload(), Err(DecodeError::Oversize { len: 65, max: 64 }));
    }

    #[test]
    fn framer_names_truncation_at_eof() {
        let bytes = encode_request(&sample_request());
        let mut f = Framer::new();
        f.extend(&bytes[..bytes.len() - 3]);
        assert_eq!(f.next_payload(), Ok(None));
        assert_eq!(
            f.eof_error(),
            Some(DecodeError::Truncated { needed: bytes.len(), have: bytes.len() - 3 })
        );
        // A header cut below 4 bytes still names itself.
        let mut f = Framer::new();
        f.extend(&bytes[..2]);
        assert_eq!(f.eof_error(), Some(DecodeError::Truncated { needed: 4, have: 2 }));
    }

    #[test]
    fn request_id_hint_survives_malformed_tails() {
        let mut p = Vec::new();
        nbb_encoding::wire::put_u64(&mut p, 0xFACE);
        p.push(200); // unknown op
        assert_eq!(request_id_hint(&p), Some(0xFACE));
        assert_eq!(request_id_hint(&[1, 2]), None);
    }
}
