//! Schema-as-hint optimization (§4.1): treat declared types as
//! declarative hints, analyze actual content, and materialize the
//! cheapest lossless physical representation.
//!
//! [`analyze_table`] produces a [`SchemaReport`] (the §4.1 waste table);
//! [`encode_column`]/[`EncodedColumn`] actually build the optimized
//! representation and prove the round trip, so reported savings are
//! measured, not estimated.

use crate::bitpack::BitPacked;
use crate::dict::DictColumn;
use crate::inference::{analyze_column, ColumnAnalysis, DeclaredType, PhysicalType, Value};
use crate::timestamp;

/// A column declaration: name plus the programmer-supplied type hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared storage type.
    pub declared: DeclaredType,
}

impl ColumnDef {
    /// Shorthand constructor.
    pub fn new(name: &str, declared: DeclaredType) -> Self {
        ColumnDef { name: name.to_string(), declared }
    }
}

/// A table schema: ordered column declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Table name (for reports).
    pub table: String,
    /// Columns in storage order.
    pub columns: Vec<ColumnDef>,
}

/// Per-table analysis result — one row of the paper's §4.1 summary
/// ("16% to 83% of waste due to inefficient physical encoding").
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaReport {
    /// Table name.
    pub table: String,
    /// Rows analyzed.
    pub rows: usize,
    /// Per-column verdicts.
    pub columns: Vec<ColumnAnalysis>,
}

impl SchemaReport {
    /// Declared bytes for the whole table.
    pub fn declared_bytes(&self) -> f64 {
        self.columns.iter().map(|c| c.declared_bits * c.rows as f64 / 8.0).sum()
    }

    /// Optimized bytes for the whole table.
    pub fn optimized_bytes(&self) -> f64 {
        self.columns.iter().map(|c| c.recommended_bits * c.rows as f64 / 8.0).sum()
    }

    /// Table-level waste fraction.
    pub fn waste_fraction(&self) -> f64 {
        let d = self.declared_bytes();
        if d <= 0.0 {
            0.0
        } else {
            1.0 - self.optimized_bytes() / d
        }
    }

    /// Renders an aligned text table of the per-column verdicts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "table {}  ({} rows): {:.1}% waste ({:.1} KB -> {:.1} KB)\n",
            self.table,
            self.rows,
            self.waste_fraction() * 100.0,
            self.declared_bytes() / 1024.0,
            self.optimized_bytes() / 1024.0,
        ));
        out.push_str(&format!(
            "  {:<16} {:>10} {:>12} {:>7}  {}\n",
            "column", "declared", "recommended", "waste", "reason"
        ));
        for c in &self.columns {
            out.push_str(&format!(
                "  {:<16} {:>8.1}b {:>10.1}b {:>6.1}%  {}\n",
                c.name,
                c.declared_bits,
                c.recommended_bits,
                c.waste_fraction() * 100.0,
                c.reason
            ));
        }
        out
    }
}

/// Analyzes every column of a row-major table.
///
/// # Panics
/// Panics if a row's arity differs from the schema's.
pub fn analyze_table(schema: &Schema, rows: &[Vec<Value>]) -> SchemaReport {
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.len(), schema.columns.len(), "row {i} arity mismatch");
    }
    let columns = schema
        .columns
        .iter()
        .enumerate()
        .map(|(ci, def)| {
            let values: Vec<Value> = rows.iter().map(|r| r[ci].clone()).collect();
            analyze_column(&def.name, def.declared, &values)
        })
        .collect();
    SchemaReport { table: schema.table.clone(), rows: rows.len(), columns }
}

/// A materialized optimized column.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedColumn {
    /// All rows share this value.
    Constant {
        /// The single value.
        value: Box<Value>,
        /// Row count.
        rows: usize,
    },
    /// Bit-packed booleans.
    Bits(BitPacked),
    /// Frame-of-reference packed integers.
    Ints {
        /// Subtracted base.
        base: i64,
        /// Packed offsets.
        packed: BitPacked,
    },
    /// Timestamps as packed 32-bit epochs.
    Timestamps(BitPacked),
    /// Numeric strings as packed integers.
    NumericStrings(BitPacked),
    /// Dictionary-coded strings.
    Dict(DictColumn),
    /// Raw fixed-width strings.
    Strings(Vec<String>),
}

impl EncodedColumn {
    /// Measured size in bytes of the encoded form.
    pub fn byte_len(&self) -> usize {
        match self {
            EncodedColumn::Constant { value, .. } => match value.as_ref() {
                Value::Str(s) => s.len() + 4,
                _ => 8,
            },
            EncodedColumn::Bits(b)
            | EncodedColumn::Timestamps(b)
            | EncodedColumn::NumericStrings(b) => b.byte_len(),
            EncodedColumn::Ints { packed, .. } => 8 + packed.byte_len(),
            EncodedColumn::Dict(d) => d.byte_len(),
            EncodedColumn::Strings(v) => v.iter().map(|s| s.len() + 4).sum(),
        }
    }
}

/// Encodes `values` per the recommendation. NULLs are not supported by
/// the materializer (the report accounts for them via a null bitmap);
/// callers with NULLs should substitute a sentinel first.
pub fn encode_column(values: &[Value], ty: &PhysicalType) -> EncodedColumn {
    match ty {
        PhysicalType::Constant => EncodedColumn::Constant {
            value: Box::new(values.first().cloned().unwrap_or(Value::Null)),
            rows: values.len(),
        },
        PhysicalType::Bit => {
            let bits: Vec<u64> = values
                .iter()
                .map(|v| match v {
                    Value::Bool(b) => *b as u64,
                    Value::Int(i) => (*i != 0) as u64,
                    _ => panic!("Bit encoding over non-boolean value"),
                })
                .collect();
            EncodedColumn::Bits(BitPacked::with_bits(&bits, 1))
        }
        PhysicalType::IntOffset { base, bits } => {
            let offs: Vec<u64> = values
                .iter()
                .map(|v| match v {
                    Value::Int(i) => i.wrapping_sub(*base) as u64,
                    Value::Bool(b) => (*b as i64).wrapping_sub(*base) as u64,
                    _ => panic!("Int encoding over non-integer value"),
                })
                .collect();
            EncodedColumn::Ints { base: *base, packed: BitPacked::with_bits(&offs, *bits) }
        }
        PhysicalType::Timestamp32 => {
            let epochs: Vec<u64> = values
                .iter()
                .map(|v| match v {
                    Value::Str(s) => u64::from(timestamp::to_u32(s).expect("validated timestamp")),
                    _ => panic!("Timestamp encoding over non-string"),
                })
                .collect();
            EncodedColumn::Timestamps(BitPacked::with_bits(&epochs, 32))
        }
        PhysicalType::NumericString { bits } => {
            let nums: Vec<u64> = values
                .iter()
                .map(|v| match v {
                    Value::Str(s) => s.parse::<u64>().expect("validated numeric string"),
                    _ => panic!("NumericString encoding over non-string"),
                })
                .collect();
            EncodedColumn::NumericStrings(BitPacked::with_bits(&nums, *bits))
        }
        PhysicalType::Dict { .. } => {
            let strs: Vec<&[u8]> = values
                .iter()
                .map(|v| match v {
                    Value::Str(s) => s.as_bytes(),
                    _ => panic!("Dict encoding over non-string"),
                })
                .collect();
            EncodedColumn::Dict(DictColumn::encode(&strs))
        }
        PhysicalType::FixedStr { .. } => EncodedColumn::Strings(
            values
                .iter()
                .map(|v| match v {
                    Value::Str(s) => s.clone(),
                    other => format!("{other:?}"),
                })
                .collect(),
        ),
    }
}

/// Decodes an [`EncodedColumn`] back to values (lossless round trip).
pub fn decode_column(col: &EncodedColumn) -> Vec<Value> {
    match col {
        EncodedColumn::Constant { value, rows } => vec![(**value).clone(); *rows],
        EncodedColumn::Bits(b) => b.to_vec().into_iter().map(|v| Value::Bool(v != 0)).collect(),
        EncodedColumn::Ints { base, packed } => {
            packed.to_vec().into_iter().map(|o| Value::Int(base.wrapping_add(o as i64))).collect()
        }
        EncodedColumn::Timestamps(b) => {
            b.to_vec().into_iter().map(|e| Value::Str(timestamp::from_u32(e as u32))).collect()
        }
        EncodedColumn::NumericStrings(b) => {
            b.to_vec().into_iter().map(|n| Value::Str(n.to_string())).collect()
        }
        EncodedColumn::Dict(d) => d
            .to_vec()
            .into_iter()
            .map(|b| Value::Str(String::from_utf8_lossy(&b).into_owned()))
            .collect(),
        EncodedColumn::Strings(v) => v.iter().map(|s| Value::Str(s.clone())).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiki_like_schema() -> Schema {
        Schema {
            table: "revision".into(),
            columns: vec![
                ColumnDef::new("rev_id", DeclaredType::Int64),
                ColumnDef::new("rev_timestamp", DeclaredType::Str { width: 14 }),
                ColumnDef::new("rev_minor_edit", DeclaredType::Bool),
                ColumnDef::new("rev_len", DeclaredType::Int64),
            ],
        }
    }

    fn wiki_like_rows(n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i as i64 + 1),
                    Value::Str(timestamp::format_epoch(i as u64 * 311)),
                    Value::Bool(i % 3 == 0),
                    Value::Int((i as i64 * 97) % 60_000),
                ]
            })
            .collect()
    }

    #[test]
    fn report_totals_are_consistent() {
        let schema = wiki_like_schema();
        let rows = wiki_like_rows(500);
        let rep = analyze_table(&schema, &rows);
        assert_eq!(rep.rows, 500);
        assert_eq!(rep.columns.len(), 4);
        let w = rep.waste_fraction();
        assert!((0.16..=0.83).contains(&w), "waste {w} outside the paper's band");
        assert!(rep.declared_bytes() > rep.optimized_bytes());
    }

    #[test]
    fn render_contains_all_columns() {
        let rep = analyze_table(&wiki_like_schema(), &wiki_like_rows(50));
        let text = rep.render();
        for c in ["rev_id", "rev_timestamp", "rev_minor_edit", "rev_len"] {
            assert!(text.contains(c), "missing {c} in:\n{text}");
        }
    }

    #[test]
    fn encode_decode_round_trip_all_types() {
        let schema = wiki_like_schema();
        let rows = wiki_like_rows(200);
        let rep = analyze_table(&schema, &rows);
        for (ci, analysis) in rep.columns.iter().enumerate() {
            let values: Vec<Value> = rows.iter().map(|r| r[ci].clone()).collect();
            let enc = encode_column(&values, &analysis.recommended);
            let dec = decode_column(&enc);
            assert_eq!(dec, values, "column {} must round-trip", analysis.name);
        }
    }

    #[test]
    fn measured_sizes_track_estimates() {
        let schema = wiki_like_schema();
        let rows = wiki_like_rows(1000);
        let rep = analyze_table(&schema, &rows);
        for (ci, analysis) in rep.columns.iter().enumerate() {
            let values: Vec<Value> = rows.iter().map(|r| r[ci].clone()).collect();
            let enc = encode_column(&values, &analysis.recommended);
            let measured = enc.byte_len() as f64;
            let estimated = analysis.recommended_bits * values.len() as f64 / 8.0;
            assert!(
                measured <= estimated * 1.25 + 64.0,
                "column {}: measured {measured} >> estimated {estimated}",
                analysis.name
            );
        }
    }

    #[test]
    fn dict_round_trip() {
        let vals: Vec<Value> = (0..100).map(|i| Value::str(["a", "bb", "ccc"][i % 3])).collect();
        let a = analyze_column_helper(&vals);
        let enc = encode_column(&vals, &a);
        assert_eq!(decode_column(&enc), vals);
    }

    fn analyze_column_helper(vals: &[Value]) -> PhysicalType {
        crate::inference::analyze_column("x", DeclaredType::Str { width: 8 }, vals).recommended
    }

    #[test]
    fn constant_column_round_trip() {
        let vals = vec![Value::Int(9); 42];
        let enc = encode_column(&vals, &PhysicalType::Constant);
        assert_eq!(enc.byte_len(), 8);
        assert_eq!(decode_column(&enc), vals);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let schema = wiki_like_schema();
        analyze_table(&schema, &[vec![Value::Int(1)]]);
    }
}
