//! Semantic IDs (§4.2): exploiting the opaqueness of surrogate keys.
//!
//! Applications treat AUTO_INCREMENT ids as opaque — only uniqueness
//! matters. The paper proposes two exploits:
//!
//! 1. **Embedding placement**: reassign the value so the id *contains*
//!    the tuple's partition ([`SemanticIdLayout`]), making query routing
//!    a bit-shift instead of a routing-table lookup. [`RoutingTable`] is
//!    the baseline it replaces; the bench compares their memory.
//! 2. **Reduction**: drop the id entirely and use the tuple's physical
//!    address as a proxy (column stores infer ids from offsets) — see
//!    [`rid_proxy`].

use std::collections::HashMap;

/// Bit layout of a semantic id: `partition` in the high bits, a
/// per-partition sequence in the low bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemanticIdLayout {
    partition_bits: u32,
}

impl SemanticIdLayout {
    /// Creates a layout with `partition_bits` high bits (1..=16).
    pub fn new(partition_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&partition_bits),
            "partition_bits must be in 1..=16, got {partition_bits}"
        );
        SemanticIdLayout { partition_bits }
    }

    /// Number of addressable partitions.
    pub fn max_partitions(&self) -> u32 {
        1 << self.partition_bits
    }

    /// Largest per-partition sequence number.
    pub fn max_seq(&self) -> u64 {
        (1u64 << (64 - self.partition_bits)) - 1
    }

    /// Builds an id from partition and sequence.
    ///
    /// # Panics
    /// Panics if either component exceeds its field.
    pub fn encode(&self, partition: u32, seq: u64) -> u64 {
        assert!(partition < self.max_partitions(), "partition {partition} out of range");
        assert!(seq <= self.max_seq(), "sequence {seq} out of range");
        (u64::from(partition) << (64 - self.partition_bits)) | seq
    }

    /// Extracts the partition — the O(1) routing operation.
    pub fn partition_of(&self, id: u64) -> u32 {
        (id >> (64 - self.partition_bits)) as u32
    }

    /// Extracts the per-partition sequence.
    pub fn seq_of(&self, id: u64) -> u64 {
        id & self.max_seq()
    }

    /// Re-homes an id to a new partition, preserving its sequence.
    ///
    /// This is the §3.1/§4.2 connection: moving a tuple between hot and
    /// cold partitions is an id update; if data is clustered on the id,
    /// "simply updating the ID value is enough to physically move the
    /// tuple".
    pub fn rehome(&self, id: u64, new_partition: u32) -> u64 {
        self.encode(new_partition, self.seq_of(id))
    }
}

/// Allocator handing out semantic ids per partition.
#[derive(Debug, Clone)]
pub struct SemanticIdAllocator {
    layout: SemanticIdLayout,
    next_seq: Vec<u64>,
}

impl SemanticIdAllocator {
    /// Creates an allocator for `partitions` partitions.
    pub fn new(layout: SemanticIdLayout, partitions: u32) -> Self {
        assert!(partitions <= layout.max_partitions());
        SemanticIdAllocator { layout, next_seq: vec![0; partitions as usize] }
    }

    /// The layout in use.
    pub fn layout(&self) -> SemanticIdLayout {
        self.layout
    }

    /// Allocates the next id in `partition`.
    pub fn allocate(&mut self, partition: u32) -> u64 {
        let seq = self.next_seq[partition as usize];
        self.next_seq[partition as usize] += 1;
        self.layout.encode(partition, seq)
    }
}

/// The baseline §4.2 argues against: an explicit id → partition map
/// ("such tables can easily become a resource and performance
/// bottleneck").
#[derive(Debug, Default, Clone)]
pub struct RoutingTable {
    map: HashMap<u64, u32>,
}

impl RoutingTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the location of `id`.
    pub fn insert(&mut self, id: u64, partition: u32) {
        self.map.insert(id, partition);
    }

    /// Looks up the partition of `id`.
    pub fn route(&self, id: u64) -> Option<u32> {
        self.map.get(&id).copied()
    }

    /// Number of routed tuples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate resident bytes (key + value + hash-table overhead),
    /// for the memory comparison in the §4.2 bench.
    pub fn approx_bytes(&self) -> usize {
        // 8B key + 4B value, ~1.75x table overhead under SwissTable-like
        // load factors.
        (self.map.len() as f64 * (8.0 + 4.0) * 1.75) as usize
    }
}

/// ID-reduction helpers: using the packed physical address itself as the
/// surrogate key ("ID fields representing uniqueness can be eliminated
/// and the tuple's physical address can be used as a proxy").
pub mod rid_proxy {
    /// Bytes saved per tuple by dropping an 8-byte id column.
    pub const BYTES_SAVED_PER_TUPLE: usize = 8;

    /// Derives the proxy id from a packed record address (the identity
    /// function, made explicit for call sites).
    #[inline]
    pub fn id_from_rid(packed_rid: u64) -> u64 {
        packed_rid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let l = SemanticIdLayout::new(8);
        for p in [0u32, 1, 200, 255] {
            for s in [0u64, 1, 999_999, l.max_seq()] {
                let id = l.encode(p, s);
                assert_eq!(l.partition_of(id), p);
                assert_eq!(l.seq_of(id), s);
            }
        }
    }

    #[test]
    fn ids_unique_across_partitions() {
        let l = SemanticIdLayout::new(4);
        let mut a = SemanticIdAllocator::new(l, 16);
        let mut seen = std::collections::HashSet::new();
        for p in 0..16u32 {
            for _ in 0..100 {
                assert!(seen.insert(a.allocate(p)));
            }
        }
        assert_eq!(seen.len(), 1600);
    }

    #[test]
    fn rehome_preserves_sequence() {
        let l = SemanticIdLayout::new(2);
        let id = l.encode(0, 777);
        let moved = l.rehome(id, 3);
        assert_eq!(l.partition_of(moved), 3);
        assert_eq!(l.seq_of(moved), 777);
        assert_ne!(id, moved);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overflow_partition_panics() {
        SemanticIdLayout::new(2).encode(4, 0);
    }

    #[test]
    #[should_panic(expected = "partition_bits")]
    fn zero_partition_bits_rejected() {
        SemanticIdLayout::new(0);
    }

    #[test]
    fn routing_table_baseline_works_but_costs_memory() {
        let l = SemanticIdLayout::new(8);
        let mut table = RoutingTable::new();
        let mut alloc = SemanticIdAllocator::new(l, 4);
        let mut ids = Vec::new();
        for p in 0..4u32 {
            for _ in 0..1000 {
                let id = alloc.allocate(p);
                table.insert(id, p);
                ids.push((id, p));
            }
        }
        // Both mechanisms agree…
        for (id, p) in &ids {
            assert_eq!(table.route(*id), Some(*p));
            assert_eq!(l.partition_of(*id), *p);
        }
        // …but the table costs linear memory while the layout costs none.
        assert!(table.approx_bytes() > 4000 * 12);
    }

    #[test]
    fn rid_proxy_is_identity() {
        assert_eq!(rid_proxy::id_from_rid(0xABCD), 0xABCD);
        assert_eq!(rid_proxy::BYTES_SAVED_PER_TUPLE, 8);
    }
}
