//! Column analysis: finding encoding waste (§4.1).
//!
//! "Column values can be analyzed to understand the typical value range
//! or the content properties (e.g., only numerical strings) and compare
//! them against the declared types in the schema." This module does
//! exactly that: given a declared type and the actual values, it infers
//! the cheapest physical type that losslessly represents the data and
//! quantifies the waste.
//!
//! Detectors, in priority order:
//! 1. constant columns → 0 bits;
//! 2. booleans (or 0/1 ints) stored in bytes → 1 bit;
//! 3. 14-char `YYYYMMDDHHMMSS` string timestamps → 32-bit epoch
//!    (Wikipedia's revision table: 14 bytes → 4 bytes);
//! 4. numeric strings → range-sized integers;
//! 5. integers with a small range → frame-of-reference bit-packing
//!    ("int fields that store small value ranges which can easily be
//!    encoded in 8, or even 4 bits");
//! 6. low-cardinality strings → dictionary codes;
//! 7. everything else → fixed width at the observed maximum.

use crate::bitpack::min_bits;
use std::collections::BTreeSet;

/// A value sampled from a column.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Convenience constructor from `&str`.
    pub fn str(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

/// The schema-declared ("hint", per §4.1) storage type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclaredType {
    /// 8-byte integer.
    Int64,
    /// 4-byte integer.
    Int32,
    /// Fixed/avg `width`-byte string.
    Str {
        /// Declared byte width.
        width: usize,
    },
    /// Boolean stored as one byte.
    Bool,
}

impl DeclaredType {
    /// Bits per value as declared.
    pub fn bits(&self) -> f64 {
        match self {
            DeclaredType::Int64 => 64.0,
            DeclaredType::Int32 => 32.0,
            DeclaredType::Str { width } => 8.0 * *width as f64,
            DeclaredType::Bool => 8.0,
        }
    }
}

/// The inferred minimal physical representation.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalType {
    /// All values identical: store once, 0 bits per row.
    Constant,
    /// One bit per value.
    Bit,
    /// Frame-of-reference integer: `base + bits`-bit offset.
    IntOffset {
        /// Subtracted base (column minimum).
        base: i64,
        /// Offset width in bits.
        bits: u32,
    },
    /// 14-char string timestamps re-encoded as 32-bit epoch seconds.
    Timestamp32,
    /// Numeric strings re-encoded as integers.
    NumericString {
        /// Integer width in bits after conversion.
        bits: u32,
    },
    /// Dictionary-coded strings.
    Dict {
        /// Distinct values.
        cardinality: usize,
        /// Bits per row for the code.
        code_bits: u32,
        /// Amortized dictionary storage per row, in bits.
        dict_bits_per_row: f64,
    },
    /// Plain string at the observed maximum width.
    FixedStr {
        /// Maximum observed byte length.
        width: usize,
    },
}

impl PhysicalType {
    /// Bits per value under this representation (amortized).
    pub fn bits_per_value(&self) -> f64 {
        match self {
            PhysicalType::Constant => 0.0,
            PhysicalType::Bit => 1.0,
            PhysicalType::IntOffset { bits, .. } => *bits as f64,
            PhysicalType::Timestamp32 => 32.0,
            PhysicalType::NumericString { bits } => *bits as f64,
            PhysicalType::Dict { code_bits, dict_bits_per_row, .. } => {
                *code_bits as f64 + dict_bits_per_row
            }
            PhysicalType::FixedStr { width } => 8.0 * *width as f64,
        }
    }
}

/// The verdict for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnAnalysis {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub declared: DeclaredType,
    /// Recommended physical type.
    pub recommended: PhysicalType,
    /// Rows analyzed.
    pub rows: usize,
    /// Rows that were NULL.
    pub nulls: usize,
    /// Bits per value as declared.
    pub declared_bits: f64,
    /// Bits per value as recommended (plus a 1-bit null bitmap when
    /// NULLs are present).
    pub recommended_bits: f64,
    /// Human-readable explanation.
    pub reason: String,
}

impl ColumnAnalysis {
    /// Fraction of the declared footprint that is waste (`0..1`).
    pub fn waste_fraction(&self) -> f64 {
        if self.declared_bits <= 0.0 {
            0.0
        } else {
            (1.0 - self.recommended_bits / self.declared_bits).max(0.0)
        }
    }

    /// Bytes saved across the analyzed rows.
    pub fn bytes_saved(&self) -> f64 {
        (self.declared_bits - self.recommended_bits) * self.rows as f64 / 8.0
    }
}

/// Analyzes one column against its declared type.
pub fn analyze_column(name: &str, declared: DeclaredType, values: &[Value]) -> ColumnAnalysis {
    let rows = values.len();
    let nulls = values.iter().filter(|v| matches!(v, Value::Null)).count();
    let present: Vec<&Value> = values.iter().filter(|v| !matches!(v, Value::Null)).collect();
    let (recommended, reason) = infer(&present);
    let null_bit = if nulls > 0 { 1.0 } else { 0.0 };
    let declared_bits = declared.bits();
    let recommended_bits = (recommended.bits_per_value() + null_bit).min(declared_bits);
    ColumnAnalysis {
        name: name.to_string(),
        declared,
        recommended,
        rows,
        nulls,
        declared_bits,
        recommended_bits,
        reason,
    }
}

fn infer(present: &[&Value]) -> (PhysicalType, String) {
    if present.is_empty() {
        return (PhysicalType::Constant, "no non-null values".into());
    }
    // Constant?
    if present.windows(2).all(|w| w[0] == w[1]) {
        return (PhysicalType::Constant, "single distinct value".into());
    }
    // All booleans, or ints confined to {0,1}?
    let all_bool = present
        .iter()
        .all(|v| matches!(v, Value::Bool(_)) || matches!(v, Value::Int(0) | Value::Int(1)));
    if all_bool {
        return (PhysicalType::Bit, "boolean content stored wider than 1 bit".into());
    }
    // All integers?
    let ints: Option<Vec<i64>> = present
        .iter()
        .map(|v| match v {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        })
        .collect();
    if let Some(ints) = ints {
        let min = *ints.iter().min().expect("nonempty");
        let max = *ints.iter().max().expect("nonempty");
        let range = max.wrapping_sub(min) as u64;
        let bits = min_bits(range);
        return (
            PhysicalType::IntOffset { base: min, bits },
            format!("integer range [{min}, {max}] fits {bits} bits"),
        );
    }
    // All strings from here on.
    let strs: Option<Vec<&str>> = present
        .iter()
        .map(|v| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    let Some(strs) = strs else {
        // Mixed types: fall back to max width of a debug rendering.
        let width = present.iter().map(|v| format!("{v:?}").len()).max().unwrap_or(0);
        return (PhysicalType::FixedStr { width }, "mixed content; kept as bytes".into());
    };
    // Timestamps?
    if strs.iter().all(|s| crate::timestamp::looks_like_timestamp(s)) {
        return (
            PhysicalType::Timestamp32,
            "14-byte string timestamps; 4-byte epoch suffices".into(),
        );
    }
    // Numeric strings?
    if strs.iter().all(|s| !s.is_empty() && s.len() <= 19 && s.bytes().all(|b| b.is_ascii_digit()))
    {
        let max = strs.iter().map(|s| s.parse::<u64>().unwrap_or(u64::MAX)).max().unwrap();
        let bits = min_bits(max);
        return (
            PhysicalType::NumericString { bits },
            format!("numeric strings up to {max} fit {bits} bits"),
        );
    }
    // Low cardinality?
    let distinct: BTreeSet<&str> = strs.iter().copied().collect();
    let card = distinct.len();
    let n = strs.len();
    if card <= 256.min((n as f64).sqrt().ceil() as usize + 1) {
        let code_bits = min_bits(card.saturating_sub(1) as u64);
        let dict_bytes: usize = distinct.iter().map(|s| s.len() + 4).sum();
        let dict_bits_per_row = dict_bytes as f64 * 8.0 / n as f64;
        return (
            PhysicalType::Dict { cardinality: card, code_bits, dict_bits_per_row },
            format!("{card} distinct values; dictionary codes need {code_bits} bits"),
        );
    }
    // Plain string, right-sized.
    let width = strs.iter().map(|s| s.len()).max().unwrap_or(0);
    (PhysicalType::FixedStr { width }, format!("free-form strings, max {width} bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_boolean_in_bytes() {
        let vals: Vec<Value> = (0..100).map(|i| Value::Bool(i % 2 == 0)).collect();
        let a = analyze_column("is_redirect", DeclaredType::Bool, &vals);
        assert_eq!(a.recommended, PhysicalType::Bit);
        assert!((a.waste_fraction() - 0.875).abs() < 1e-9, "8 bits -> 1 bit");
    }

    #[test]
    fn detects_boolean_ints() {
        let vals: Vec<Value> = (0..100).map(|i| Value::Int(i64::from(i % 2 == 0))).collect();
        let a = analyze_column("flag", DeclaredType::Int64, &vals);
        assert_eq!(a.recommended, PhysicalType::Bit);
        assert!(a.waste_fraction() > 0.98);
    }

    #[test]
    fn detects_string_timestamps() {
        let vals: Vec<Value> = (0..50).map(|i| Value::Str(nbb_timestamp(i * 1000))).collect();
        let a = analyze_column("rev_timestamp", DeclaredType::Str { width: 14 }, &vals);
        assert_eq!(a.recommended, PhysicalType::Timestamp32);
        // 14 bytes (112 bits) -> 32 bits: waste ≈ 71%.
        assert!((a.waste_fraction() - (1.0 - 32.0 / 112.0)).abs() < 1e-9);
    }

    fn nbb_timestamp(s: u64) -> String {
        crate::timestamp::format_epoch(s)
    }

    #[test]
    fn detects_numeric_strings() {
        let vals: Vec<Value> = (0..100).map(|i| Value::Str(format!("{}", i * 7))).collect();
        let a = analyze_column("len_str", DeclaredType::Str { width: 10 }, &vals);
        match a.recommended {
            PhysicalType::NumericString { bits } => assert_eq!(bits, 10), // max 693
            other => panic!("expected NumericString, got {other:?}"),
        }
        assert!(a.waste_fraction() > 0.8);
    }

    #[test]
    fn small_range_ints_bit_packed() {
        // namespace ids 0..15 declared as Int64.
        let vals: Vec<Value> = (0..1000).map(|i| Value::Int(i % 16)).collect();
        let a = analyze_column("namespace", DeclaredType::Int64, &vals);
        match a.recommended {
            PhysicalType::IntOffset { base: 0, bits: 4 } => {}
            other => panic!("expected 4-bit offset, got {other:?}"),
        }
        assert!((a.waste_fraction() - 0.9375).abs() < 1e-9);
    }

    #[test]
    fn negative_ranges_use_offset() {
        let vals: Vec<Value> = (-50..50).map(Value::Int).collect();
        let a = analyze_column("delta", DeclaredType::Int64, &vals);
        match a.recommended {
            PhysicalType::IntOffset { base: -50, bits } => assert_eq!(bits, 7),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn constant_column_is_free() {
        let vals: Vec<Value> = (0..100).map(|_| Value::Int(7)).collect();
        let a = analyze_column("always7", DeclaredType::Int64, &vals);
        assert_eq!(a.recommended, PhysicalType::Constant);
        assert_eq!(a.recommended_bits, 0.0);
        assert_eq!(a.waste_fraction(), 1.0);
    }

    #[test]
    fn low_cardinality_strings_dictionary() {
        let tags = ["sticky", "locked", "archived", "open"];
        let vals: Vec<Value> = (0..1000).map(|i| Value::str(tags[i % 4])).collect();
        let a = analyze_column("status", DeclaredType::Str { width: 16 }, &vals);
        match &a.recommended {
            PhysicalType::Dict { cardinality: 4, code_bits: 2, .. } => {}
            other => panic!("expected 4-entry dict, got {other:?}"),
        }
        assert!(a.waste_fraction() > 0.9);
    }

    #[test]
    fn free_form_strings_right_sized() {
        let vals: Vec<Value> =
            (0..100).map(|i| Value::Str(format!("unique-title-{i}-{}", i * 31))).collect();
        let a = analyze_column("title", DeclaredType::Str { width: 255 }, &vals);
        match a.recommended {
            PhysicalType::FixedStr { width } => assert!(width < 30),
            ref other => panic!("got {other:?}"),
        }
        // 255 declared vs ~22 used: large waste.
        assert!(a.waste_fraction() > 0.85);
    }

    #[test]
    fn nulls_add_one_bit() {
        let mut vals: Vec<Value> = (0..99).map(|i| Value::Int(i % 4)).collect();
        vals.push(Value::Null);
        let a = analyze_column("nullable", DeclaredType::Int64, &vals);
        assert_eq!(a.nulls, 1);
        assert_eq!(a.recommended_bits, 2.0 + 1.0);
    }

    #[test]
    fn recommendation_never_exceeds_declared() {
        // Strings wider than declared (over-full column) must clamp.
        let vals: Vec<Value> = (0..10).map(|i| Value::Str(format!("{i:->40}"))).collect();
        let a = analyze_column("s", DeclaredType::Str { width: 10 }, &vals);
        assert!(a.recommended_bits <= a.declared_bits);
        assert_eq!(a.waste_fraction(), 0.0);
    }

    #[test]
    fn empty_column() {
        let a = analyze_column("empty", DeclaredType::Int64, &[]);
        assert_eq!(a.rows, 0);
        assert_eq!(a.recommended, PhysicalType::Constant);
    }

    #[test]
    fn all_null_column() {
        let vals = vec![Value::Null; 10];
        let a = analyze_column("allnull", DeclaredType::Str { width: 20 }, &vals);
        assert_eq!(a.nulls, 10);
        assert_eq!(a.recommended_bits, 1.0);
    }
}
