//! Fixed-width row codec: the physical layout a [`Schema`]'s declared
//! types imply, with order-preserving per-column byte encodings.
//!
//! The storage layers above this crate address tuples as raw fixed-width
//! byte ranges (a `FieldSpec` is literally `offset..offset+len`), and
//! B+Tree keys are compared with `memcmp`. [`RowLayout`] is the bridge:
//! it derives each column's byte range from the declared types and
//! encodes every [`Value`] so that byte order equals value order —
//! integers big-endian with the sign bit flipped, strings zero-padded.
//! A tuple's column bytes are therefore directly usable as index keys,
//! and typed rows round-trip through the heap without a separate key
//! codec.

use crate::inference::{DeclaredType, Value};
use std::fmt;

/// A row failed to encode or decode against a [`RowLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowCodecError {
    /// The row's value count does not match the layout's column count.
    Arity {
        /// Columns in the layout.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A value's type does not match its column's declared type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// The declared type.
        expected: DeclaredType,
        /// Debug rendering of the offending value.
        got: String,
    },
    /// A tuple's byte length does not match the layout width.
    Width {
        /// Expected tuple width.
        expected: usize,
        /// Actual byte length.
        got: usize,
    },
    /// No column with the requested name.
    NoSuchColumn(String),
}

impl fmt::Display for RowCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowCodecError::Arity { expected, got } => {
                write!(f, "row arity {got} does not match the layout's {expected} columns")
            }
            RowCodecError::TypeMismatch { column, expected, got } => {
                write!(f, "column {column} declared {expected:?} cannot hold {got}")
            }
            RowCodecError::Width { expected, got } => {
                write!(f, "tuple of {got} bytes does not match layout width {expected}")
            }
            RowCodecError::NoSuchColumn(name) => write!(f, "no column named {name}"),
        }
    }
}

impl std::error::Error for RowCodecError {}

/// One column's physical placement within the fixed-width tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnLayout {
    /// Column name (from the schema).
    pub name: String,
    /// The declared type driving the encoding.
    pub declared: DeclaredType,
    /// Byte offset within the tuple.
    pub offset: usize,
    /// Encoded width in bytes.
    pub width: usize,
}

/// The fixed-width physical layout of a schema's columns, in schema
/// order, with order-preserving value codecs per column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowLayout {
    columns: Vec<ColumnLayout>,
    tuple_width: usize,
}

/// Encoded width of one declared type.
fn declared_width(ty: DeclaredType) -> usize {
    match ty {
        DeclaredType::Int64 => 8,
        DeclaredType::Int32 => 4,
        DeclaredType::Str { width } => width,
        DeclaredType::Bool => 1,
    }
}

impl RowLayout {
    /// Derives the layout from `columns` in order: each column occupies
    /// the next `declared_width` bytes, densely packed.
    pub fn new(columns: &[(String, DeclaredType)]) -> Self {
        let mut offset = 0;
        let cols = columns
            .iter()
            .map(|(name, declared)| {
                let width = declared_width(*declared);
                let c = ColumnLayout { name: name.clone(), declared: *declared, offset, width };
                offset += width;
                c
            })
            .collect();
        RowLayout { columns: cols, tuple_width: offset }
    }

    /// Total tuple width in bytes.
    pub fn tuple_width(&self) -> usize {
        self.tuple_width
    }

    /// The columns, in tuple order.
    pub fn columns(&self) -> &[ColumnLayout] {
        &self.columns
    }

    /// Looks up a column's layout by name.
    pub fn column(&self, name: &str) -> Result<&ColumnLayout, RowCodecError> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| RowCodecError::NoSuchColumn(name.to_string()))
    }

    /// Encodes one value into its column's order-preserving bytes.
    pub fn encode_value(col: &ColumnLayout, v: &Value) -> Result<Vec<u8>, RowCodecError> {
        let mismatch = || RowCodecError::TypeMismatch {
            column: col.name.clone(),
            expected: col.declared,
            got: format!("{v:?}"),
        };
        match (col.declared, v) {
            // Sign-bit flip keeps memcmp order equal to numeric order.
            (DeclaredType::Int64, Value::Int(i)) => {
                Ok(((*i as u64) ^ (1 << 63)).to_be_bytes().to_vec())
            }
            (DeclaredType::Int32, Value::Int(i)) => {
                let narrowed = i32::try_from(*i).map_err(|_| mismatch())?;
                Ok(((narrowed as u32) ^ (1 << 31)).to_be_bytes().to_vec())
            }
            (DeclaredType::Bool, Value::Bool(b)) => Ok(vec![u8::from(*b)]),
            (DeclaredType::Str { width }, Value::Str(s)) => {
                // NUL is the padding byte: an interior NUL would be
                // truncated on decode, and "ab" / "ab\0" would collide
                // as index keys — reject rather than corrupt.
                if s.len() > width || s.as_bytes().contains(&0) {
                    return Err(mismatch());
                }
                let mut out = vec![0u8; width];
                out[..s.len()].copy_from_slice(s.as_bytes());
                Ok(out)
            }
            _ => Err(mismatch()),
        }
    }

    /// Decodes one column's bytes back into a [`Value`].
    pub fn decode_value(col: &ColumnLayout, bytes: &[u8]) -> Value {
        match col.declared {
            DeclaredType::Int64 => {
                let raw = u64::from_be_bytes(bytes[..8].try_into().expect("8-byte column"));
                Value::Int((raw ^ (1 << 63)) as i64)
            }
            DeclaredType::Int32 => {
                let raw = u32::from_be_bytes(bytes[..4].try_into().expect("4-byte column"));
                Value::Int(((raw ^ (1 << 31)) as i32) as i64)
            }
            DeclaredType::Bool => Value::Bool(bytes[0] != 0),
            DeclaredType::Str { .. } => {
                let end = bytes.iter().position(|&b| b == 0).unwrap_or(bytes.len());
                Value::Str(String::from_utf8_lossy(&bytes[..end]).into_owned())
            }
        }
    }

    /// Encodes a full row into its fixed-width tuple bytes.
    pub fn encode_row(&self, values: &[Value]) -> Result<Vec<u8>, RowCodecError> {
        if values.len() != self.columns.len() {
            return Err(RowCodecError::Arity { expected: self.columns.len(), got: values.len() });
        }
        let mut out = vec![0u8; self.tuple_width];
        for (col, v) in self.columns.iter().zip(values) {
            let bytes = Self::encode_value(col, v)?;
            out[col.offset..col.offset + col.width].copy_from_slice(&bytes);
        }
        Ok(out)
    }

    /// Decodes a fixed-width tuple back into its row of values.
    pub fn decode_row(&self, tuple: &[u8]) -> Result<Vec<Value>, RowCodecError> {
        if tuple.len() != self.tuple_width {
            return Err(RowCodecError::Width { expected: self.tuple_width, got: tuple.len() });
        }
        Ok(self
            .columns
            .iter()
            .map(|c| Self::decode_value(c, &tuple[c.offset..c.offset + c.width]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> RowLayout {
        RowLayout::new(&[
            ("id".into(), DeclaredType::Int64),
            ("views".into(), DeclaredType::Int32),
            ("title".into(), DeclaredType::Str { width: 12 }),
            ("minor".into(), DeclaredType::Bool),
        ])
    }

    #[test]
    fn geometry_is_dense_and_in_order() {
        let l = layout();
        assert_eq!(l.tuple_width(), 8 + 4 + 12 + 1);
        let offsets: Vec<(usize, usize)> =
            l.columns().iter().map(|c| (c.offset, c.width)).collect();
        assert_eq!(offsets, vec![(0, 8), (8, 4), (12, 12), (24, 1)]);
        assert_eq!(l.column("title").unwrap().offset, 12);
        assert!(l.column("nope").is_err());
    }

    #[test]
    fn rows_round_trip() {
        let l = layout();
        let rows = vec![
            vec![Value::Int(-5), Value::Int(0), Value::str(""), Value::Bool(false)],
            vec![
                Value::Int(i64::MAX),
                Value::Int(i32::MAX as i64),
                Value::str("Main_Page"),
                Value::Bool(true),
            ],
            vec![
                Value::Int(i64::MIN),
                Value::Int(i32::MIN as i64),
                Value::str("abcdefghijkl"),
                Value::Bool(false),
            ],
        ];
        for row in rows {
            let bytes = l.encode_row(&row).unwrap();
            assert_eq!(bytes.len(), l.tuple_width());
            assert_eq!(l.decode_row(&bytes).unwrap(), row);
        }
    }

    #[test]
    fn encoded_order_matches_value_order() {
        let l = layout();
        let id = l.column("id").unwrap();
        let views = l.column("views").unwrap();
        let title = l.column("title").unwrap();
        let ints = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for w in ints.windows(2) {
            let a = RowLayout::encode_value(id, &Value::Int(w[0])).unwrap();
            let b = RowLayout::encode_value(id, &Value::Int(w[1])).unwrap();
            assert!(a < b, "{} !< {}", w[0], w[1]);
        }
        let i32s = [i32::MIN as i64, -7, 0, 9, i32::MAX as i64];
        for w in i32s.windows(2) {
            let a = RowLayout::encode_value(views, &Value::Int(w[0])).unwrap();
            let b = RowLayout::encode_value(views, &Value::Int(w[1])).unwrap();
            assert!(a < b, "{} !< {}", w[0], w[1]);
        }
        let strs = ["", "a", "ab", "b", "zz"];
        for w in strs.windows(2) {
            let a = RowLayout::encode_value(title, &Value::str(w[0])).unwrap();
            let b = RowLayout::encode_value(title, &Value::str(w[1])).unwrap();
            assert!(a < b, "{:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn mismatches_are_named_errors() {
        let l = layout();
        // Wrong arity.
        assert!(matches!(
            l.encode_row(&[Value::Int(1)]),
            Err(RowCodecError::Arity { expected: 4, got: 1 })
        ));
        // Type mismatch.
        let row = vec![Value::str("x"), Value::Int(0), Value::str(""), Value::Bool(false)];
        assert!(matches!(l.encode_row(&row), Err(RowCodecError::TypeMismatch { .. })));
        // i32 overflow.
        let row = vec![Value::Int(1), Value::Int(1 << 40), Value::str(""), Value::Bool(false)];
        assert!(matches!(l.encode_row(&row), Err(RowCodecError::TypeMismatch { .. })));
        // Oversized string.
        let row = vec![
            Value::Int(1),
            Value::Int(1),
            Value::str("way too long for twelve"),
            Value::Bool(true),
        ];
        assert!(matches!(l.encode_row(&row), Err(RowCodecError::TypeMismatch { .. })));
        // Interior NUL would truncate on decode and collide with its
        // NUL-free prefix as an index key.
        let row = vec![Value::Int(1), Value::Int(1), Value::str("a\0b"), Value::Bool(true)];
        assert!(matches!(l.encode_row(&row), Err(RowCodecError::TypeMismatch { .. })));
        // Wrong tuple width.
        assert!(matches!(l.decode_row(&[0u8; 3]), Err(RowCodecError::Width { .. })));
    }
}
