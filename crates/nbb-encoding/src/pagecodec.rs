//! Page-level compression for the buffer pool's compressed frame tier.
//!
//! The paper's thesis — every byte of memory should earn its keep —
//! applied to the pool itself: a cold-but-warm page demoted out of a
//! frame can often be held at a fraction of its raw size, so the same
//! frame budget caches a multiple of the pages. This module is the
//! codec half of that bargain; the tier mechanics live in
//! `nbb-storage::buffer`.
//!
//! # Format
//!
//! Every encoded page is self-describing, so the decoder needs nothing
//! but the bytes (and the expected original length, which it verifies):
//!
//! ```text
//! header (12 bytes): magic u32 | version u8 | mode u8 | reserved u16 | orig_len u32
//! body, mode RAW:    the original bytes verbatim
//! body, mode LE/BE:  ⌈words/128⌉ blocks, then orig_len % 8 raw tail bytes
//!   block:           min u64 | bits u8 | bitpacked (word − min) offsets
//! ```
//!
//! The two compressed modes differ only in how the page's bytes are
//! read as `u64` words: `ForLe` reads them little-endian (free-space
//! zeroes, LE counters), `ForBe` big-endian (the order-preserving
//! `memcmp` key encoding used by the B+Tree stores keys big-endian, so
//! near-sequential keys become near-sequential *words* only under a BE
//! read). Each block of up to [`BLOCK_WORDS`] words is
//! frame-of-reference coded: subtract the block minimum, bit-pack the
//! offsets at the narrowest width that fits ([`crate::bitpack`]).
//!
//! # The ratio gate
//!
//! [`compress`] tries both word orders and keeps the smaller encoding
//! **only** when it beats [`GATE_NUM`]`/`[`GATE_DEN`] of the raw size;
//! otherwise it falls back to `Raw` mode, whose only overhead is the
//! 12-byte header. An incompressible (e.g. random or encrypted) page
//! therefore never inflates past [`HEADER_LEN`] bytes, and the caller
//! can meter the achieved ratio from the encoded length alone.

use crate::bitpack;

/// Encoded-page header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Words per frame-of-reference block.
pub const BLOCK_WORDS: usize = 128;

/// A compressed encoding is kept only if
/// `encoded_len * GATE_DEN <= raw_len * GATE_NUM`.
pub const GATE_NUM: usize = 7;
/// See [`GATE_NUM`].
pub const GATE_DEN: usize = 8;

const MAGIC: u32 = 0x4350_424E; // "NBPC" read little-endian
const VERSION: u8 = 1;

/// How an encoded page's body is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageMode {
    /// Original bytes verbatim (the ratio gate rejected both codecs).
    Raw = 0,
    /// Frame-of-reference + bitpack over little-endian-read words.
    ForLe = 1,
    /// Frame-of-reference + bitpack over big-endian-read words.
    ForBe = 2,
}

/// Error decoding a compressed page (corrupt or truncated bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageCodecError(pub String);

impl std::fmt::Display for PageCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page codec: {}", self.0)
    }
}

impl std::error::Error for PageCodecError {}

fn err(msg: impl Into<String>) -> PageCodecError {
    PageCodecError(msg.into())
}

/// Encodes `bytes` with the best of the two word orders, or `Raw` when
/// the ratio gate rejects both. The result always round-trips through
/// [`decompress`] and is never longer than `bytes.len() + HEADER_LEN`.
pub fn compress(bytes: &[u8]) -> Vec<u8> {
    let le = encode_words(bytes, PageMode::ForLe);
    let be = encode_words(bytes, PageMode::ForBe);
    let (mode, body) =
        if le.len() <= be.len() { (PageMode::ForLe, le) } else { (PageMode::ForBe, be) };
    let encoded_len = HEADER_LEN + body.len();
    if encoded_len * GATE_DEN <= bytes.len() * GATE_NUM {
        let mut out = header(mode, bytes.len());
        out.extend_from_slice(&body);
        out
    } else {
        let mut out = header(PageMode::Raw, bytes.len());
        out.extend_from_slice(bytes);
        out
    }
}

/// Decodes an encoded page into `dst`, which must be exactly the
/// original length recorded in the header. Corrupt or truncated input
/// returns an error; it never panics.
pub fn decompress(data: &[u8], dst: &mut [u8]) -> Result<(), PageCodecError> {
    let (mode, orig_len) = parse_header(data)?;
    if orig_len != dst.len() {
        return Err(err(format!("encoded page is {orig_len} bytes, destination is {}", dst.len())));
    }
    let body = &data[HEADER_LEN..];
    match mode {
        PageMode::Raw => {
            if body.len() != orig_len {
                return Err(err("raw body length mismatch"));
            }
            dst.copy_from_slice(body);
            Ok(())
        }
        PageMode::ForLe | PageMode::ForBe => decode_words(body, mode, dst),
    }
}

/// The mode an encoded page was stored in (for metering and tests).
pub fn encoded_mode(data: &[u8]) -> Result<PageMode, PageCodecError> {
    Ok(parse_header(data)?.0)
}

fn header(mode: PageMode, orig_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(mode as u8);
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(orig_len as u32).to_le_bytes());
    out
}

fn parse_header(data: &[u8]) -> Result<(PageMode, usize), PageCodecError> {
    if data.len() < HEADER_LEN {
        return Err(err("truncated header"));
    }
    if u32::from_le_bytes(data[0..4].try_into().expect("4 bytes")) != MAGIC {
        return Err(err("bad magic"));
    }
    if data[4] != VERSION {
        return Err(err(format!("unknown version {}", data[4])));
    }
    let mode = match data[5] {
        0 => PageMode::Raw,
        1 => PageMode::ForLe,
        2 => PageMode::ForBe,
        m => return Err(err(format!("unknown mode {m}"))),
    };
    let orig_len = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) as usize;
    Ok((mode, orig_len))
}

fn read_word(chunk: &[u8; 8], mode: PageMode) -> u64 {
    match mode {
        PageMode::ForBe => u64::from_be_bytes(*chunk),
        _ => u64::from_le_bytes(*chunk),
    }
}

fn write_word(v: u64, mode: PageMode) -> [u8; 8] {
    match mode {
        PageMode::ForBe => v.to_be_bytes(),
        _ => v.to_le_bytes(),
    }
}

/// Frame-of-reference encodes the page's whole-word prefix; the
/// sub-word tail rides along raw.
fn encode_words(bytes: &[u8], mode: PageMode) -> Vec<u8> {
    let nwords = bytes.len() / 8;
    let tail = &bytes[nwords * 8..];
    let mut out = Vec::with_capacity(bytes.len() / 4 + tail.len());
    let mut words = Vec::with_capacity(BLOCK_WORDS);
    for block in bytes[..nwords * 8].chunks(BLOCK_WORDS * 8) {
        words.clear();
        words
            .extend(block.chunks_exact(8).map(|c| read_word(c.try_into().expect("8 bytes"), mode)));
        let min = words.iter().copied().min().expect("block is non-empty");
        let max = words.iter().copied().max().expect("block is non-empty");
        let bits = bitpack::min_bits(max - min);
        for w in words.iter_mut() {
            *w -= min;
        }
        out.extend_from_slice(&min.to_le_bytes());
        out.push(bits as u8);
        out.extend_from_slice(&bitpack::pack(&words, bits));
    }
    out.extend_from_slice(tail);
    out
}

fn decode_words(body: &[u8], mode: PageMode, dst: &mut [u8]) -> Result<(), PageCodecError> {
    let nwords = dst.len() / 8;
    let tail_len = dst.len() - nwords * 8;
    let mut pos = 0usize;
    let mut written = 0usize;
    let mut remaining = nwords;
    while remaining > 0 {
        let count = remaining.min(BLOCK_WORDS);
        if body.len() < pos + 9 {
            return Err(err("truncated block header"));
        }
        let min = u64::from_le_bytes(body[pos..pos + 8].try_into().expect("8 bytes"));
        let bits = u32::from(body[pos + 8]);
        pos += 9;
        if !(1..=64).contains(&bits) {
            return Err(err(format!("block width {bits} out of range")));
        }
        let packed_len = (count * bits as usize).div_ceil(8);
        if body.len() < pos + packed_len {
            return Err(err("truncated block payload"));
        }
        for off in bitpack::unpack(&body[pos..pos + packed_len], bits, count) {
            let w = min.checked_add(off).ok_or_else(|| err("block offset overflows"))?;
            dst[written..written + 8].copy_from_slice(&write_word(w, mode));
            written += 8;
        }
        pos += packed_len;
        remaining -= count;
    }
    if body.len() - pos != tail_len {
        return Err(err("tail length mismatch"));
    }
    dst[written..].copy_from_slice(&body[pos..]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(bytes: &[u8]) -> Vec<u8> {
        let enc = compress(bytes);
        let mut out = vec![0xAAu8; bytes.len()];
        decompress(&enc, &mut out).expect("decode what we encoded");
        assert_eq!(out, bytes, "round trip");
        enc
    }

    #[test]
    fn zero_page_compresses_hard() {
        let page = vec![0u8; 4096];
        let enc = round_trip(&page);
        assert_ne!(encoded_mode(&enc).unwrap(), PageMode::Raw);
        assert!(enc.len() * 8 < page.len(), "zero page should beat 1/8: {} bytes", enc.len());
    }

    #[test]
    fn sequential_be_keys_pick_the_be_order() {
        // The B+Tree's memcmp key encoding: big-endian u64s, ascending.
        let mut page = Vec::with_capacity(4096);
        for k in 5000u64..5512 {
            page.extend_from_slice(&k.to_be_bytes());
        }
        let enc = round_trip(&page);
        assert_eq!(encoded_mode(&enc).unwrap(), PageMode::ForBe);
        assert!(enc.len() * 4 < page.len(), "sequential keys should beat 1/4: {}", enc.len());
    }

    #[test]
    fn sequential_le_words_pick_the_le_order() {
        let mut page = Vec::with_capacity(4096);
        for k in 9000u64..9512 {
            page.extend_from_slice(&k.to_le_bytes());
        }
        let enc = round_trip(&page);
        assert_eq!(encoded_mode(&enc).unwrap(), PageMode::ForLe);
    }

    #[test]
    fn random_page_takes_the_raw_fallback_without_inflating() {
        // LCG noise: no block narrows below ~64 bits, so the gate must
        // reject both orders and the raw fallback caps the overhead.
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut page = Vec::with_capacity(4096);
        for _ in 0..512 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            page.extend_from_slice(&x.to_le_bytes());
        }
        let enc = round_trip(&page);
        assert_eq!(encoded_mode(&enc).unwrap(), PageMode::Raw);
        assert_eq!(enc.len(), page.len() + HEADER_LEN, "raw fallback adds only the header");
    }

    #[test]
    fn tail_bytes_survive() {
        for extra in 1..8 {
            let mut page = vec![0u8; 256 + extra];
            for (i, b) in page.iter_mut().enumerate() {
                *b = (i % 5) as u8;
            }
            round_trip(&page);
        }
    }

    #[test]
    fn tiny_and_empty_inputs() {
        round_trip(&[]);
        round_trip(&[7]);
        round_trip(&[1, 2, 3, 4, 5, 6, 7]); // all tail, no words
    }

    #[test]
    fn wrong_destination_length_is_an_error() {
        let enc = compress(&[0u8; 128]);
        let mut small = vec![0u8; 64];
        assert!(decompress(&enc, &mut small).is_err());
    }

    #[test]
    fn corruption_errors_instead_of_panicking() {
        let mut page = Vec::new();
        for k in 0u64..64 {
            page.extend_from_slice(&k.to_be_bytes());
        }
        let enc = compress(&page);
        let mut dst = vec![0u8; page.len()];
        // Bad magic.
        let mut bad = enc.clone();
        bad[0] ^= 0xFF;
        assert!(decompress(&bad, &mut dst).is_err());
        // Unknown mode.
        let mut bad = enc.clone();
        bad[5] = 9;
        assert!(decompress(&bad, &mut dst).is_err());
        // Truncation at every length must error (or, for pure tail
        // truncation, fail the tail-length check) — never panic.
        for len in 0..enc.len() {
            assert!(decompress(&enc[..len], &mut dst).is_err(), "truncated to {len}");
        }
        // Garbage block width.
        let mut bad = enc.clone();
        bad[HEADER_LEN + 8] = 0; // bits = 0
        assert!(decompress(&bad, &mut dst).is_err());
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
            let enc = compress(&bytes);
            prop_assert!(enc.len() <= bytes.len() + HEADER_LEN, "never inflates past the header");
            let mut out = vec![0u8; bytes.len()];
            decompress(&enc, &mut out).expect("round trip");
            prop_assert_eq!(out, bytes);
        }

        #[test]
        fn incompressible_pages_trigger_the_gate(seed in any::<u64>()) {
            // A full page of LCG noise: the gate must choose Raw, so the
            // store never pays more than the header for a bad page.
            let mut x = seed | 1;
            let mut page = Vec::with_capacity(4096);
            for _ in 0..512 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                page.extend_from_slice(&x.to_le_bytes());
            }
            let enc = compress(&page);
            prop_assert_eq!(encoded_mode(&enc).unwrap(), PageMode::Raw);
            prop_assert_eq!(enc.len(), page.len() + HEADER_LEN);
        }

        #[test]
        fn compressible_pages_pass_the_gate(base in any::<u32>(), stride in 1u64..16) {
            let mut page = Vec::with_capacity(4096);
            for i in 0..512u64 {
                page.extend_from_slice(&(u64::from(base) + i * stride).to_be_bytes());
            }
            let enc = compress(&page);
            prop_assert_ne!(encoded_mode(&enc).unwrap(), PageMode::Raw);
            prop_assert!(enc.len() * GATE_DEN <= page.len() * GATE_NUM);
            let mut out = vec![0u8; page.len()];
            decompress(&enc, &mut out).expect("round trip");
            prop_assert_eq!(out, page);
        }
    }
}
