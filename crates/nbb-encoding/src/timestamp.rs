//! MediaWiki-style string timestamps and their compact encoding.
//!
//! Wikipedia's `revision` table "uses a 14 byte string to represent a
//! timestamp that can easily be encoded into a 4 byte timestamp" (§4.1).
//! This module provides the string format (`YYYYMMDDHHMMSS`), a
//! simplified epoch (seconds since 2011-01-01 on a 12×30-day civil
//! calendar — the experiments only need order and range, not Gregorian
//! precision), and the 4-byte round trip.

/// Formats an epoch second counter as a 14-char `YYYYMMDDHHMMSS` string.
pub fn format_epoch(epoch_s: u64) -> String {
    let s = epoch_s % 60;
    let m = (epoch_s / 60) % 60;
    let h = (epoch_s / 3600) % 24;
    let day_idx = epoch_s / 86_400;
    let day = day_idx % 30 + 1;
    let month = (day_idx / 30) % 12 + 1;
    let year = 2011 + day_idx / 360;
    format!("{year:04}{month:02}{day:02}{h:02}{m:02}{s:02}")
}

/// Parses a [`format_epoch`] string back to the epoch counter.
pub fn parse_epoch(ts: &str) -> Option<u64> {
    if !looks_like_timestamp(ts) {
        return None;
    }
    let num = |r: std::ops::Range<usize>| ts[r].parse::<u64>().ok();
    let year = num(0..4)?;
    let month = num(4..6)?;
    let day = num(6..8)?;
    let h = num(8..10)?;
    let m = num(10..12)?;
    let s = num(12..14)?;
    let day_idx = (year.checked_sub(2011)?) * 360 + (month - 1) * 30 + (day - 1);
    Some(day_idx * 86_400 + h * 3600 + m * 60 + s)
}

/// Structural check: 14 ASCII digits with plausible date/time fields.
pub fn looks_like_timestamp(ts: &str) -> bool {
    if ts.len() != 14 || !ts.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let num = |r: std::ops::Range<usize>| ts[r].parse::<u64>().unwrap_or(u64::MAX);
    let year = num(0..4);
    let month = num(4..6);
    let day = num(6..8);
    let h = num(8..10);
    let m = num(10..12);
    let s = num(12..14);
    (1970..2200).contains(&year)
        && (1..=12).contains(&month)
        && (1..=31).contains(&day)
        && h < 24
        && m < 60
        && s < 60
}

/// Encodes a valid timestamp string into 4 bytes (the §4.1 fix).
///
/// Returns `None` when the string is not a valid timestamp or the epoch
/// exceeds 32 bits (year ≈ 2147, beyond the experiments' range).
pub fn to_u32(ts: &str) -> Option<u32> {
    let e = parse_epoch(ts)?;
    u32::try_from(e).ok()
}

/// Decodes [`to_u32`] output back to the 14-char string.
pub fn from_u32(v: u32) -> String {
    format_epoch(u64::from(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_epoch() {
        for e in [0u64, 1, 59, 3600, 86_399, 86_400 * 359, 86_400 * 3599] {
            assert_eq!(parse_epoch(&format_epoch(e)), Some(e));
        }
    }

    #[test]
    fn four_byte_round_trip() {
        for e in [0u32, 12_345, 1_000_000_000, u32::MAX] {
            let ts = from_u32(e);
            assert_eq!(to_u32(&ts), Some(e), "epoch {e} -> {ts}");
        }
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(!looks_like_timestamp(""));
        assert!(!looks_like_timestamp("2011010100000")); // 13 chars
        assert!(!looks_like_timestamp("2011010100000x"));
        assert!(!looks_like_timestamp("20111301000000")); // month 13
        assert!(!looks_like_timestamp("20110100000000")); // day 0
        assert!(!looks_like_timestamp("20110101250000")); // hour 25
        assert!(looks_like_timestamp("20110115103000"));
    }

    #[test]
    fn ordering_preserved() {
        let a = format_epoch(1000);
        let b = format_epoch(2000);
        assert!(a < b, "string order must match epoch order");
    }
}
