//! Dictionary encoding for low-cardinality columns.
//!
//! §4.1 flags "large fields that are either never accessed or only
//! projected or accessed through equality predicates" as compression
//! candidates — equality predicates only need code comparison, never
//! decompression. A [`DictColumn`] stores each distinct value once and
//! bit-packs per-row codes at `ceil(log2(cardinality))` bits.

use crate::bitpack::{min_bits, BitPacked};
use std::collections::HashMap;

/// A dictionary-encoded column of byte-string values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictColumn {
    dict: Vec<Vec<u8>>,
    codes: BitPacked,
}

impl DictColumn {
    /// Encodes `values`, preserving order of first appearance in the
    /// dictionary.
    pub fn encode<T: AsRef<[u8]>>(values: &[T]) -> Self {
        let mut dict: Vec<Vec<u8>> = Vec::new();
        let mut index: HashMap<Vec<u8>, u64> = HashMap::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let v = v.as_ref();
            let code = match index.get(v) {
                Some(&c) => c,
                None => {
                    let c = dict.len() as u64;
                    dict.push(v.to_vec());
                    index.insert(v.to_vec(), c);
                    c
                }
            };
            codes.push(code);
        }
        let bits = min_bits(dict.len().saturating_sub(1) as u64);
        DictColumn { dict, codes: BitPacked::with_bits(&codes, bits) }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// Value of row `i`.
    pub fn get(&self, i: usize) -> &[u8] {
        &self.dict[self.codes.get(i) as usize]
    }

    /// Decodes the whole column.
    pub fn to_vec(&self) -> Vec<Vec<u8>> {
        (0..self.len()).map(|i| self.get(i).to_vec()).collect()
    }

    /// Row indices whose value equals `needle` — the equality-predicate
    /// path that never touches the dictionary values per row.
    pub fn find_equal(&self, needle: &[u8]) -> Vec<usize> {
        let Some(code) = self.dict.iter().position(|d| d == needle) else {
            return Vec::new();
        };
        let code = code as u64;
        self.codes
            .to_vec()
            .into_iter()
            .enumerate()
            .filter_map(|(i, c)| (c == code).then_some(i))
            .collect()
    }

    /// Encoded size: dictionary bytes + packed codes + lengths.
    pub fn byte_len(&self) -> usize {
        let dict_bytes: usize = self.dict.iter().map(|d| d.len() + 4).sum();
        dict_bytes + self.codes.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let vals = vec!["red", "green", "red", "blue", "red", "green"];
        let col = DictColumn::encode(&vals);
        assert_eq!(col.cardinality(), 3);
        assert_eq!(col.len(), 6);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(col.get(i), v.as_bytes());
        }
    }

    #[test]
    fn find_equal_returns_matching_rows() {
        let vals = vec!["a", "b", "a", "c", "a"];
        let col = DictColumn::encode(&vals);
        assert_eq!(col.find_equal(b"a"), vec![0, 2, 4]);
        assert_eq!(col.find_equal(b"c"), vec![3]);
        assert_eq!(col.find_equal(b"zz"), Vec::<usize>::new());
    }

    #[test]
    fn compresses_repetitive_data() {
        // 10k rows, 4 distinct 50-byte values: raw 500 KB, dict ~2.7 KB.
        let vals: Vec<String> =
            (0..10_000).map(|i| format!("{:<50}", format!("value-{}", i % 4))).collect();
        let col = DictColumn::encode(&vals);
        let raw: usize = vals.iter().map(|v| v.len()).sum();
        assert!(col.byte_len() * 50 < raw, "dict {} vs raw {raw}", col.byte_len());
    }

    #[test]
    fn single_value_column_uses_one_bit_codes() {
        let vals = vec!["x"; 1000];
        let col = DictColumn::encode(&vals);
        assert_eq!(col.cardinality(), 1);
        assert!(col.byte_len() < 1000 / 8 + 16);
    }

    #[test]
    fn empty_column() {
        let col = DictColumn::encode(&Vec::<&str>::new());
        assert!(col.is_empty());
        assert_eq!(col.cardinality(), 0);
        assert_eq!(col.to_vec(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn high_cardinality_still_correct() {
        let vals: Vec<String> = (0..300).map(|i| format!("unique-{i}")).collect();
        let col = DictColumn::encode(&vals);
        assert_eq!(col.cardinality(), 300);
        assert_eq!(col.to_vec(), vals.iter().map(|s| s.as_bytes().to_vec()).collect::<Vec<_>>());
    }
}
