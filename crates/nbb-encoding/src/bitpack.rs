//! Bit-level packing of fixed-width unsigned integers.
//!
//! §4.1: "we found a large number of int fields that store small value
//! ranges which can easily be encoded in 8, or even 4 bits". This module
//! packs `n`-bit values (1 ≤ n ≤ 64) densely, with random access.
//!
//! Two implementations share the format:
//! * a safe, obviously-correct reference ([`pack_ref`]/[`unpack_ref`]);
//! * a word-window fast path ([`pack`]/[`unpack`]) that reads/writes
//!   unaligned 64-bit windows with `unsafe` pointer ops — the only
//!   `unsafe` in the workspace, property-tested against the reference.
//!
//! Values are stored little-endian-bit-order: value `i` occupies bits
//! `[i*n, (i+1)*n)` of the stream, low bits first.

/// Minimum bits needed to represent `max_value` (at least 1).
#[inline]
pub fn min_bits(max_value: u64) -> u32 {
    (64 - max_value.leading_zeros()).max(1)
}

fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

fn packed_len(count: usize, bits: u32) -> usize {
    (count * bits as usize).div_ceil(8)
}

/// Reference packer: bit-by-bit, no `unsafe`.
pub fn pack_ref(values: &[u64], bits: u32) -> Vec<u8> {
    assert!((1..=64).contains(&bits));
    let mut out = vec![0u8; packed_len(values.len(), bits)];
    for (i, &v) in values.iter().enumerate() {
        assert!(v <= mask(bits), "value {v} exceeds {bits} bits");
        let base = i * bits as usize;
        for b in 0..bits as usize {
            if (v >> b) & 1 == 1 {
                out[(base + b) / 8] |= 1 << ((base + b) % 8);
            }
        }
    }
    out
}

/// Reference unpacker: bit-by-bit, no `unsafe`.
pub fn unpack_ref(packed: &[u8], bits: u32, count: usize) -> Vec<u64> {
    assert!((1..=64).contains(&bits));
    assert!(packed.len() >= packed_len(count, bits), "packed buffer too short");
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let base = i * bits as usize;
        let mut v = 0u64;
        for b in 0..bits as usize {
            if (packed[(base + b) / 8] >> ((base + b) % 8)) & 1 == 1 {
                v |= 1 << b;
            }
        }
        out.push(v);
    }
    out
}

/// Packs `values` at `bits` bits each (word-window fast path).
///
/// # Panics
/// Panics if any value needs more than `bits` bits.
pub fn pack(values: &[u64], bits: u32) -> Vec<u8> {
    assert!((1..=64).contains(&bits));
    // 56+ bit windows cannot be written through a single unaligned u64
    // store once the bit offset exceeds 0; fall back to the reference.
    if bits > 56 {
        return pack_ref(values, bits);
    }
    let len = packed_len(values.len(), bits);
    // Overallocate 8 bytes so every window store stays in-bounds.
    let mut out = vec![0u8; len + 8];
    let m = mask(bits);
    for (i, &v) in values.iter().enumerate() {
        assert!(v <= m, "value {v} exceeds {bits} bits");
        let bit = i * bits as usize;
        let byte = bit / 8;
        let shift = (bit % 8) as u32;
        // SAFETY: `byte + 8 <= out.len()` because out has 8 spare bytes
        // beyond the last touched payload byte; unaligned access is done
        // via read_unaligned/write_unaligned.
        unsafe {
            let p = out.as_mut_ptr().add(byte) as *mut u64;
            let w = p.read_unaligned().to_le();
            let w = w | (v << shift);
            p.write_unaligned(u64::from_le(w));
        }
    }
    out.truncate(len);
    out
}

/// Unpacks `count` values of `bits` bits each (word-window fast path).
pub fn unpack(packed: &[u8], bits: u32, count: usize) -> Vec<u64> {
    assert!((1..=64).contains(&bits));
    if bits > 56 {
        return unpack_ref(packed, bits, count);
    }
    assert!(packed.len() >= packed_len(count, bits), "packed buffer too short");
    let m = mask(bits);
    let mut out = Vec::with_capacity(count);
    // Copy into a padded buffer so window reads never go out of bounds.
    let mut padded = Vec::with_capacity(packed.len() + 8);
    padded.extend_from_slice(packed);
    padded.extend_from_slice(&[0u8; 8]);
    for i in 0..count {
        let bit = i * bits as usize;
        let byte = bit / 8;
        let shift = (bit % 8) as u32;
        // SAFETY: `byte + 8 <= padded.len()` by construction.
        let w = unsafe {
            let p = padded.as_ptr().add(byte) as *const u64;
            u64::from_le(p.read_unaligned())
        };
        out.push((w >> shift) & m);
    }
    out
}

/// An owned bit-packed vector with O(1) random access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPacked {
    bits: u32,
    len: usize,
    data: Vec<u8>,
}

impl BitPacked {
    /// Packs `values` at the smallest width that fits their maximum.
    pub fn from_values(values: &[u64]) -> Self {
        let bits = min_bits(values.iter().copied().max().unwrap_or(0));
        Self::with_bits(values, bits)
    }

    /// Packs `values` at an explicit width.
    pub fn with_bits(values: &[u64], bits: u32) -> Self {
        BitPacked { bits, len: values.len(), data: pack(values, bits) }
    }

    /// Bits per value.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Packed size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Random access to value `i`.
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        let bit = i * self.bits as usize;
        let m = mask(self.bits);
        let mut v = 0u64;
        // Safe byte-by-byte gather (hot paths use `unpack`).
        let mut got = 0u32;
        let mut byte = bit / 8;
        let mut shift = (bit % 8) as u32;
        while got < self.bits {
            let chunk = u64::from(self.data[byte]) >> shift;
            v |= chunk << got;
            got += 8 - shift;
            shift = 0;
            byte += 1;
        }
        v & m
    }

    /// Unpacks everything.
    pub fn to_vec(&self) -> Vec<u64> {
        unpack(&self.data, self.bits, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn min_bits_edges() {
        assert_eq!(min_bits(0), 1);
        assert_eq!(min_bits(1), 1);
        assert_eq!(min_bits(2), 2);
        assert_eq!(min_bits(255), 8);
        assert_eq!(min_bits(256), 9);
        assert_eq!(min_bits(u64::MAX), 64);
    }

    #[test]
    fn round_trip_simple() {
        let vals = [0u64, 1, 2, 3, 7, 6, 5, 4];
        let packed = pack(&vals, 3);
        assert_eq!(packed.len(), 3); // 8*3 bits = 24 bits = 3 bytes
        assert_eq!(unpack(&packed, 3, 8), vals);
    }

    #[test]
    fn bool_as_one_bit() {
        let vals: Vec<u64> = (0..100).map(|i| (i % 3 == 0) as u64).collect();
        let packed = pack(&vals, 1);
        assert_eq!(packed.len(), 13);
        assert_eq!(unpack(&packed, 1, 100), vals);
    }

    #[test]
    fn full_64_bit_values() {
        let vals = [u64::MAX, 0, 1, u64::MAX - 1];
        let packed = pack(&vals, 64);
        assert_eq!(unpack(&packed, 64, 4), vals);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overflow_value_panics() {
        pack(&[8], 3);
    }

    #[test]
    fn bitpacked_random_access() {
        let vals: Vec<u64> = (0..500).map(|i| (i * 37) % 1000).collect();
        let bp = BitPacked::from_values(&vals);
        assert_eq!(bp.bits(), 10);
        assert_eq!(bp.len(), 500);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(bp.get(i), v, "index {i}");
        }
        assert_eq!(bp.to_vec(), vals);
        // 500 * 10 bits = 625 bytes vs 4000 for u64s
        assert_eq!(bp.byte_len(), 625);
    }

    #[test]
    fn empty_input() {
        let bp = BitPacked::from_values(&[]);
        assert!(bp.is_empty());
        assert_eq!(bp.to_vec(), Vec::<u64>::new());
        assert_eq!(pack(&[], 7), Vec::<u8>::new());
    }

    proptest! {
        #[test]
        fn fast_pack_matches_reference(
            bits in 1u32..=64,
            raw in prop::collection::vec(any::<u64>(), 0..200))
        {
            let m = mask(bits);
            let vals: Vec<u64> = raw.iter().map(|v| v & m).collect();
            prop_assert_eq!(pack(&vals, bits), pack_ref(&vals, bits));
        }

        #[test]
        fn fast_unpack_matches_reference_and_round_trips(
            bits in 1u32..=64,
            raw in prop::collection::vec(any::<u64>(), 0..200))
        {
            let m = mask(bits);
            let vals: Vec<u64> = raw.iter().map(|v| v & m).collect();
            let packed = pack(&vals, bits);
            prop_assert_eq!(&unpack(&packed, bits, vals.len()), &vals);
            prop_assert_eq!(
                unpack_ref(&packed, bits, vals.len()),
                unpack(&packed, bits, vals.len())
            );
        }

        #[test]
        fn bitpacked_get_agrees_with_unpack(
            raw in prop::collection::vec(0u64..100_000, 1..100))
        {
            let bp = BitPacked::from_values(&raw);
            for (i, &v) in raw.iter().enumerate() {
                prop_assert_eq!(bp.get(i), v);
            }
        }

        // Degenerate corners the page codec leans on: minimum and
        // maximum widths, empty slices, and packed lengths that must
        // match `packed_len` exactly at every count.
        #[test]
        fn one_bit_round_trips(raw in prop::collection::vec(0u64..=1, 0..300)) {
            let packed = pack(&raw, 1);
            prop_assert_eq!(packed.len(), packed_len(raw.len(), 1));
            prop_assert_eq!(unpack(&packed, 1, raw.len()), raw);
        }

        #[test]
        fn sixty_four_bit_round_trips(raw in prop::collection::vec(any::<u64>(), 0..300)) {
            let packed = pack(&raw, 64);
            prop_assert_eq!(packed.len(), packed_len(raw.len(), 64));
            prop_assert_eq!(unpack(&packed, 64, raw.len()), raw);
        }

        #[test]
        fn empty_slices_pack_to_nothing(bits in 1u32..=64) {
            prop_assert_eq!(pack(&[], bits), Vec::<u8>::new());
            prop_assert_eq!(unpack(&[], bits, 0), Vec::<u64>::new());
        }

        #[test]
        fn incompressible_values_cost_exactly_their_width(
            raw in prop::collection::vec(any::<u64>(), 1..200))
        {
            // Random u64s: min_bits of the max is the honest width, the
            // packed bytes never undercut it, and the round trip holds —
            // the codec's ratio gate (not this layer) is what rejects
            // such pages rather than letting them inflate.
            let bits = min_bits(raw.iter().copied().max().unwrap());
            let packed = pack(&raw, bits);
            prop_assert_eq!(packed.len(), packed_len(raw.len(), bits));
            prop_assert!(packed.len() * 8 + 7 >= raw.len() * bits as usize);
            prop_assert_eq!(unpack(&packed, bits, raw.len()), raw);
        }
    }
}
