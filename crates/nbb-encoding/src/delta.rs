//! Frame-of-reference delta encoding for sorted or clustered integers.
//!
//! AUTO_INCREMENT ids (§4.2) and timestamps are near-sequential;
//! storing per-block minima plus bit-packed offsets shrinks them to a
//! few bits per value. Blocks of 128 values keep random access cheap.

use crate::bitpack::{min_bits, BitPacked};

const BLOCK: usize = 128;

/// A delta/frame-of-reference encoded `u64` column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaColumn {
    len: usize,
    /// Per-block `(base, packed offsets)`.
    blocks: Vec<(u64, BitPacked)>,
}

impl DeltaColumn {
    /// Encodes `values` (any order; sorted data compresses best).
    pub fn encode(values: &[u64]) -> Self {
        let mut blocks = Vec::with_capacity(values.len().div_ceil(BLOCK));
        for chunk in values.chunks(BLOCK) {
            let base = chunk.iter().copied().min().unwrap_or(0);
            let offsets: Vec<u64> = chunk.iter().map(|v| v - base).collect();
            let bits = min_bits(offsets.iter().copied().max().unwrap_or(0));
            blocks.push((base, BitPacked::with_bits(&offsets, bits)));
        }
        DeltaColumn { len: values.len(), blocks }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value at index `i`.
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds");
        let (base, packed) = &self.blocks[i / BLOCK];
        base + packed.get(i % BLOCK)
    }

    /// Decodes the whole column.
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        for (base, packed) in &self.blocks {
            out.extend(packed.to_vec().into_iter().map(|o| base + o));
        }
        out
    }

    /// Encoded size in bytes (bases + packed offsets).
    pub fn byte_len(&self) -> usize {
        self.blocks.iter().map(|(_, p)| 8 + 1 + p.byte_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ids_compress_hard() {
        let vals: Vec<u64> = (1_000_000..1_010_000).collect();
        let col = DeltaColumn::encode(&vals);
        assert_eq!(col.to_vec(), vals);
        // 10k u64s = 80 KB raw; FOR blocks need 7 bits/value ≈ 9 KB.
        assert!(col.byte_len() < 12_000, "got {}", col.byte_len());
    }

    #[test]
    fn random_access() {
        let vals: Vec<u64> = (0..1000).map(|i| i * 3 + 7).collect();
        let col = DeltaColumn::encode(&vals);
        for i in (0..1000).step_by(61) {
            assert_eq!(col.get(i), vals[i]);
        }
    }

    #[test]
    fn unsorted_data_still_round_trips() {
        let vals = vec![5u64, 1, 1_000_000, 3, 99, 2, 1_000_001];
        let col = DeltaColumn::encode(&vals);
        assert_eq!(col.to_vec(), vals);
        assert_eq!(col.get(2), 1_000_000);
    }

    #[test]
    fn empty_and_single() {
        assert!(DeltaColumn::encode(&[]).is_empty());
        let one = DeltaColumn::encode(&[42]);
        assert_eq!(one.get(0), 42);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn constant_column_is_tiny() {
        let vals = vec![7u64; 10_000];
        let col = DeltaColumn::encode(&vals);
        assert_eq!(col.to_vec(), vals);
        // 1 bit per value + block headers.
        assert!(col.byte_len() < 2_200, "got {}", col.byte_len());
    }
}
