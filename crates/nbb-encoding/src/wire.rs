//! Order-preserving wire codecs for fixed-width unsigned integers.
//!
//! The network protocol (`nbb-proto`) frames every integer — request
//! ids, counts, lengths, record addresses — through these helpers so
//! the wire shares the engine's one encoding convention: big-endian
//! bytes, whose `memcmp` order equals numeric order. That is the same
//! property [`crate::rowcodec::RowLayout`] relies on for index keys
//! (with a sign flip for the signed types), which means a `u64` key
//! captured off the wire is directly comparable against leaf bytes with
//! no re-encoding step.
//!
//! Decodes are total: a short buffer yields `None`, never a panic, so
//! protocol parsers can surface named errors on truncated frames.

/// Appends `v` as 2 order-preserving big-endian bytes.
#[inline]
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends `v` as 4 order-preserving big-endian bytes.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Appends `v` as 8 order-preserving big-endian bytes.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Reads a `u16` from the first 2 bytes of `b`; `None` when short.
#[inline]
pub fn get_u16(b: &[u8]) -> Option<u16> {
    Some(u16::from_be_bytes(b.get(..2)?.try_into().ok()?))
}

/// Reads a `u32` from the first 4 bytes of `b`; `None` when short.
#[inline]
pub fn get_u32(b: &[u8]) -> Option<u32> {
    Some(u32::from_be_bytes(b.get(..4)?.try_into().ok()?))
}

/// Reads a `u64` from the first 8 bytes of `b`; `None` when short.
#[inline]
pub fn get_u64(b: &[u8]) -> Option<u64> {
    Some(u64::from_be_bytes(b.get(..8)?.try_into().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for v in [0u64, 1, 255, 256, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            assert_eq!(get_u64(&buf), Some(v));
        }
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_F00D);
        assert_eq!(get_u16(&buf), Some(0xBEEF));
        assert_eq!(get_u32(&buf[2..]), Some(0xDEAD_F00D));
    }

    #[test]
    fn short_buffers_decode_to_none() {
        assert_eq!(get_u16(&[1]), None);
        assert_eq!(get_u32(&[1, 2, 3]), None);
        assert_eq!(get_u64(&[0; 7]), None);
        assert_eq!(get_u64(&[]), None);
    }

    #[test]
    fn memcmp_order_equals_numeric_order() {
        let encode = |v: u64| {
            let mut b = Vec::new();
            put_u64(&mut b, v);
            b
        };
        let mut values = [0u64, 1, 7, 255, 256, 65_535, 1 << 20, 1 << 40, u64::MAX];
        values.sort_unstable();
        for pair in values.windows(2) {
            assert!(encode(pair[0]) < encode(pair[1]), "{} vs {}", pair[0], pair[1]);
        }
    }
}
