//! # nbb-encoding — encoding-waste elimination (*No Bits Left Behind* §4)
//!
//! "Encoding waste" is data stored at a higher physical or semantic
//! granularity than the application needs. This crate implements the
//! paper's §4 toolkit:
//!
//! * [`inference`] — column analysis that treats declared types as hints
//!   and infers the cheapest lossless physical type (boolean bytes → 1
//!   bit, numeric strings → integers, 14-byte string timestamps → 4-byte
//!   epochs, small-range ints → bit-packed offsets, low-cardinality
//!   strings → dictionaries);
//! * [`schema`] — table-level reports (the §4.1 "16%–83% waste"
//!   analysis) and materialized optimized columns with proven round
//!   trips;
//! * [`bitpack`] — dense n-bit packing (the workspace's only `unsafe`,
//!   property-tested against a safe reference);
//! * [`dict`], [`delta`] — dictionary and frame-of-reference codecs;
//! * [`pagecodec`] — whole-page compression (frame-of-reference +
//!   bitpack with a self-describing header and a raw-fallback ratio
//!   gate) backing the buffer pool's compressed frame tier;
//! * [`timestamp`] — the MediaWiki 14-char timestamp format and its
//!   4-byte encoding;
//! * [`semantic_id`] — §4.2: partition bits embedded in surrogate keys
//!   (routing without routing tables) and id elimination via physical
//!   address proxies;
//! * [`rowcodec`] — the fixed-width row layout a schema's declared
//!   types imply, with order-preserving column codecs so tuple bytes
//!   double as `memcmp`-ordered index keys (the typed bridge used by
//!   `nbb-core`'s `RowSchema`);
//! * [`wire`] — the order-preserving fixed-width integer codecs the
//!   network protocol (`nbb-proto`) frames ids, counts, and lengths
//!   with, so wire bytes share the engine's one encoding convention.

#![warn(missing_docs)]

pub mod bitpack;
pub mod delta;
pub mod dict;
pub mod inference;
pub mod pagecodec;
pub mod rowcodec;
pub mod schema;
pub mod semantic_id;
pub mod timestamp;
pub mod wire;

pub use bitpack::{min_bits, pack, unpack, BitPacked};
pub use delta::DeltaColumn;
pub use dict::DictColumn;
pub use inference::{analyze_column, ColumnAnalysis, DeclaredType, PhysicalType, Value};
pub use pagecodec::{PageCodecError, PageMode};
pub use rowcodec::{ColumnLayout, RowCodecError, RowLayout};
pub use schema::{
    analyze_table, decode_column, encode_column, ColumnDef, EncodedColumn, Schema, SchemaReport,
};
pub use semantic_id::{RoutingTable, SemanticIdAllocator, SemanticIdLayout};
