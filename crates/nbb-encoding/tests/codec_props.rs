//! Property tests for the §4.1 codecs beyond the in-module unit tests:
//! arbitrary data must round-trip, and size accounting must never lie.

use nbb_encoding::{BitPacked, DeltaColumn, DictColumn};
use proptest::prelude::*;

proptest! {
    #[test]
    fn delta_round_trips_arbitrary_u64(vals in prop::collection::vec(any::<u64>(), 0..500)) {
        let col = DeltaColumn::encode(&vals);
        prop_assert_eq!(col.to_vec(), vals.clone());
        prop_assert_eq!(col.len(), vals.len());
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(col.get(i), *v);
        }
    }

    #[test]
    fn delta_never_exceeds_raw_plus_headers(vals in prop::collection::vec(any::<u64>(), 1..500)) {
        let col = DeltaColumn::encode(&vals);
        // Worst case (adversarial data): 64-bit offsets + per-block header.
        let worst = vals.len() * 8 + vals.len().div_ceil(128) * 9 + 16;
        prop_assert!(col.byte_len() <= worst, "{} > {}", col.byte_len(), worst);
    }

    #[test]
    fn delta_compresses_clustered_data(base in 0u64..1_000_000, n in 100usize..400) {
        let vals: Vec<u64> = (0..n as u64).map(|i| base + i * 3).collect();
        let col = DeltaColumn::encode(&vals);
        prop_assert!(
            col.byte_len() * 3 < vals.len() * 8,
            "clustered data should compress >2.6x: {} vs {}",
            col.byte_len(),
            vals.len() * 8
        );
    }

    #[test]
    fn dict_round_trips_arbitrary_byte_strings(
        vals in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 0..200)
    ) {
        let col = DictColumn::encode(&vals);
        prop_assert_eq!(col.to_vec(), vals.clone());
        prop_assert!(col.cardinality() <= vals.len().max(1));
        // find_equal returns exactly the matching positions.
        if let Some(needle) = vals.first() {
            let expect: Vec<usize> = vals
                .iter()
                .enumerate()
                .filter_map(|(i, v)| (v == needle).then_some(i))
                .collect();
            prop_assert_eq!(col.find_equal(needle), expect);
        }
    }

    #[test]
    fn bitpacked_width_is_tight(vals in prop::collection::vec(0u64..u64::MAX, 1..300)) {
        let bp = BitPacked::from_values(&vals);
        let max = vals.iter().max().copied().unwrap_or(0);
        // The chosen width fits the max and one bit less would not.
        let capacity = if bp.bits() >= 64 { u64::MAX } else { (1u64 << bp.bits()) - 1 };
        prop_assert!(max <= capacity);
        if bp.bits() > 1 {
            let smaller_max = (1u64 << (bp.bits() - 1)) - 1;
            prop_assert!(max > smaller_max, "width {} not tight for max {}", bp.bits(), max);
        }
    }
}
