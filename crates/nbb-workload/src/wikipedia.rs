//! Synthetic Wikipedia `page` and `revision` tables.
//!
//! This is the substitution for the paper's real Wikipedia database
//! (DESIGN.md §4): the schemas mirror MediaWiki's — including its
//! deliberate encoding waste, e.g. **timestamps stored as 14-byte
//! strings** (`YYYYMMDDHHMMSS`) and booleans stored as full bytes — and
//! the generators reproduce the distributional facts the paper reports:
//!
//! * page lookups are zipfian with α ≈ 0.5 over (namespace, title);
//! * each page has a current revision; historical revisions pile up so
//!   the *latest* revisions are ~5% of the revision table;
//! * hot (latest) revisions are scattered roughly one per data page.
//!
//! Rows encode to fixed-width tuples ([`PageRow::encode`],
//! [`RevisionRow::encode`]) so heap pages, index caches, and the
//! §4.1 waste analyzer all operate on realistic bytes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// MediaWiki-style 14-char timestamp (`YYYYMMDDHHMMSS`) from an epoch
/// second counter starting 2011-01-01 00:00:00 (delegates to
/// [`nbb_encoding::timestamp`], the canonical implementation).
pub fn format_timestamp(epoch_s: u64) -> String {
    nbb_encoding::timestamp::format_epoch(epoch_s)
}

/// Parses [`format_timestamp`] output back to the epoch second counter.
pub fn parse_timestamp(ts: &str) -> Option<u64> {
    nbb_encoding::timestamp::parse_epoch(ts)
}

/// A row of the `page` table (MediaWiki schema subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageRow {
    /// `page_id` — AUTO_INCREMENT primary key (semantically opaque, §4.2).
    pub id: u64,
    /// `page_namespace`.
    pub namespace: u32,
    /// `page_title` (unique within a namespace).
    pub title: String,
    /// `page_counter` — view counter.
    pub counter: u64,
    /// `page_is_redirect` — stored as a whole byte (encoding waste).
    pub is_redirect: bool,
    /// `page_is_new` — stored as a whole byte (encoding waste).
    pub is_new: bool,
    /// `page_touched` — 14-byte string timestamp (encoding waste).
    pub touched: String,
    /// `page_latest` — id of the page's current revision.
    pub latest_rev: u64,
    /// `page_len` — length of the current revision text.
    pub len: u64,
}

/// Fixed width of [`PageRow::title`] in the tuple encoding.
pub const TITLE_WIDTH: usize = 28;
/// Encoded width of a [`PageRow`] tuple.
pub const PAGE_ROW_WIDTH: usize = 8 + 4 + TITLE_WIDTH + 8 + 1 + 1 + 14 + 8 + 8;

impl PageRow {
    /// Serializes to the fixed-width heap tuple layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PAGE_ROW_WIDTH);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.namespace.to_le_bytes());
        let mut t = [0u8; TITLE_WIDTH];
        let tb = self.title.as_bytes();
        let n = tb.len().min(TITLE_WIDTH);
        t[..n].copy_from_slice(&tb[..n]);
        out.extend_from_slice(&t);
        out.extend_from_slice(&self.counter.to_le_bytes());
        out.push(self.is_redirect as u8);
        out.push(self.is_new as u8);
        let mut ts = [b'0'; 14];
        let tsb = self.touched.as_bytes();
        ts[..tsb.len().min(14)].copy_from_slice(&tsb[..tsb.len().min(14)]);
        out.extend_from_slice(&ts);
        out.extend_from_slice(&self.latest_rev.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        debug_assert_eq!(out.len(), PAGE_ROW_WIDTH);
        out
    }

    /// Deserializes from [`PageRow::encode`] bytes.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != PAGE_ROW_WIDTH {
            return None;
        }
        let u64_at = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
        let title_end = b[12..12 + TITLE_WIDTH].iter().position(|&c| c == 0).unwrap_or(TITLE_WIDTH);
        Some(PageRow {
            id: u64_at(0),
            namespace: u32::from_le_bytes(b[8..12].try_into().unwrap()),
            title: String::from_utf8_lossy(&b[12..12 + title_end]).into_owned(),
            counter: u64_at(12 + TITLE_WIDTH),
            is_redirect: b[20 + TITLE_WIDTH] != 0,
            is_new: b[21 + TITLE_WIDTH] != 0,
            touched: String::from_utf8_lossy(&b[22 + TITLE_WIDTH..36 + TITLE_WIDTH]).into_owned(),
            latest_rev: u64_at(36 + TITLE_WIDTH),
            len: u64_at(44 + TITLE_WIDTH),
        })
    }

    /// The 17 bytes of "hot" projected fields the paper caches in the
    /// name_title index (4 fields, 25-byte cache items including the id):
    /// `latest_rev (8) ‖ len (8) ‖ is_redirect (1)`.
    pub fn cache_payload(&self) -> [u8; 17] {
        let mut out = [0u8; 17];
        out[..8].copy_from_slice(&self.latest_rev.to_le_bytes());
        out[8..16].copy_from_slice(&self.len.to_le_bytes());
        out[16] = self.is_redirect as u8;
        out
    }
}

/// A row of the `revision` table (MediaWiki schema subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevisionRow {
    /// `rev_id` — AUTO_INCREMENT primary key.
    pub id: u64,
    /// `rev_page` — owning page.
    pub page_id: u64,
    /// `rev_text_id` — pointer to the text blob.
    pub text_id: u64,
    /// `rev_comment` — edit summary (fixed width here).
    pub comment: String,
    /// `rev_user` — editor id.
    pub user: u64,
    /// `rev_timestamp` — 14-byte string (encoding waste).
    pub timestamp: String,
    /// `rev_minor_edit` — whole byte for one bit.
    pub minor_edit: bool,
    /// `rev_deleted` — whole byte for one bit.
    pub deleted: bool,
    /// `rev_len`.
    pub len: u64,
    /// `rev_parent_id` — previous revision of the same page (0 = none).
    pub parent_id: u64,
}

/// Fixed width of [`RevisionRow::comment`] in the tuple encoding.
pub const COMMENT_WIDTH: usize = 40;
/// Encoded width of a [`RevisionRow`] tuple.
pub const REVISION_ROW_WIDTH: usize = 8 * 3 + COMMENT_WIDTH + 8 + 14 + 1 + 1 + 8 + 8;

impl RevisionRow {
    /// Serializes to the fixed-width heap tuple layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(REVISION_ROW_WIDTH);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.page_id.to_le_bytes());
        out.extend_from_slice(&self.text_id.to_le_bytes());
        let mut c = [0u8; COMMENT_WIDTH];
        let cb = self.comment.as_bytes();
        let n = cb.len().min(COMMENT_WIDTH);
        c[..n].copy_from_slice(&cb[..n]);
        out.extend_from_slice(&c);
        out.extend_from_slice(&self.user.to_le_bytes());
        let mut ts = [b'0'; 14];
        let tsb = self.timestamp.as_bytes();
        ts[..tsb.len().min(14)].copy_from_slice(&tsb[..tsb.len().min(14)]);
        out.extend_from_slice(&ts);
        out.push(self.minor_edit as u8);
        out.push(self.deleted as u8);
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.parent_id.to_le_bytes());
        debug_assert_eq!(out.len(), REVISION_ROW_WIDTH);
        out
    }

    /// Deserializes from [`RevisionRow::encode`] bytes.
    pub fn decode(b: &[u8]) -> Option<Self> {
        if b.len() != REVISION_ROW_WIDTH {
            return None;
        }
        let u64_at = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
        let o = 24;
        let comment_end =
            b[o..o + COMMENT_WIDTH].iter().position(|&c| c == 0).unwrap_or(COMMENT_WIDTH);
        Some(RevisionRow {
            id: u64_at(0),
            page_id: u64_at(8),
            text_id: u64_at(16),
            comment: String::from_utf8_lossy(&b[o..o + comment_end]).into_owned(),
            user: u64_at(o + COMMENT_WIDTH),
            timestamp: String::from_utf8_lossy(&b[o + COMMENT_WIDTH + 8..o + COMMENT_WIDTH + 22])
                .into_owned(),
            minor_edit: b[o + COMMENT_WIDTH + 22] != 0,
            deleted: b[o + COMMENT_WIDTH + 23] != 0,
            len: u64_at(o + COMMENT_WIDTH + 24),
            parent_id: u64_at(o + COMMENT_WIDTH + 32),
        })
    }
}

/// Deterministic generator for a synthetic wiki.
pub struct WikiGenerator {
    rng: SmallRng,
}

impl WikiGenerator {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        WikiGenerator { rng: SmallRng::seed_from_u64(seed) }
    }

    /// Generates `n` pages with ids `1..=n`, unique titles, and realistic
    /// field contents (small namespaces, short titles, byte booleans,
    /// string timestamps).
    pub fn pages(&mut self, n: u64) -> Vec<PageRow> {
        (1..=n)
            .map(|id| {
                let namespace =
                    *[0u32, 0, 0, 0, 0, 0, 1, 2, 4, 10].get(self.rng.gen_range(0..10)).unwrap();
                let title = format!("Page_{:x}_{}", self.rng.gen::<u32>(), id);
                let len = self.rng.gen_range(100..60_000);
                PageRow {
                    id,
                    namespace,
                    title,
                    counter: self.rng.gen_range(0..100_000),
                    is_redirect: self.rng.gen_bool(0.07),
                    is_new: self.rng.gen_bool(0.02),
                    touched: format_timestamp(self.rng.gen_range(0..86_400 * 300)),
                    latest_rev: 0, // assigned by `revisions`
                    len,
                }
            })
            .collect()
    }

    /// Generates a revision history with `revs_per_page` revisions per
    /// page *on average* (so latest revisions are ≈`1/revs_per_page` of
    /// the table — the paper's 5% corresponds to `revs_per_page = 20`).
    ///
    /// Every edit gets a random timestamp and revisions are appended in
    /// global time order — Wikipedia's append-only heap. Each page's
    /// *latest* revision therefore lands wherever that page happened to
    /// be edited last: scattered through the table, approaching one hot
    /// tuple per data page (§3.1's "2% utilization"). Sets each page's
    /// `latest_rev`.
    pub fn revisions(&mut self, pages: &mut [PageRow], revs_per_page: usize) -> Vec<RevisionRow> {
        assert!(revs_per_page >= 1);
        // Edit events: page index + timestamp, count per page uniform in
        // [1, 2*revs_per_page - 1] (mean = revs_per_page).
        let horizon = 86_400u64 * 300;
        let mut events: Vec<(u64, usize)> = Vec::with_capacity(pages.len() * revs_per_page);
        for pi in 0..pages.len() {
            let k = self.rng.gen_range(1..=2 * revs_per_page - 1);
            for _ in 0..k {
                events.push((self.rng.gen_range(0..horizon), pi));
            }
        }
        events.sort_unstable();
        let mut out = Vec::with_capacity(events.len());
        let mut last_of_page = vec![0u64; pages.len()];
        for (rev_id0, (ts, pi)) in events.into_iter().enumerate() {
            let rev_id = rev_id0 as u64 + 1;
            let page = &mut pages[pi];
            out.push(RevisionRow {
                id: rev_id,
                page_id: page.id,
                text_id: rev_id + 1_000_000,
                comment: format!("edit of {}", page.title),
                user: self.rng.gen_range(1..50_000),
                timestamp: format_timestamp(ts),
                minor_edit: self.rng.gen_bool(0.3),
                deleted: false,
                len: self.rng.gen_range(100..60_000),
                parent_id: last_of_page[pi],
            });
            last_of_page[pi] = rev_id;
            page.latest_rev = rev_id;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_round_trip() {
        for s in [0u64, 59, 3600, 86_399, 86_400 * 359, 86_400 * 4000 + 12_345] {
            let ts = format_timestamp(s);
            assert_eq!(ts.len(), 14);
            assert_eq!(parse_timestamp(&ts), Some(s), "epoch {s} -> {ts}");
        }
    }

    #[test]
    fn timestamp_rejects_garbage() {
        assert_eq!(parse_timestamp("not-a-time!!!!"), None);
        assert_eq!(parse_timestamp("2011"), None);
        assert_eq!(parse_timestamp("20111401000000"), None); // month 14
    }

    #[test]
    fn page_row_round_trip() {
        let mut g = WikiGenerator::new(1);
        let mut pages = g.pages(50);
        g.revisions(&mut pages, 3);
        for p in &pages {
            let enc = p.encode();
            assert_eq!(enc.len(), PAGE_ROW_WIDTH);
            assert_eq!(PageRow::decode(&enc).unwrap(), *p);
        }
    }

    #[test]
    fn revision_row_round_trip() {
        let mut g = WikiGenerator::new(2);
        let mut pages = g.pages(20);
        let revs = g.revisions(&mut pages, 4);
        for r in &revs {
            let enc = r.encode();
            assert_eq!(enc.len(), REVISION_ROW_WIDTH);
            assert_eq!(RevisionRow::decode(&enc).unwrap(), *r);
        }
    }

    #[test]
    fn latest_revisions_are_scattered_and_about_5_percent() {
        let mut g = WikiGenerator::new(3);
        let mut pages = g.pages(500);
        let revs = g.revisions(&mut pages, 20);
        let latest: std::collections::HashSet<u64> = pages.iter().map(|p| p.latest_rev).collect();
        assert_eq!(latest.len(), 500, "one latest revision per page");
        let frac = latest.len() as f64 / revs.len() as f64;
        assert!((0.03..0.08).contains(&frac), "hot fraction {frac}");
        // Scattered: the hot set spans a wide range of table positions,
        // not a contiguous tail block (the §3.1 precondition).
        let positions: Vec<usize> = revs
            .iter()
            .enumerate()
            .filter(|(_, r)| latest.contains(&r.id))
            .map(|(i, _)| i)
            .collect();
        let span = positions.last().unwrap() - positions.first().unwrap();
        assert!(span > revs.len() / 2, "hot set clustered: span {span} of {}", revs.len());
        // Typical gap between consecutive hot tuples is many rows — i.e.
        // roughly one hot tuple per data page at realistic tuple sizes.
        let mean_gap = span as f64 / positions.len() as f64;
        assert!(mean_gap > 3.0, "hot tuples adjacent: mean gap {mean_gap}");
    }

    #[test]
    fn revisions_are_in_time_order_with_ids_matching() {
        let mut g = WikiGenerator::new(9);
        let mut pages = g.pages(50);
        let revs = g.revisions(&mut pages, 5);
        for w in revs.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp, "append order must be time order");
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn parent_chain_links_history() {
        let mut g = WikiGenerator::new(4);
        let mut pages = g.pages(10);
        let revs = g.revisions(&mut pages, 5);
        // For each page: parent pointers chain through every revision of
        // that page, ending at 0.
        for p in &pages {
            let expect = revs.iter().filter(|r| r.page_id == p.id).count();
            let mut cur = p.latest_rev;
            let mut hops = 0;
            while cur != 0 {
                let r = revs.iter().find(|r| r.id == cur).unwrap();
                assert_eq!(r.page_id, p.id);
                cur = r.parent_id;
                hops += 1;
            }
            assert_eq!(hops, expect, "page {}", p.id);
            assert!(hops >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = WikiGenerator::new(42);
        let mut b = WikiGenerator::new(42);
        assert_eq!(a.pages(20), b.pages(20));
    }

    #[test]
    fn cache_payload_has_fixed_width() {
        let mut g = WikiGenerator::new(5);
        let p = &g.pages(1)[0];
        assert_eq!(p.cache_payload().len(), 17);
        let pl = p.cache_payload();
        assert_eq!(u64::from_le_bytes(pl[..8].try_into().unwrap()), p.latest_rev);
    }

    #[test]
    fn titles_are_unique() {
        let mut g = WikiGenerator::new(6);
        let pages = g.pages(2000);
        let titles: std::collections::HashSet<_> =
            pages.iter().map(|p| (p.namespace, p.title.clone())).collect();
        assert_eq!(titles.len(), pages.len());
    }
}
