//! # nbb-workload — workload substrate for *No Bits Left Behind*
//!
//! The paper evaluates against Wikipedia's database and a 2-hour Apache
//! log trace, neither of which ships with this reproduction. This crate
//! builds the closest synthetic equivalents (see DESIGN.md §4):
//!
//! * [`zipf`] — O(1) zipfian sampling (the paper's α = 0.5 page skew),
//!   plus a scrambled variant that scatters hot items across the id
//!   space;
//! * [`wikipedia`] — MediaWiki-schema `page`/`revision` generators that
//!   reproduce the distributional facts the paper reports (string
//!   timestamps, 5% hot latest-revisions scattered one per page);
//! * [`trace`] — query traces: zipfian page lookups (§2.1.4) and the
//!   99.9%-hot revision workload (§3.1).
//!
//! Everything is seeded and deterministic so figures regenerate exactly.

#![warn(missing_docs)]

pub mod trace;
pub mod wikipedia;
pub mod zipf;

pub use trace::{page_lookup_trace, profile, revision_lookup_trace, TraceOp, TraceProfile};
pub use wikipedia::{
    format_timestamp, parse_timestamp, PageRow, RevisionRow, WikiGenerator, COMMENT_WIDTH,
    PAGE_ROW_WIDTH, REVISION_ROW_WIDTH, TITLE_WIDTH,
};
pub use zipf::{ScrambledZipf, Zipf};
