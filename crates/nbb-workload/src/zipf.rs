//! Zipfian sampling — the paper's workload skew model.
//!
//! §2.1.4 simulates the Wikipedia page workload with "a zipfian
//! distribution similar to Wikipedia (α = .5)": rank `k` is drawn with
//! probability proportional to `1/k^α`.
//!
//! [`Zipf`] implements rejection-inversion sampling (Hörmann &
//! Derflinger, 1996): O(1) per sample with no per-element tables, so the
//! harness can model millions of items. [`ScrambledZipf`] composes it
//! with a fixed pseudo-random permutation so that *popularity* is
//! zipfian while hot items are scattered uniformly through the id space
//! (as they are in Wikipedia, where popular pages are not adjacent ids).

use rand::Rng;

/// Zipfian distribution over ranks `1..=n` with exponent `alpha ≥ 0`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `1..=n` with `P(k) ∝ 1/k^alpha`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha < 0` or `alpha == 1` exactly is fine;
    /// the harmonic special case is handled internally.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n >= 1, "zipf needs at least one element");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let h_x1 = Self::h_integral(1.5, alpha) - 1.0;
        let h_n = Self::h_integral(n as f64 + 0.5, alpha);
        let s = 2.0
            - Self::h_integral_inverse(Self::h_integral(2.5, alpha) - Self::h(2.0, alpha), alpha);
        Zipf { n, alpha, h_x1, h_n, s }
    }

    /// Number of elements.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// `H(x) = ∫ 1/t^α dt`, the integral of the unnormalized density.
    fn h_integral(x: f64, alpha: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - alpha) * log_x) * log_x
    }

    fn h(x: f64, alpha: f64) -> f64 {
        (-alpha * x.ln()).exp()
    }

    fn h_integral_inverse(x: f64, alpha: f64) -> f64 {
        let mut t = x * (1.0 - alpha);
        if t < -1.0 {
            t = -1.0;
        }
        (helper1(t) * x).exp()
    }

    /// Draws a rank in `1..=n` (1 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inverse(u, self.alpha);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.s
                || u >= Self::h_integral(k + 0.5, self.alpha) - Self::h(k, self.alpha)
            {
                return k as u64;
            }
        }
    }

    /// Exact probability of rank `k` (for tests and analytics).
    pub fn probability(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n);
        let norm: f64 = (1..=self.n).map(|i| 1.0 / (i as f64).powf(self.alpha)).sum();
        1.0 / (k as f64).powf(self.alpha) / norm
    }

    /// Number of top ranks needed to cover `fraction` of the probability
    /// mass — e.g. "the 5% of tuples that receive 99.9% of accesses".
    pub fn ranks_covering(&self, fraction: f64) -> u64 {
        let norm: f64 = (1..=self.n).map(|i| 1.0 / (i as f64).powf(self.alpha)).sum();
        let mut acc = 0.0;
        for k in 1..=self.n {
            acc += 1.0 / (k as f64).powf(self.alpha) / norm;
            if acc >= fraction {
                return k;
            }
        }
        self.n
    }
}

/// `ln(1 + x) / x` with the x→0 limit handled.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `(exp(x) - 1) / x` for `h_integral`.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))
    }
}

/// Zipfian popularity over a *scrambled* id space: rank `r` maps to item
/// `perm(r)` under a fixed Feistel-style permutation of `0..n`.
#[derive(Debug, Clone)]
pub struct ScrambledZipf {
    zipf: Zipf,
    seed: u64,
}

impl ScrambledZipf {
    /// Creates a scrambled sampler over items `0..n`.
    pub fn new(n: u64, alpha: f64, seed: u64) -> Self {
        ScrambledZipf { zipf: Zipf::new(n, alpha), seed }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.zipf.n()
    }

    /// Draws an item id in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.zipf.sample(rng) - 1; // 0-based
        self.permute(rank)
    }

    /// The item id holding popularity rank `rank` (0 = hottest).
    pub fn item_of_rank(&self, rank: u64) -> u64 {
        assert!(rank < self.zipf.n());
        self.permute(rank)
    }

    /// Cycle-walking 4-round xorshift-multiply permutation of `0..n`.
    fn permute(&self, x: u64) -> u64 {
        let n = self.zipf.n();
        // Smallest power-of-two domain >= n, cycle-walk until in range.
        let bits = 64 - (n - 1).leading_zeros();
        let bits = bits.max(1);
        let mask = (1u64 << bits) - 1;
        let mut v = x;
        loop {
            v = self.mix(v, bits) & mask;
            if v < n {
                return v;
            }
        }
    }

    fn mix(&self, mut v: u64, bits: u32) -> u64 {
        let mask = (1u64 << bits) - 1;
        for round in 0..4u64 {
            v ^= self.seed.rotate_left(round as u32 * 16 + 1);
            v = v.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask;
            v ^= v >> (bits / 2).max(1);
            v &= mask;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn histogram(z: &Zipf, samples: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut h = vec![0u64; z.n() as usize + 1];
        for _ in 0..samples {
            h[z.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn ranks_stay_in_range() {
        let z = Zipf::new(100, 0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn empirical_matches_exact_probabilities_alpha_05() {
        let z = Zipf::new(50, 0.5);
        let n_samples = 200_000;
        let h = histogram(&z, n_samples, 42);
        for k in [1u64, 2, 5, 10, 25, 50] {
            let expect = z.probability(k);
            let got = h[k as usize] as f64 / n_samples as f64;
            assert!(
                (got - expect).abs() < 0.01 + expect * 0.15,
                "rank {k}: got {got:.4}, expect {expect:.4}"
            );
        }
    }

    #[test]
    fn alpha_one_harmonic_case() {
        let z = Zipf::new(100, 1.0);
        let h = histogram(&z, 100_000, 7);
        // P(1)/P(10) = 10 under alpha=1
        let ratio = h[1] as f64 / h[10] as f64;
        assert!((6.0..16.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let h = histogram(&z, 100_000, 3);
        for (k, count) in h.iter().enumerate().skip(1) {
            let f = *count as f64 / 100_000.0;
            assert!((f - 0.1).abs() < 0.02, "rank {k} freq {f}");
        }
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(1000, 0.99);
        let h = histogram(&z, 100_000, 9);
        let max = h.iter().enumerate().max_by_key(|(_, c)| **c).unwrap().0;
        assert_eq!(max, 1, "rank 1 must be the most frequent");
    }

    #[test]
    fn single_element_always_returns_it() {
        let z = Zipf::new(1, 0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn probability_sums_to_one() {
        let z = Zipf::new(200, 0.5);
        let total: f64 = (1..=200).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranks_covering_small_head_for_high_alpha() {
        let z = Zipf::new(10_000, 1.2);
        let head = z.ranks_covering(0.5);
        assert!(head < 500, "high skew should concentrate mass, head={head}");
        let z0 = Zipf::new(10_000, 0.0);
        assert!(z0.ranks_covering(0.5) >= 4_999);
    }

    #[test]
    fn scrambled_is_a_permutation() {
        let s = ScrambledZipf::new(1000, 0.5, 99);
        let mut seen = std::collections::HashSet::new();
        for r in 0..1000 {
            assert!(seen.insert(s.item_of_rank(r)), "duplicate at rank {r}");
        }
        assert_eq!(seen.len(), 1000);
        assert!(seen.iter().all(|&v| v < 1000));
    }

    #[test]
    fn scrambled_scatters_hot_items() {
        // The 10 hottest items should not be clustered in id space.
        let s = ScrambledZipf::new(10_000, 0.5, 5);
        let hot: Vec<u64> = (0..10).map(|r| s.item_of_rank(r)).collect();
        let mut sorted = hot.clone();
        sorted.sort_unstable();
        let span = sorted.last().unwrap() - sorted.first().unwrap();
        assert!(span > 1000, "hot items clustered: {sorted:?}");
    }

    #[test]
    fn scrambled_samples_follow_rank_popularity() {
        let s = ScrambledZipf::new(100, 1.0, 11);
        let mut rng = SmallRng::seed_from_u64(12);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(s.sample(&mut rng)).or_insert(0u64) += 1;
        }
        let hottest_item = s.item_of_rank(0);
        let max_item = *counts.iter().max_by_key(|(_, c)| **c).unwrap().0;
        assert_eq!(max_item, hottest_item);
    }
}
