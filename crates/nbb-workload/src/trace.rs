//! Query traces over the synthetic wiki.
//!
//! Reproduces the two access patterns the paper measures:
//!
//! * **Page lookups** (§2.1.4): 40% of Wikipedia's query volume hits the
//!   `page` table through the `name_title` index with zipfian (α = 0.5)
//!   popularity, projecting up to 4 extra fields.
//! * **Revision lookups** (§3.1): 99.9% of requests touch the ~5% of
//!   revision tuples that are each page's latest revision; the page
//!   popularity within the hot set is itself zipfian.

use crate::wikipedia::PageRow;
use crate::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One operation in a generated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Point lookup on the page table by `(namespace, title)`, projecting
    /// the cached fields (answerable from the index cache).
    PageLookup {
        /// Namespace component of the name_title key.
        namespace: u32,
        /// Title component of the name_title key.
        title: String,
    },
    /// Point lookup on the revision table by `rev_id`.
    RevisionLookup {
        /// The revision id to fetch.
        rev_id: u64,
    },
    /// Update of a page's non-key fields (invalidates its cache entry).
    PageTouch {
        /// Namespace component of the key.
        namespace: u32,
        /// Title component of the key.
        title: String,
    },
}

/// Generates `nops` zipfian page lookups (the paper's 40% query class),
/// with an `update_fraction` of operations being `PageTouch` writes.
pub fn page_lookup_trace(
    pages: &[PageRow],
    nops: usize,
    alpha: f64,
    update_fraction: f64,
    seed: u64,
) -> Vec<TraceOp> {
    assert!(!pages.is_empty());
    assert!((0.0..=1.0).contains(&update_fraction));
    let mut rng = SmallRng::seed_from_u64(seed);
    let zipf = Zipf::new(pages.len() as u64, alpha);
    // Popularity rank -> page, scrambled so hot pages are scattered.
    let mut order: Vec<usize> = (0..pages.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    (0..nops)
        .map(|_| {
            let rank = zipf.sample(&mut rng) as usize - 1;
            let p = &pages[order[rank]];
            if rng.gen_bool(update_fraction) {
                TraceOp::PageTouch { namespace: p.namespace, title: p.title.clone() }
            } else {
                TraceOp::PageLookup { namespace: p.namespace, title: p.title.clone() }
            }
        })
        .collect()
}

/// Generates `nops` revision lookups: `hot_fraction` of them hit the hot
/// set (each page's latest revision, zipfian within it), the rest pick a
/// cold historical revision uniformly.
pub fn revision_lookup_trace(
    pages: &[PageRow],
    total_revisions: u64,
    nops: usize,
    hot_fraction: f64,
    alpha: f64,
    seed: u64,
) -> Vec<TraceOp> {
    assert!(!pages.is_empty());
    assert!((0.0..=1.0).contains(&hot_fraction));
    let mut rng = SmallRng::seed_from_u64(seed);
    let zipf = Zipf::new(pages.len() as u64, alpha);
    let hot: Vec<u64> = pages.iter().map(|p| p.latest_rev).collect();
    (0..nops)
        .map(|_| {
            let rev_id = if rng.gen_bool(hot_fraction) {
                hot[zipf.sample(&mut rng) as usize - 1]
            } else {
                rng.gen_range(1..=total_revisions)
            };
            TraceOp::RevisionLookup { rev_id }
        })
        .collect()
}

/// Summary statistics of a trace, for validating generated skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceProfile {
    /// Total operations.
    pub ops: usize,
    /// Distinct keys touched.
    pub distinct: usize,
    /// Fraction of operations hitting the most popular 5% of keys.
    pub top5_share: f64,
    /// Fraction of operations that are writes.
    pub write_fraction: f64,
}

/// Profiles a trace (lookup skew, write share).
pub fn profile(trace: &[TraceOp]) -> TraceProfile {
    use std::collections::HashMap;
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut writes = 0usize;
    for op in trace {
        let key = match op {
            TraceOp::PageLookup { namespace, title } => format!("p:{namespace}:{title}"),
            TraceOp::RevisionLookup { rev_id } => format!("r:{rev_id}"),
            TraceOp::PageTouch { namespace, title } => {
                writes += 1;
                format!("p:{namespace}:{title}")
            }
        };
        *counts.entry(key).or_insert(0) += 1;
    }
    let mut freq: Vec<u64> = counts.values().copied().collect();
    freq.sort_unstable_by(|a, b| b.cmp(a));
    let top5 = (freq.len() as f64 * 0.05).ceil() as usize;
    let top5_hits: u64 = freq.iter().take(top5.max(1)).sum();
    TraceProfile {
        ops: trace.len(),
        distinct: counts.len(),
        top5_share: top5_hits as f64 / trace.len() as f64,
        write_fraction: writes as f64 / trace.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wikipedia::WikiGenerator;

    fn wiki(n: u64) -> (Vec<PageRow>, u64) {
        let mut g = WikiGenerator::new(77);
        let mut pages = g.pages(n);
        let revs = g.revisions(&mut pages, 20);
        (pages, revs.len() as u64)
    }

    #[test]
    fn page_trace_is_skewed() {
        let (pages, _) = wiki(1000);
        let trace = page_lookup_trace(&pages, 50_000, 0.5, 0.0, 1);
        let p = profile(&trace);
        assert_eq!(p.ops, 50_000);
        assert_eq!(p.write_fraction, 0.0);
        // α=0.5 over 1000 items: the top 5% should draw well above 5%.
        assert!(p.top5_share > 0.10, "top5 share {}", p.top5_share);
    }

    #[test]
    fn page_trace_update_fraction_respected() {
        let (pages, _) = wiki(100);
        let trace = page_lookup_trace(&pages, 20_000, 0.5, 0.2, 2);
        let p = profile(&trace);
        assert!((p.write_fraction - 0.2).abs() < 0.02, "writes {}", p.write_fraction);
    }

    #[test]
    fn revision_trace_concentrates_on_hot_set() {
        let (pages, nrevs) = wiki(500);
        let hot: std::collections::HashSet<u64> = pages.iter().map(|p| p.latest_rev).collect();
        let trace = revision_lookup_trace(&pages, nrevs, 30_000, 0.999, 0.5, 3);
        let hot_hits = trace
            .iter()
            .filter(|op| match op {
                TraceOp::RevisionLookup { rev_id } => hot.contains(rev_id),
                _ => false,
            })
            .count();
        let share = hot_hits as f64 / trace.len() as f64;
        // 99.9% targeted plus a tiny accidental-hot from the cold picks.
        assert!(share > 0.995, "hot share {share}");
        // Hot set is ~5% of all revisions.
        let frac = hot.len() as f64 / nrevs as f64;
        assert!((0.03..0.08).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn traces_are_deterministic() {
        let (pages, nrevs) = wiki(50);
        let a = revision_lookup_trace(&pages, nrevs, 100, 0.9, 0.5, 5);
        let b = revision_lookup_trace(&pages, nrevs, 100, 0.9, 0.5, 5);
        assert_eq!(a, b);
        let c = revision_lookup_trace(&pages, nrevs, 100, 0.9, 0.5, 6);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn profile_counts_distinct_keys() {
        let ops = vec![
            TraceOp::RevisionLookup { rev_id: 1 },
            TraceOp::RevisionLookup { rev_id: 1 },
            TraceOp::RevisionLookup { rev_id: 2 },
        ];
        let p = profile(&ops);
        assert_eq!(p.distinct, 2);
        assert_eq!(p.ops, 3);
    }
}
