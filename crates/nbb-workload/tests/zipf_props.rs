//! Property tests for the workload generators.

use nbb_workload::{ScrambledZipf, WikiGenerator, Zipf};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// The scrambled sampler's rank→item map is a bijection on 0..n for
    /// arbitrary n and seed (not just powers of two).
    #[test]
    fn scramble_is_bijective(n in 1u64..3_000, seed in any::<u64>()) {
        let s = ScrambledZipf::new(n, 0.5, seed);
        let mut seen = vec![false; n as usize];
        for r in 0..n {
            let item = s.item_of_rank(r);
            prop_assert!(item < n, "item {} out of range {}", item, n);
            prop_assert!(!seen[item as usize], "duplicate item {}", item);
            seen[item as usize] = true;
        }
    }

    /// Probabilities are monotone non-increasing in rank for any alpha.
    #[test]
    fn zipf_probability_monotone(n in 2u64..500, alpha in 0.0f64..2.5) {
        let z = Zipf::new(n, alpha);
        let mut prev = f64::INFINITY;
        for k in 1..=n.min(50) {
            let p = z.probability(k);
            prop_assert!(p <= prev + 1e-12, "p({k})={p} > p({})={prev}", k - 1);
            prop_assert!(p >= 0.0);
            prev = p;
        }
    }

    /// Samples always land in 1..=n.
    #[test]
    fn zipf_samples_in_range(n in 1u64..10_000, alpha in 0.0f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(n, alpha);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Wiki generation invariants for arbitrary shapes: ids dense from 1,
    /// each page's latest_rev actually belongs to it, timestamps sorted.
    #[test]
    fn wiki_invariants(n_pages in 1u64..80, revs in 1usize..12, seed in any::<u64>()) {
        let mut g = WikiGenerator::new(seed);
        let mut pages = g.pages(n_pages);
        let revisions = g.revisions(&mut pages, revs);
        prop_assert!(!revisions.is_empty());
        for (i, r) in revisions.iter().enumerate() {
            prop_assert_eq!(r.id, i as u64 + 1, "rev ids must be dense");
        }
        for w in revisions.windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp);
        }
        for p in &pages {
            let latest = revisions.iter().find(|r| r.id == p.latest_rev)
                .expect("latest_rev exists");
            prop_assert_eq!(latest.page_id, p.id);
            // Nothing newer for this page.
            prop_assert!(!revisions.iter().any(|r| r.page_id == p.id && r.id > p.latest_rev));
        }
    }
}
