//! The waste audit: "tools that automate waste detection" (§1).
//!
//! One report per table covering the paper's three waste classes:
//!
//! * **Unused space** (§2): heap and index fill factors, free bytes, and
//!   how much of the free space the index cache is recycling;
//! * **Locality waste** (§3): how thinly hot tuples are spread over data
//!   pages (Wikipedia's revision table: "as few as one hot tuple per
//!   data page (2% utilization)");
//! * **Encoding waste** (§4): the schema analyzer's verdict over decoded
//!   tuples.

use crate::table::Table;
use nbb_encoding::schema::{analyze_table, Schema, SchemaReport};
use nbb_encoding::Value;
use nbb_storage::error::Result;
use nbb_storage::rid::RecordId;
use std::collections::HashMap;

/// Index-level space metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSpaceReport {
    /// Index name.
    pub name: String,
    /// Leaf pages.
    pub leaf_pages: usize,
    /// Mean leaf fill factor (the paper's 68% / 45% numbers).
    pub avg_fill: f64,
    /// Total free bytes across leaves.
    pub free_bytes: usize,
    /// Usable cache slots carved from that free space.
    pub cache_slots: usize,
    /// Currently occupied cache slots.
    pub cache_occupied: usize,
    /// Write-path counters: a leaf-grouped multi-insert counts as one
    /// batch (not once per key), and
    /// [`nbb_btree::WriteStats::keys_per_leaf_group`] is the realized
    /// amortization factor. Also carries the index's same-key
    /// write-intent contention (`intent_parks` / `intent_handoffs`).
    pub writes: nbb_btree::WriteStats,
    /// The index buffer pool's fault and write-behind counters at audit
    /// time: `faults` started vs `fault_joins` coalesced onto in-flight
    /// loads, and `wb_flushed`/`wb_pending` for writes taken off the
    /// eviction path. One pool serves every index of a table, so each
    /// report row carries the same snapshot.
    pub pool: nbb_storage::PoolStats,
}

/// §2 metrics: allocated-but-empty bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct UnusedSpaceReport {
    /// Heap pages.
    pub heap_pages: usize,
    /// Mean heap page fill factor.
    pub heap_avg_fill: f64,
    /// Per-index reports.
    pub indexes: Vec<IndexSpaceReport>,
}

/// §3 metrics: hot-tuple placement quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityReport {
    /// Hot tuples considered.
    pub hot_tuples: usize,
    /// Data pages holding at least one hot tuple.
    pub pages_with_hot: usize,
    /// Mean hot tuples per hot page (1.0 = maximally scattered).
    pub hot_per_page: f64,
    /// Mean fraction of a hot page's bytes that are hot tuple bytes —
    /// the paper's "2% utilization".
    pub hot_utilization: f64,
}

/// Combined audit across the three waste classes.
#[derive(Debug, Clone, PartialEq)]
pub struct WasteReport {
    /// Audited table name.
    pub table: String,
    /// §2 unused space.
    pub unused: UnusedSpaceReport,
    /// §3 locality (when a hot set was supplied).
    pub locality: Option<LocalityReport>,
    /// §4 encoding (when a schema/decoder was supplied).
    pub encoding: Option<SchemaReport>,
    /// The free-space tuner's recent decisions (oldest first) — empty
    /// when tuning is off or no move has fired yet. Populated by
    /// [`crate::db::Database::waste_report`]; the plain [`audit`] entry
    /// point has no tuner to ask.
    pub tuner: Vec<String>,
}

impl WasteReport {
    /// Renders a human-readable multi-section report.
    pub fn render(&self) -> String {
        let mut out = format!("=== waste audit: table {} ===\n", self.table);
        out.push_str(&format!(
            "[unused space] heap: {} pages, {:.1}% full\n",
            self.unused.heap_pages,
            self.unused.heap_avg_fill * 100.0
        ));
        for i in &self.unused.indexes {
            out.push_str(&format!(
                "  index {}: {} leaves, {:.1}% full, {} free bytes, cache {}/{} slots used\n",
                i.name,
                i.leaf_pages,
                i.avg_fill * 100.0,
                i.free_bytes,
                i.cache_occupied,
                i.cache_slots
            ));
            if i.writes.batches > 0 {
                out.push_str(&format!(
                    "    writes: {} keys in {} batches over {} leaf groups \
                     ({:.1} keys/descent)\n",
                    i.writes.keys,
                    i.writes.batches,
                    i.writes.leaf_groups,
                    i.writes.keys_per_leaf_group(),
                ));
            }
            if i.writes.intent_parks > 0 {
                out.push_str(&format!(
                    "    intents: {} same-key writers parked, {} handoffs \
                     (contention the intent table serialized)\n",
                    i.writes.intent_parks, i.writes.intent_handoffs,
                ));
            }
            if i.pool.faults > 0 {
                out.push_str(&format!(
                    "    pool: {} faults ({} joined in-flight loads), \
                     write-behind {} flushed / {} pending\n",
                    i.pool.faults, i.pool.fault_joins, i.pool.wb_flushed, i.pool.wb_pending,
                ));
            }
            if i.pool.compressed_ratio_den > 0 {
                out.push_str(&format!(
                    "    compressed tier: {} pages / {} bytes held ({:.2}x ratio), \
                     {} faults served without disk, {} budget evictions\n",
                    i.pool.compressed_pages,
                    i.pool.compressed_bytes,
                    i.pool.compression_ratio(),
                    i.pool.compressed_hits,
                    i.pool.compressed_evictions,
                ));
            }
            if i.pool.read_batches > 0 {
                out.push_str(&format!(
                    "    batched reads: {} pages in {} batches \
                     ({:.1} pages/read — device round-trips amortized)\n",
                    i.pool.read_pages,
                    i.pool.read_batches,
                    i.pool.read_pages as f64 / i.pool.read_batches as f64,
                ));
            }
            if i.pool.prefetch_issued > 0 {
                out.push_str(&format!(
                    "    readahead: {} pages prefetched, {} hit, {} wasted \
                     (speculation win rate of the spare frames)\n",
                    i.pool.prefetch_issued, i.pool.prefetch_hits, i.pool.prefetch_wasted,
                ));
            }
        }
        if let Some(l) = &self.locality {
            out.push_str(&format!(
                "[locality] {} hot tuples on {} pages ({:.2} hot/page, {:.1}% hot-page utilization)\n",
                l.hot_tuples,
                l.pages_with_hot,
                l.hot_per_page,
                l.hot_utilization * 100.0
            ));
        }
        if let Some(e) = &self.encoding {
            out.push_str("[encoding]\n");
            out.push_str(&e.render());
        }
        if !self.tuner.is_empty() {
            out.push_str("[tuner]\n");
            for line in &self.tuner {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out
    }
}

/// Audits unused space (always available).
pub fn audit_unused(table: &Table, index_names: &[&str]) -> Result<UnusedSpaceReport> {
    let pool = table.index_pool().stats();
    let mut indexes = Vec::new();
    for name in index_names {
        let h = table.index_tree(name)?;
        let s = h.tree().index_stats()?;
        indexes.push(IndexSpaceReport {
            name: (*name).to_string(),
            leaf_pages: s.leaf_pages,
            avg_fill: s.avg_fill(),
            free_bytes: s.free_bytes,
            cache_slots: s.cache_slots,
            cache_occupied: s.cache_occupied,
            writes: h.tree().write_stats(),
            pool,
        });
    }
    Ok(UnusedSpaceReport {
        heap_pages: table.heap().page_count(),
        heap_avg_fill: table.heap().avg_fill_factor()?,
        indexes,
    })
}

/// Audits locality for a given hot set of tuple addresses.
pub fn audit_locality(table: &Table, hot: &[RecordId]) -> Result<LocalityReport> {
    let page_size = table.heap().pool().disk().page_size();
    let mut per_page: HashMap<u64, usize> = HashMap::new();
    for rid in hot {
        *per_page.entry(rid.page.0).or_insert(0) += 1;
    }
    let pages_with_hot = per_page.len();
    let hot_per_page =
        if pages_with_hot == 0 { 0.0 } else { hot.len() as f64 / pages_with_hot as f64 };
    let hot_utilization = if pages_with_hot == 0 {
        0.0
    } else {
        let width = table.tuple_width() as f64;
        per_page.values().map(|&n| n as f64 * width / page_size as f64).sum::<f64>()
            / pages_with_hot as f64
    };
    Ok(LocalityReport { hot_tuples: hot.len(), pages_with_hot, hot_per_page, hot_utilization })
}

/// Audits encoding waste by decoding up to `sample_limit` tuples with
/// `decode` and running the §4.1 analyzer.
pub fn audit_encoding(
    table: &Table,
    schema: &Schema,
    decode: impl Fn(&[u8]) -> Vec<Value>,
    sample_limit: usize,
) -> Result<SchemaReport> {
    let mut rows = Vec::new();
    // Early exit: once the sample is full there is no reason to keep
    // paying for heap pages.
    table.scan(|_, tuple| {
        if rows.len() < sample_limit {
            rows.push(decode(tuple));
        }
        rows.len() < sample_limit
    })?;
    Ok(analyze_table(schema, &rows))
}

/// Encoding-audit request: the logical schema, a tuple decoder, and a
/// row sample limit.
pub type EncodingAudit<'a> = (&'a Schema, &'a dyn Fn(&[u8]) -> Vec<Value>, usize);

/// Runs the full audit.
pub fn audit(
    table: &Table,
    index_names: &[&str],
    hot: Option<&[RecordId]>,
    encoding: Option<EncodingAudit<'_>>,
) -> Result<WasteReport> {
    Ok(WasteReport {
        table: table.name().to_string(),
        unused: audit_unused(table, index_names)?,
        locality: match hot {
            Some(h) => Some(audit_locality(table, h)?),
            None => None,
        },
        encoding: match encoding {
            Some((schema, decode, limit)) => Some(audit_encoding(table, schema, decode, limit)?),
            None => None,
        },
        tuner: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{FieldSpec, IndexSpec};
    use nbb_encoding::{ColumnDef, DeclaredType};
    use nbb_storage::{BufferPool, DiskManager, InMemoryDisk};
    use std::sync::Arc;

    fn table() -> Table {
        let d1: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let d2: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let t = Table::create(
            "audit_me",
            24,
            Arc::new(BufferPool::new(d1, 64)),
            Arc::new(BufferPool::new(d2, 64)),
        )
        .unwrap();
        t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
            .unwrap();
        for i in 0..500u64 {
            let mut tu = Vec::new();
            tu.extend_from_slice(&i.to_be_bytes());
            tu.extend_from_slice(&(i % 4).to_le_bytes());
            tu.extend_from_slice(&[1u8; 8]);
            t.insert(&tu).unwrap();
        }
        t
    }

    #[test]
    fn unused_report_sees_heap_and_index() {
        let t = table();
        let r = audit_unused(&t, &["pk"]).unwrap();
        assert!(r.heap_pages > 1);
        assert!(r.heap_avg_fill > 0.5);
        assert_eq!(r.indexes.len(), 1);
        assert!(r.indexes[0].leaf_pages >= 1);
        assert!(r.indexes[0].cache_slots > 0, "free space must expose cache slots");
        assert!(r.indexes[0].pool.faults > 0, "index pages were cold-loaded at least once");
        assert_eq!(r.indexes[0].pool.wb_pending, 0, "nothing evicted dirty in this workload");
    }

    #[test]
    fn locality_detects_scatter_vs_cluster() {
        let t = table();
        // Scattered hot set: every 20th tuple.
        let mut all = Vec::new();
        t.scan(|rid, _| {
            all.push(rid);
            true
        })
        .unwrap();
        let scattered: Vec<_> = all.iter().copied().step_by(20).collect();
        let r1 = audit_locality(&t, &scattered).unwrap();
        assert!(r1.hot_utilization < 0.2, "scattered: {r1:?}");
        // Clustered hot set: a contiguous run.
        let clustered: Vec<_> = all[..25].to_vec();
        let r2 = audit_locality(&t, &clustered).unwrap();
        assert!(r2.hot_per_page > r1.hot_per_page, "clustered {r2:?} vs scattered {r1:?}");
        assert!(r2.hot_utilization > r1.hot_utilization);
    }

    #[test]
    fn empty_hot_set_is_safe() {
        let t = table();
        let r = audit_locality(&t, &[]).unwrap();
        assert_eq!(r.pages_with_hot, 0);
        assert_eq!(r.hot_per_page, 0.0);
    }

    #[test]
    fn encoding_audit_flags_waste() {
        let t = table();
        let schema = Schema {
            table: "audit_me".into(),
            columns: vec![
                ColumnDef::new("id", DeclaredType::Int64),
                ColumnDef::new("small", DeclaredType::Int64),
                ColumnDef::new("const", DeclaredType::Int64),
            ],
        };
        let decode = |b: &[u8]| {
            vec![
                Value::Int(i64::from_be_bytes(b[0..8].try_into().unwrap())),
                Value::Int(i64::from_le_bytes(b[8..16].try_into().unwrap())),
                Value::Int(i64::from_le_bytes(b[16..24].try_into().unwrap())),
            ]
        };
        let rep = audit_encoding(&t, &schema, decode, 1000).unwrap();
        assert_eq!(rep.rows, 500);
        // `small` has range 0..3 (2 bits), `const` is constant: big waste.
        assert!(rep.waste_fraction() > 0.3, "waste {}", rep.waste_fraction());
    }

    #[test]
    fn full_audit_renders_all_sections() {
        let t = table();
        let mut all = Vec::new();
        t.scan(|rid, _| {
            all.push(rid);
            true
        })
        .unwrap();
        let schema = Schema {
            table: "audit_me".into(),
            columns: vec![ColumnDef::new("id", DeclaredType::Int64)],
        };
        let decode: &dyn Fn(&[u8]) -> Vec<Value> =
            &|b: &[u8]| vec![Value::Int(i64::from_be_bytes(b[0..8].try_into().unwrap()))];
        let rep = audit(&t, &["pk"], Some(&all[..10]), Some((&schema, decode, 100))).unwrap();
        let text = rep.render();
        assert!(text.contains("[unused space]"));
        assert!(text.contains("[locality]"));
        assert!(text.contains("[encoding]"));
        assert!(text.contains("audit_me"));
    }

    #[test]
    fn readahead_counters_render_when_nonzero() {
        let t = table();
        let mut rep = audit(&t, &["pk"], None, None).unwrap();
        let zero = rep.render();
        assert!(
            !zero.contains("batched reads") && !zero.contains("readahead:"),
            "quiet counters must render nothing:\n{zero}"
        );
        let pool = &mut rep.unused.indexes[0].pool;
        pool.read_batches = 3;
        pool.read_pages = 24;
        pool.prefetch_issued = 24;
        pool.prefetch_hits = 20;
        pool.prefetch_wasted = 2;
        let text = rep.render();
        assert!(
            text.contains("batched reads: 24 pages in 3 batches (8.0 pages/read"),
            "batch coalescing line missing:\n{text}"
        );
        assert!(
            text.contains("readahead: 24 pages prefetched, 20 hit, 2 wasted"),
            "speculation verdict line missing:\n{text}"
        );
    }
}
