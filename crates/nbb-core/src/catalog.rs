//! The catalog: persisting database metadata so tables survive restart.
//!
//! Real systems keep table/index metadata in a system catalog; this one
//! serializes every table's name, tuple width, heap page list, and
//! index declarations (+ B+Tree root pages) into a byte stream stored
//! across dedicated pages of the *heap* disk:
//!
//! * page 0 (reserved at database open) is the header: magic, version,
//!   payload length, and the page id of the first payload chunk;
//! * payload chunks are freshly-allocated contiguous pages (persisting
//!   again allocates new chunks; superseded chunks are simply garbage —
//!   acceptable waste for a simulation and called out in the audit
//!   spirit of the paper).
//!
//! Reopening ([`crate::db::Database::reopen`]) reverses the process with
//! [`nbb_storage::HeapFile::attach`] and [`nbb_btree::BTree::open`] —
//! which starts a fresh CSN epoch, so persisted index-cache bytes are
//! harmless (§2.1.2's crash handling).

use crate::table::{FieldSpec, IndexSpec};
use nbb_storage::error::{Result, StorageError};
use nbb_storage::page::PageId;

const MAGIC: u32 = 0x6E62_6201; // "nbb\x01"
const VERSION: u32 = 1;

/// One table's catalog entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TableEntry {
    /// Table name.
    pub name: String,
    /// Fixed tuple width.
    pub tuple_width: u32,
    /// Heap pages in order.
    pub heap_pages: Vec<PageId>,
    /// Index declarations and their root pages.
    pub indexes: Vec<(IndexSpec, PageId)>,
}

/// The whole catalog.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    /// Tables, sorted by name.
    pub tables: Vec<TableEntry>,
}

struct Writer(Vec<u8>);

impl Writer {
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        let b = s.as_bytes();
        self.u16(b.len() as u16);
        self.0.extend_from_slice(b);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StorageError::Corrupt("catalog truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16> {
        // nbb-lint: allow(unwrap, take() returned exactly that many bytes)
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
    fn u32(&mut self) -> Result<u32> {
        // nbb-lint: allow(unwrap, take() returned exactly that many bytes)
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64> {
        // nbb-lint: allow(unwrap, take() returned exactly that many bytes)
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn str(&mut self) -> Result<String> {
        let n = self.u16()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| StorageError::Corrupt("catalog string not utf-8".into()))
    }
}

/// Serializes a catalog to bytes.
pub fn encode(cat: &Catalog) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    w.u32(MAGIC);
    w.u32(VERSION);
    w.u32(cat.tables.len() as u32);
    for t in &cat.tables {
        w.str(&t.name);
        w.u32(t.tuple_width);
        w.u32(t.heap_pages.len() as u32);
        for p in &t.heap_pages {
            w.u64(p.0);
        }
        w.u16(t.indexes.len() as u16);
        for (spec, root) in &t.indexes {
            w.str(&spec.name);
            w.u32(spec.key.offset as u32);
            w.u32(spec.key.len as u32);
            w.u16(spec.cached_fields.len() as u16);
            for f in &spec.cached_fields {
                w.u32(f.offset as u32);
                w.u32(f.len as u32);
            }
            w.u32(spec.bucket_slots as u32);
            w.u32(spec.log_threshold as u32);
            w.u64(root.0);
        }
    }
    w.0
}

/// Deserializes a catalog from bytes.
pub fn decode(buf: &[u8]) -> Result<Catalog> {
    let mut r = Reader { buf, pos: 0 };
    if r.u32()? != MAGIC {
        return Err(StorageError::Corrupt("catalog magic mismatch".into()));
    }
    if r.u32()? != VERSION {
        return Err(StorageError::Corrupt("catalog version unsupported".into()));
    }
    let ntables = r.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let name = r.str()?;
        let tuple_width = r.u32()?;
        let npages = r.u32()? as usize;
        let mut heap_pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            heap_pages.push(PageId(r.u64()?));
        }
        let nindexes = r.u16()? as usize;
        let mut indexes = Vec::with_capacity(nindexes);
        for _ in 0..nindexes {
            let iname = r.str()?;
            let key = FieldSpec::new(r.u32()? as usize, r.u32()? as usize);
            let ncached = r.u16()? as usize;
            let mut cached_fields = Vec::with_capacity(ncached);
            for _ in 0..ncached {
                cached_fields.push(FieldSpec::new(r.u32()? as usize, r.u32()? as usize));
            }
            let bucket_slots = r.u32()? as usize;
            let log_threshold = r.u32()? as usize;
            let root = PageId(r.u64()?);
            indexes.push((
                IndexSpec { name: iname, key, cached_fields, bucket_slots, log_threshold },
                root,
            ));
        }
        tables.push(TableEntry { name, tuple_width, heap_pages, indexes });
    }
    Ok(Catalog { tables })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        Catalog {
            tables: vec![
                TableEntry {
                    name: "revision".into(),
                    tuple_width: 112,
                    heap_pages: vec![PageId(1), PageId(7), PageId(9)],
                    indexes: vec![
                        (
                            IndexSpec::cached(
                                "by_rev_id",
                                FieldSpec::new(0, 8),
                                vec![FieldSpec::new(8, 8), FieldSpec::new(16, 1)],
                            ),
                            PageId(42),
                        ),
                        (IndexSpec::plain("by_page", FieldSpec::new(8, 8)), PageId(55)),
                    ],
                },
                TableEntry {
                    name: "page".into(),
                    tuple_width: 80,
                    heap_pages: vec![],
                    indexes: vec![],
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let cat = sample();
        let bytes = encode(&cat);
        let back = decode(&bytes).unwrap();
        assert_eq!(back.tables.len(), 2);
        assert_eq!(back.tables[0].name, "revision");
        assert_eq!(back.tables[0].heap_pages, vec![PageId(1), PageId(7), PageId(9)]);
        assert_eq!(back.tables[0].indexes.len(), 2);
        assert_eq!(back.tables[0].indexes[0].0.name, "by_rev_id");
        assert_eq!(back.tables[0].indexes[0].0.cached_fields.len(), 2);
        assert_eq!(back.tables[0].indexes[0].1, PageId(42));
        assert_eq!(back.tables[1].name, "page");
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[1, 2, 3, 4, 5, 6, 7, 8]).is_err());
        let mut bytes = encode(&sample());
        bytes.truncate(bytes.len() / 2);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn empty_catalog_round_trips() {
        let bytes = encode(&Catalog::default());
        assert_eq!(decode(&bytes).unwrap().tables.len(), 0);
    }
}
