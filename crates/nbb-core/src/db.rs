//! Database facade: pools, disks, and named tables in one place.

use crate::table::Table;
use nbb_storage::disk::{DiskManager, DiskModel, InMemoryDisk, SimulatedDisk};
use nbb_storage::error::{Result, StorageError};
use nbb_storage::lockrank;
use nbb_storage::stats::{IoStats, PoolStats};
use nbb_storage::BufferPool;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration for a [`Database`].
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Page size for both data and index pages.
    pub page_size: usize,
    /// Buffer-pool frames for data pages.
    pub heap_frames: usize,
    /// Buffer-pool frames for index pages (separate pool: the Figure 3
    /// experiments size this independently).
    pub index_frames: usize,
    /// Target lock-stripe shard count for each buffer pool. Clamped so
    /// every shard keeps at least
    /// [`nbb_storage::MIN_FRAMES_PER_SHARD`] frames — tiny experiment
    /// pools degrade gracefully to a single stripe while production
    /// pools fan out. Concurrent readers of distinct pages contend only
    /// within a stripe.
    pub pool_shards: usize,
    /// Write-behind queue depth for each buffer pool: dirty eviction
    /// victims are memcpy'd into this bounded queue and written to disk
    /// by a background flusher, so victim reclaim never waits on the
    /// device. `0` disables write-behind — every dirty eviction pays a
    /// synchronous write, the pre-overlapped-I/O behavior. Durability
    /// is unchanged either way: [`Database::persist`] and
    /// [`Database::close`] drain the queue before returning.
    pub write_behind: usize,
    /// Stripes in each index's key-level write-intent table (the
    /// same-key writer coordination structure; see
    /// [`nbb_btree::KeyIntents`]). Writers on one key serialize by
    /// parking on the in-flight intent; writers on distinct keys only
    /// share a stripe's map mutex for a lookup, so this bounds writer
    /// fan-out the way `pool_shards` bounds reader fan-out. `1` is
    /// legal (degenerate single-stripe table, correctness unchanged);
    /// `0` selects [`nbb_btree::DEFAULT_INTENT_STRIPES`].
    pub intent_stripes: usize,
    /// Compressed frame tier budget, in stored (encoded) bytes, for
    /// each buffer pool. Nonzero makes eviction demote cold victims
    /// into a budget-bounded compressed store (a background thread pays
    /// the CPU; a later fault on such a page decompresses instead of
    /// reading the disk), so the same frame budget effectively caches
    /// compression-ratio× more pages. `0` (the default) disables the
    /// tier entirely — eviction behavior is bit-identical to a build
    /// without it. See `nbb_storage::buffer`'s module docs;
    /// `TableStats::pool_compressed_*` meters it.
    pub compressed_budget_bytes: usize,
    /// Disk latency model; `None` = plain in-memory disk.
    pub disk_model: Option<DiskModel>,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            page_size: 8192,
            heap_frames: 1024,
            index_frames: 1024,
            pool_shards: nbb_storage::DEFAULT_POOL_SHARDS,
            write_behind: nbb_storage::DEFAULT_WRITE_BEHIND,
            intent_stripes: nbb_btree::DEFAULT_INTENT_STRIPES,
            compressed_budget_bytes: 0,
            disk_model: None,
        }
    }
}

impl DbConfig {
    /// Builds a pool of `frames` frames over `disk` with this config's
    /// shard target (clamped by the pool's own headroom policy,
    /// [`nbb_storage::clamp_shards`]), write-behind depth, and
    /// compressed-tier budget.
    fn build_pool(&self, disk: &Arc<dyn DiskManager>, frames: usize) -> Arc<BufferPool> {
        let shards = nbb_storage::clamp_shards(frames, self.pool_shards);
        Arc::new(BufferPool::with_options(
            Arc::clone(disk),
            frames,
            shards,
            self.write_behind,
            self.compressed_budget_bytes,
        ))
    }
}

/// A small database: two buffer pools over two disks, named tables.
pub struct Database {
    config: DbConfig,
    heap_pool: Arc<BufferPool>,
    index_pool: Arc<BufferPool>,
    heap_disk: Arc<dyn DiskManager>,
    index_disk: Arc<dyn DiskManager>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Database {
    /// Opens an empty database per `config`.
    pub fn open(config: DbConfig) -> Self {
        let heap_disk = Self::fresh_disk(&config);
        let index_disk = Self::fresh_disk(&config);
        let db = Self::attach_disks(config, heap_disk, index_disk)
            // nbb-lint: allow(unwrap, fresh in-memory disks cannot fail validation)
            .expect("fresh in-memory disks are always attachable");
        // nbb-lint: allow(unwrap, fresh in-memory disks cannot fail allocation)
        db.reserve_catalog_header().expect("fresh in-memory disks always allocate");
        db
    }

    fn fresh_disk(config: &DbConfig) -> Arc<dyn DiskManager> {
        match config.disk_model {
            Some(model) => Arc::new(SimulatedDisk::new(config.page_size, model)),
            None => Arc::new(InMemoryDisk::new(config.page_size)),
        }
    }

    /// Opens an empty database over caller-supplied disks (e.g.
    /// [`nbb_storage::FileDisk`]s for real persistence). The disks must
    /// be empty; use [`Database::reopen`] for populated ones.
    pub fn with_disks(
        config: DbConfig,
        heap_disk: Arc<dyn DiskManager>,
        index_disk: Arc<dyn DiskManager>,
    ) -> Result<Self> {
        for (name, disk) in [("heap", &heap_disk), ("index", &index_disk)] {
            if disk.num_pages() != 0 {
                return Err(StorageError::Corrupt(format!(
                    "with_disks requires empty disks, but the {name} disk holds {} page(s); \
                     use Database::reopen for populated disks",
                    disk.num_pages()
                )));
            }
        }
        let db = Self::attach_disks(config, heap_disk, index_disk)?;
        db.reserve_catalog_header()?;
        Ok(db)
    }

    /// The one construction path: validates page sizes and builds both
    /// pools per `config`. `open`, `with_disks`, and `reopen` all
    /// funnel through here. Side-effect free on the disks — probing a
    /// populated (or wrong) disk via `reopen` must not mutate it.
    fn attach_disks(
        config: DbConfig,
        heap_disk: Arc<dyn DiskManager>,
        index_disk: Arc<dyn DiskManager>,
    ) -> Result<Self> {
        Self::check_page_sizes(&config, &heap_disk, &index_disk)?;
        let heap_pool = config.build_pool(&heap_disk, config.heap_frames);
        let index_pool = config.build_pool(&index_disk, config.index_frames);
        Ok(Database {
            config,
            heap_pool,
            index_pool,
            heap_disk,
            index_disk,
            tables: RwLock::with_rank(lockrank::DB_TABLES, HashMap::new()),
        })
    }

    fn check_page_sizes(
        config: &DbConfig,
        heap_disk: &Arc<dyn DiskManager>,
        index_disk: &Arc<dyn DiskManager>,
    ) -> Result<()> {
        if heap_disk.page_size() != config.page_size || index_disk.page_size() != config.page_size {
            return Err(StorageError::Corrupt(format!(
                "disk page sizes (heap {}, index {}) do not match config page size {}",
                heap_disk.page_size(),
                index_disk.page_size(),
                config.page_size
            )));
        }
        Ok(())
    }

    /// Reserves heap page 0 as the catalog header (see catalog.rs) on a
    /// fresh heap disk. Only the fresh-disk paths (`open`, `with_disks`)
    /// call this; `reopen` expects the header to already exist.
    fn reserve_catalog_header(&self) -> Result<()> {
        if self.heap_disk.num_pages() == 0 {
            self.heap_disk.allocate()?;
        }
        Ok(())
    }

    /// Persists the catalog (all table/index metadata) and flushes both
    /// pools, so [`Database::reopen`] over the same disks restores every
    /// table. Each persist writes fresh payload chunks; superseded
    /// chunks become dead pages.
    ///
    /// The pool flushes are full durability barriers: each drains its
    /// write-behind queue (pages evicted dirty but not yet written by
    /// the background flusher) *before* flushing resident dirty frames,
    /// so after `persist` returns every committed byte is on its disk.
    pub fn persist(&self) -> Result<()> {
        use crate::catalog::{encode, Catalog, TableEntry};
        let tables = self.tables.read();
        let mut entries: Vec<TableEntry> = tables
            .values()
            .map(|t| TableEntry {
                name: t.name().to_string(),
                tuple_width: t.tuple_width() as u32,
                heap_pages: t.heap().page_ids(),
                indexes: t.index_specs(),
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let payload = encode(&Catalog { tables: entries });

        // Write payload chunks to freshly-allocated heap-disk pages.
        let page_size = self.config.page_size;
        let nchunks = payload.len().div_ceil(page_size).max(1);
        let mut first_chunk = None;
        for i in 0..nchunks {
            let pid = self.heap_disk.allocate()?;
            if first_chunk.is_none() {
                first_chunk = Some(pid);
            }
            let mut page = nbb_storage::Page::new(page_size);
            let start = i * page_size;
            let end = (start + page_size).min(payload.len());
            page.bytes_mut()[..end - start].copy_from_slice(&payload[start..end]);
            self.heap_disk.write(pid, &page)?;
        }
        // Header page 0: magic | len | first_chunk | nchunks.
        let mut header = nbb_storage::Page::new(page_size);
        header.write_u32(0, 0x6E62_6200);
        header.write_u64(4, payload.len() as u64);
        // nbb-lint: allow(unwrap, nchunks >= 1 so the loop set first_chunk)
        header.write_u64(12, first_chunk.expect("at least one chunk").0);
        header.write_u32(20, nchunks as u32);
        self.heap_disk.write(nbb_storage::PageId(0), &header)?;

        self.heap_pool.flush_all()?;
        self.index_pool.flush_all()?;
        Ok(())
    }

    /// Reopens a persisted database: reads the catalog from the heap
    /// disk and reattaches every table (heaps via page lists, indexes
    /// via [`nbb_btree::BTree::open`], which invalidates persisted
    /// cache bytes by starting a fresh CSN epoch).
    ///
    /// Reads the disks directly, so the previous owner of these disks
    /// must have flushed through [`Database::persist`] or
    /// [`Database::close`] (both drain write-behind); a still-live
    /// `Database` over the same disks may hold newer bytes in its
    /// pools or write-behind queues than `reopen` can see.
    pub fn reopen(
        config: DbConfig,
        heap_disk: Arc<dyn DiskManager>,
        index_disk: Arc<dyn DiskManager>,
    ) -> Result<Self> {
        // Validate the catalog before attach_disks allocates two full
        // frame sets — a failed probe should cost a header read, not
        // megabytes of zeroed pool pages.
        let page_size = config.page_size;
        Self::check_page_sizes(&config, &heap_disk, &index_disk)?;
        let mut header = nbb_storage::Page::new(page_size);
        heap_disk.read(nbb_storage::PageId(0), &mut header)?;
        if header.read_u32(0) != 0x6E62_6200 {
            return Err(StorageError::Corrupt("no catalog on this disk".into()));
        }
        let len = header.read_u64(4) as usize;
        let first_chunk = header.read_u64(12);
        let nchunks = header.read_u32(20) as usize;
        let mut payload = Vec::with_capacity(len);
        let mut buf = nbb_storage::Page::new(page_size);
        for i in 0..nchunks {
            heap_disk.read(nbb_storage::PageId(first_chunk + i as u64), &mut buf)?;
            let take = (len - payload.len()).min(page_size);
            payload.extend_from_slice(&buf.bytes()[..take]);
        }
        let catalog = crate::catalog::decode(&payload)?;
        let db = Self::attach_disks(config, heap_disk, index_disk)?;
        for entry in catalog.tables {
            let heap = nbb_storage::HeapFile::attach(Arc::clone(&db.heap_pool), entry.heap_pages)?;
            let table = Table::attach(
                &entry.name,
                entry.tuple_width as usize,
                heap,
                Arc::clone(&db.index_pool),
                entry.indexes,
                db.config.intent_stripes,
            )?;
            db.tables.write().insert(entry.name, Arc::new(table));
        }
        Ok(db)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Creates a table of fixed-width tuples.
    pub fn create_table(&self, name: &str, tuple_width: usize) -> Result<Arc<Table>> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(StorageError::Corrupt(format!("table {name} already exists")));
        }
        let mut table = Table::create(
            name,
            tuple_width,
            Arc::clone(&self.heap_pool),
            Arc::clone(&self.index_pool),
        )?;
        table.set_intent_stripes(self.config.intent_stripes);
        let t = Arc::new(table);
        tables.insert(name.to_string(), Arc::clone(&t));
        Ok(t)
    }

    /// Creates a table from a typed [`crate::row::RowSchema`]: the
    /// table takes the schema's name and derived tuple width, and rows
    /// can then be encoded/decoded through the schema instead of
    /// hand-packed bytes.
    pub fn create_table_with(&self, rows: &crate::row::RowSchema) -> Result<Arc<Table>> {
        self.create_table(rows.table_name(), rows.tuple_width())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::Corrupt(format!("no table named {name}")))
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// The data-page buffer pool.
    pub fn heap_pool(&self) -> &Arc<BufferPool> {
        &self.heap_pool
    }

    /// The index-page buffer pool.
    pub fn index_pool(&self) -> &Arc<BufferPool> {
        &self.index_pool
    }

    /// `(heap, index)` buffer pool counters.
    pub fn pool_stats(&self) -> (PoolStats, PoolStats) {
        (self.heap_pool.stats(), self.index_pool.stats())
    }

    /// `(heap, index)` disk counters (simulated time lives here).
    pub fn io_stats(&self) -> (IoStats, IoStats) {
        (self.heap_disk.stats(), self.index_disk.stats())
    }

    /// Closes the database: persists the catalog and flushes both pools
    /// — including draining their write-behind queues — then drops the
    /// in-memory state. The error-visible durability barrier: dropping
    /// a `Database` without `close` still drains write-behind (the
    /// pools' drop does), but swallows I/O errors and does not flush
    /// resident dirty frames or the catalog.
    pub fn close(self) -> Result<()> {
        self.persist()
    }

    /// Zeroes all pool and disk counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.heap_pool.reset_stats();
        self.index_pool.reset_stats();
        self.heap_disk.reset_stats();
        self.index_disk.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{FieldSpec, IndexSpec};

    #[test]
    fn create_and_fetch_tables() {
        let db = Database::open(DbConfig::default());
        db.create_table("a", 16).unwrap();
        db.create_table("b", 32).unwrap();
        assert_eq!(db.table_names(), vec!["a", "b"]);
        assert_eq!(db.table("a").unwrap().tuple_width(), 16);
        assert!(db.table("c").is_err());
        assert!(db.create_table("a", 8).is_err(), "duplicate name");
    }

    #[test]
    fn simulated_disk_accumulates_cost() {
        let db = Database::open(DbConfig {
            page_size: 4096,
            heap_frames: 2,
            index_frames: 2,
            disk_model: Some(DiskModel { read_ns: 1000, write_ns: 10 }),
            ..DbConfig::default()
        });
        let t = db.create_table("t", 64).unwrap();
        t.create_index(IndexSpec::plain("pk", FieldSpec::new(0, 8))).unwrap();
        for i in 0..500u64 {
            let mut tu = i.to_be_bytes().to_vec();
            tu.extend_from_slice(&[0u8; 56]);
            t.insert(&tu).unwrap();
        }
        db.reset_stats();
        for i in (0..500u64).step_by(7) {
            t.get_via_index("pk", &i.to_be_bytes()).unwrap().unwrap();
        }
        let (heap_io, index_io) = db.io_stats();
        // Tiny pools force disk reads with simulated latency.
        assert!(heap_io.reads + index_io.reads > 0);
        assert!(heap_io.sim_total_ns() + index_io.sim_total_ns() > 0);
    }

    #[test]
    fn reopen_probe_does_not_mutate_an_empty_disk() {
        use nbb_storage::InMemoryDisk;
        let heap: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
        let index: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
        // Probing an empty disk for a catalog fails...
        assert!(
            Database::reopen(DbConfig::default(), Arc::clone(&heap), Arc::clone(&index)).is_err()
        );
        // ...and must leave the disk untouched, so with_disks still works.
        assert_eq!(heap.num_pages(), 0, "reopen must not allocate on failure");
        let db = Database::with_disks(DbConfig::default(), heap, index).unwrap();
        db.create_table("t", 8).unwrap();
    }

    #[test]
    fn pool_shards_knob_applies_with_clamping() {
        let db = Database::open(DbConfig { pool_shards: 4, ..DbConfig::default() });
        assert_eq!(db.heap_pool().shards(), 4);
        assert_eq!(db.index_pool().shards(), 4);
        // Tiny pools clamp to one stripe regardless of the knob.
        let db = Database::open(DbConfig {
            heap_frames: 8,
            index_frames: 8,
            pool_shards: 8,
            ..DbConfig::default()
        });
        assert_eq!(db.heap_pool().shards(), 1);
    }

    #[test]
    fn write_behind_knob_applies_and_close_is_a_flush_barrier() {
        use nbb_storage::InMemoryDisk;
        // Knob: 0 disables, default threads through to both pools.
        let db = Database::open(DbConfig { write_behind: 0, ..DbConfig::default() });
        assert_eq!(db.heap_pool().write_behind(), 0);
        assert_eq!(db.index_pool().write_behind(), 0);

        // Tiny pools force dirty evictions into the write-behind queue;
        // close() must drain it so reopen sees every row.
        let heap: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let index: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let config =
            DbConfig { page_size: 4096, heap_frames: 4, index_frames: 4, ..DbConfig::default() };
        let db =
            Database::with_disks(config.clone(), Arc::clone(&heap), Arc::clone(&index)).unwrap();
        assert_eq!(db.heap_pool().write_behind(), nbb_storage::DEFAULT_WRITE_BEHIND);
        let t = db.create_table("t", 16).unwrap();
        for i in 0..500u64 {
            let mut tu = i.to_be_bytes().to_vec();
            tu.extend_from_slice(&[7u8; 8]);
            t.insert(&tu).unwrap();
        }
        db.close().unwrap();

        let db = Database::reopen(config, heap, index).unwrap();
        let t = db.table("t").unwrap();
        let mut rows = 0u64;
        let mut sum = 0u64;
        t.scan(|_, tuple| {
            rows += 1;
            sum += u64::from_be_bytes(tuple[..8].try_into().unwrap());
            true
        })
        .unwrap();
        assert_eq!(rows, 500, "close must drain write-behind before reopen");
        assert_eq!(sum, (0..500).sum::<u64>());
    }

    #[test]
    fn compressed_budget_knob_applies_and_close_drains_the_compressor() {
        use nbb_storage::InMemoryDisk;
        // Knob: default is 0 (tier off), a nonzero budget threads
        // through to both pools — and survives reopen via the config.
        let db = Database::open(DbConfig::default());
        assert_eq!(db.heap_pool().compressed_budget(), 0);
        assert_eq!(db.index_pool().compressed_budget(), 0);

        let heap: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let index: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let config = DbConfig {
            page_size: 4096,
            heap_frames: 4,
            index_frames: 4,
            compressed_budget_bytes: 256 * 1024,
            ..DbConfig::default()
        };
        let db =
            Database::with_disks(config.clone(), Arc::clone(&heap), Arc::clone(&index)).unwrap();
        assert_eq!(db.heap_pool().compressed_budget(), 256 * 1024);
        assert_eq!(db.index_pool().compressed_budget(), 256 * 1024);

        // Tiny pools force evictions, which now feed the compressor;
        // close() is a flush barrier, so every queued demotion must be
        // either admitted or retired before the pool drops — and the
        // durable bytes must round-trip regardless of tier state.
        let t = db.create_table("t", 16).unwrap();
        for i in 0..500u64 {
            let mut tu = i.to_be_bytes().to_vec();
            tu.extend_from_slice(&[7u8; 8]);
            t.insert(&tu).unwrap();
        }
        db.close().unwrap();

        let db = Database::reopen(config, heap, index).unwrap();
        assert_eq!(db.heap_pool().compressed_budget(), 256 * 1024, "reopen threads the knob");
        let t = db.table("t").unwrap();
        let mut rows = 0u64;
        t.scan(|_, _| {
            rows += 1;
            true
        })
        .unwrap();
        assert_eq!(rows, 500, "the tier never substitutes for durability");
    }

    #[test]
    fn stats_reset_clears_everything() {
        let db = Database::open(DbConfig { heap_frames: 2, ..DbConfig::default() });
        let t = db.create_table("t", 16).unwrap();
        for i in 0..100u64 {
            t.insert(&[i as u8; 16]).unwrap();
        }
        db.reset_stats();
        let (h, i) = db.pool_stats();
        assert_eq!(h, PoolStats::default());
        assert_eq!(i, PoolStats::default());
    }
}
