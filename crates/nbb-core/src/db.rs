//! Database facade: pools, disks, and named tables in one place.

use crate::joincache::JoinCache;
use crate::table::Table;
use crate::tuner::{
    ConsumerId, ConsumerSample, Controller, DecisionRing, TunedSurface, TunerConfig, TunerDecision,
};
use nbb_storage::disk::{DiskManager, DiskModel, InMemoryDisk, SimulatedDisk};
use nbb_storage::error::{Result, StorageError};
use nbb_storage::lockrank;
use nbb_storage::stats::{IoStats, PoolStats};
use nbb_storage::{BufferPool, PoolOptions};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for a [`Database`].
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Page size for both data and index pages.
    pub page_size: usize,
    /// Buffer-pool frames for data pages.
    pub heap_frames: usize,
    /// Buffer-pool frames for index pages (separate pool: the Figure 3
    /// experiments size this independently).
    pub index_frames: usize,
    /// Target lock-stripe shard count for each buffer pool. Clamped so
    /// every shard keeps at least
    /// [`nbb_storage::MIN_FRAMES_PER_SHARD`] frames — tiny experiment
    /// pools degrade gracefully to a single stripe while production
    /// pools fan out. Concurrent readers of distinct pages contend only
    /// within a stripe.
    pub pool_shards: usize,
    /// Write-behind queue depth for each buffer pool: dirty eviction
    /// victims are memcpy'd into this bounded queue and written to disk
    /// by a background flusher, so victim reclaim never waits on the
    /// device. `0` disables write-behind — every dirty eviction pays a
    /// synchronous write, the pre-overlapped-I/O behavior. Durability
    /// is unchanged either way: [`Database::persist`] and
    /// [`Database::close`] drain the queue before returning.
    pub write_behind: usize,
    /// Stripes in each index's key-level write-intent table (the
    /// same-key writer coordination structure; see
    /// [`nbb_btree::KeyIntents`]). Writers on one key serialize by
    /// parking on the in-flight intent; writers on distinct keys only
    /// share a stripe's map mutex for a lookup, so this bounds writer
    /// fan-out the way `pool_shards` bounds reader fan-out. `1` is
    /// legal (degenerate single-stripe table, correctness unchanged);
    /// `0` selects [`nbb_btree::DEFAULT_INTENT_STRIPES`].
    pub intent_stripes: usize,
    /// Compressed frame tier budget, in stored (encoded) bytes, for
    /// each buffer pool. Nonzero makes eviction demote cold victims
    /// into a budget-bounded compressed store (a background thread pays
    /// the CPU; a later fault on such a page decompresses instead of
    /// reading the disk), so the same frame budget effectively caches
    /// compression-ratio× more pages. `0` (the default) disables the
    /// tier entirely — eviction behavior is bit-identical to a build
    /// without it. See `nbb_storage::buffer`'s module docs;
    /// `TableStats::pool_compressed_*` meters it.
    pub compressed_budget_bytes: usize,
    /// Write-behind drainer threads per buffer pool (min 1 whenever
    /// `write_behind > 0`; ignored when the queue is disabled). The
    /// queue's gen-stamped claim protocol already serializes per-page
    /// flushes, so N drainers overlap distinct pages' device writes
    /// without reordering any one page's.
    pub flusher_threads: usize,
    /// Self-tuning free-space controller interval. `None` (the
    /// default) is **off**: no tuner thread is spawned, no cache-space
    /// targets or join-cache bounds are ever set, and behavior is
    /// byte-identical to a build without the tuner. `Some(d)` spawns a
    /// background controller that samples every spare-byte consumer
    /// (each cached index's leaf space, the join cache, the compressed
    /// tier) every `d`, scores hits per spare KiB, and moves a bounded
    /// step of bytes from the lowest-value consumer to the highest.
    /// Decisions surface through [`Database::tuner_decisions`] and the
    /// waste report; benches and tests can drive the controller
    /// deterministically with [`Database::tuning_tick`] (use a long
    /// interval so the background thread stays out of the way).
    pub tuning_interval: Option<Duration>,
    /// Upper bound on bytes the tuner moves per decision (see
    /// [`crate::tuner::TunerConfig::step_bytes`]; only read when
    /// `tuning_interval` is `Some`).
    pub tuner_step_bytes: usize,
    /// Tuner hysteresis factor: the best consumer's hit value must
    /// exceed the worst's by this factor before bytes move (see
    /// [`crate::tuner::TunerConfig::hysteresis`]).
    pub tuner_hysteresis: f64,
    /// Ticks the tuner sits out after each move (see
    /// [`crate::tuner::TunerConfig::cooldown_ticks`]).
    pub tuner_cooldown_ticks: u32,
    /// Cursor readahead depth: leaves each range cursor speculatively
    /// batch-loads past the resident frontier on every refill, riding
    /// the pool's `prefetch`/`read_many` path. `0` (the default) is
    /// **off** — scans fault serially exactly as before, byte for
    /// byte. Speculative frames are the clock's first-choice victims,
    /// so any nonzero depth can cost wasted reads but never evicts the
    /// demand-paged working set; `TableStats::pool_prefetch_*` meters
    /// the win rate.
    pub readahead: usize,
    /// Disk latency model; `None` = plain in-memory disk.
    pub disk_model: Option<DiskModel>,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            page_size: 8192,
            heap_frames: 1024,
            index_frames: 1024,
            pool_shards: nbb_storage::DEFAULT_POOL_SHARDS,
            write_behind: nbb_storage::DEFAULT_WRITE_BEHIND,
            intent_stripes: nbb_btree::DEFAULT_INTENT_STRIPES,
            compressed_budget_bytes: 0,
            flusher_threads: 1,
            tuning_interval: None,
            tuner_step_bytes: TunerConfig::default().step_bytes,
            tuner_hysteresis: TunerConfig::default().hysteresis,
            tuner_cooldown_ticks: TunerConfig::default().cooldown_ticks,
            readahead: 0,
            disk_model: None,
        }
    }
}

impl DbConfig {
    /// Builds a pool of `frames` frames over `disk` with this config's
    /// shard target (clamped by the pool's own headroom policy,
    /// [`nbb_storage::clamp_shards`]), write-behind depth, and
    /// compressed-tier budget.
    fn build_pool(&self, disk: &Arc<dyn DiskManager>, frames: usize) -> Arc<BufferPool> {
        let shards = nbb_storage::clamp_shards(frames, self.pool_shards);
        Arc::new(BufferPool::with_pool_options(
            Arc::clone(disk),
            frames,
            PoolOptions {
                shards,
                write_behind: self.write_behind,
                flusher_threads: self.flusher_threads,
                compressed_budget_bytes: self.compressed_budget_bytes,
            },
        ))
    }
}

/// A small database: two buffer pools over two disks, named tables,
/// and (opt-in) a self-tuning free-space controller.
pub struct Database {
    config: DbConfig,
    heap_pool: Arc<BufferPool>,
    index_pool: Arc<BufferPool>,
    heap_disk: Arc<dyn DiskManager>,
    index_disk: Arc<dyn DiskManager>,
    /// `Arc` so the tuner thread can sample tables without borrowing
    /// the `Database` (which it outlives-races with during drop).
    tables: Arc<RwLock<HashMap<String, Arc<Table>>>>,
    join_cache: Arc<Mutex<JoinCache>>,
    tuner: Option<Arc<TunerShared>>,
    tuner_thread: Option<std::thread::JoinHandle<()>>,
}

/// State shared between the tuner thread, [`Database::tuning_tick`],
/// and the waste report.
struct TunerShared {
    controller: Mutex<Controller>,
    ring: DecisionRing,
    surface: DbSurface,
    /// Shutdown flag + wake condvar for prompt drop-time exit.
    shutdown: Mutex<bool>,
    wake: Condvar,
}

impl TunerShared {
    /// One full controller round: sample every consumer, decide, apply
    /// the resizes, record the decision. The controller lock is held
    /// only across the pure decision — sampling and resizing reach
    /// engine locks with no tuner lock held.
    fn tick_once(&self) -> Option<TunerDecision> {
        let samples = self.surface.sample();
        let decision = self.controller.lock().tick(&samples)?;
        self.surface.resize(&decision.from, decision.from_bytes);
        self.surface.resize(&decision.to, decision.to_bytes);
        self.ring.push(decision.to_string());
        Some(decision)
    }
}

/// The production [`TunedSurface`]: walks every cached index, the join
/// cache, and the compressed tier.
struct DbSurface {
    tables: Arc<RwLock<HashMap<String, Arc<Table>>>>,
    join_cache: Arc<Mutex<JoinCache>>,
    heap_pool: Arc<BufferPool>,
    index_pool: Arc<BufferPool>,
}

/// Separator inside a [`ConsumerId::LeafCache`] name: `table/index`.
const LEAF_CONSUMER_SEP: char = '/';

impl DbSurface {
    /// Tables snapshot, sorted by name for deterministic sample order.
    fn tables_sorted(&self) -> Vec<Arc<Table>> {
        let mut v: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
        v.sort_by(|a, b| a.name().cmp(b.name()));
        v
    }
}

impl TunedSurface for DbSurface {
    fn sample(&self) -> Vec<ConsumerSample> {
        let mut out = Vec::new();
        for t in self.tables_sorted() {
            for (spec, _) in t.index_specs() {
                let Ok(handle) = t.index_tree(&spec.name) else { continue };
                let tree = handle.tree();
                if tree.cache_config().is_none() {
                    continue; // uncached index: no spare-byte consumer
                }
                let Ok(stats) = tree.index_stats() else { continue };
                // Allocation = the explicit target if one was ever set,
                // else the measured free bytes (the natural, uncapped
                // spare space the cache recycles today).
                let bytes = match tree.cache_space_target() {
                    Some(per_leaf) => per_leaf * stats.leaf_pages.max(1),
                    None => stats.free_bytes,
                };
                out.push(ConsumerSample {
                    id: ConsumerId::LeafCache(format!(
                        "{}{LEAF_CONSUMER_SEP}{}",
                        t.name(),
                        spec.name
                    )),
                    hits: tree.cache_stats().hits,
                    bytes,
                });
            }
        }
        {
            let jc = self.join_cache.lock();
            out.push(ConsumerSample {
                id: ConsumerId::JoinCache,
                hits: jc.stats().hits,
                bytes: jc.total_budget().unwrap_or_else(|| jc.total_used()),
            });
        }
        let tier_bytes = self.heap_pool.compressed_budget() + self.index_pool.compressed_budget();
        if tier_bytes > 0 {
            let (h, i) = (self.heap_pool.stats(), self.index_pool.stats());
            out.push(ConsumerSample {
                id: ConsumerId::CompressedTier,
                hits: h.compressed_hits + i.compressed_hits,
                bytes: tier_bytes,
            });
        }
        out
    }

    fn resize(&self, id: &ConsumerId, new_bytes: usize) {
        match id {
            ConsumerId::LeafCache(name) => {
                let Some((tname, iname)) = name.split_once(LEAF_CONSUMER_SEP) else { return };
                let Some(t) = self.tables.read().get(tname).cloned() else { return };
                let Ok(handle) = t.index_tree(iname) else { return };
                let tree = handle.tree();
                let leaves = tree.index_stats().map_or(1, |s| s.leaf_pages).max(1);
                // Honored lazily: the cap applies at the next leaf
                // touch; no stop-the-world rewrite.
                tree.set_cache_space_target(Some(new_bytes / leaves));
            }
            ConsumerId::JoinCache => {
                self.join_cache.lock().set_total_budget(Some(new_bytes));
            }
            ConsumerId::CompressedTier => {
                // One logical consumer over two pools: split evenly.
                let half = new_bytes / 2;
                self.heap_pool.set_compressed_budget(half);
                self.index_pool.set_compressed_budget(new_bytes - half);
            }
        }
    }
}

impl Database {
    /// Opens an empty database per `config`.
    pub fn open(config: DbConfig) -> Self {
        let heap_disk = Self::fresh_disk(&config);
        let index_disk = Self::fresh_disk(&config);
        let db = Self::attach_disks(config, heap_disk, index_disk)
            // nbb-lint: allow(unwrap, fresh in-memory disks cannot fail validation)
            .expect("fresh in-memory disks are always attachable");
        // nbb-lint: allow(unwrap, fresh in-memory disks cannot fail allocation)
        db.reserve_catalog_header().expect("fresh in-memory disks always allocate");
        db
    }

    fn fresh_disk(config: &DbConfig) -> Arc<dyn DiskManager> {
        match config.disk_model {
            Some(model) => Arc::new(SimulatedDisk::new(config.page_size, model)),
            None => Arc::new(InMemoryDisk::new(config.page_size)),
        }
    }

    /// Opens an empty database over caller-supplied disks (e.g.
    /// [`nbb_storage::FileDisk`]s for real persistence). The disks must
    /// be empty; use [`Database::reopen`] for populated ones.
    pub fn with_disks(
        config: DbConfig,
        heap_disk: Arc<dyn DiskManager>,
        index_disk: Arc<dyn DiskManager>,
    ) -> Result<Self> {
        for (name, disk) in [("heap", &heap_disk), ("index", &index_disk)] {
            if disk.num_pages() != 0 {
                return Err(StorageError::Corrupt(format!(
                    "with_disks requires empty disks, but the {name} disk holds {} page(s); \
                     use Database::reopen for populated disks",
                    disk.num_pages()
                )));
            }
        }
        let db = Self::attach_disks(config, heap_disk, index_disk)?;
        db.reserve_catalog_header()?;
        Ok(db)
    }

    /// The one construction path: validates page sizes and builds both
    /// pools per `config`. `open`, `with_disks`, and `reopen` all
    /// funnel through here. Side-effect free on the disks — probing a
    /// populated (or wrong) disk via `reopen` must not mutate it.
    fn attach_disks(
        config: DbConfig,
        heap_disk: Arc<dyn DiskManager>,
        index_disk: Arc<dyn DiskManager>,
    ) -> Result<Self> {
        Self::check_page_sizes(&config, &heap_disk, &index_disk)?;
        let heap_pool = config.build_pool(&heap_disk, config.heap_frames);
        let index_pool = config.build_pool(&index_disk, config.index_frames);
        let mut db = Database {
            config,
            heap_pool,
            index_pool,
            heap_disk,
            index_disk,
            tables: Arc::new(RwLock::with_rank(lockrank::DB_TABLES, HashMap::new())),
            join_cache: Arc::new(Mutex::with_rank(lockrank::JOIN_CACHE, JoinCache::new())),
            tuner: None,
            tuner_thread: None,
        };
        if let Some(interval) = db.config.tuning_interval {
            db.start_tuner(interval);
        }
        Ok(db)
    }

    /// Spawns the background free-space controller (tuning is on).
    fn start_tuner(&mut self, interval: Duration) {
        let cfg = TunerConfig {
            interval,
            step_bytes: self.config.tuner_step_bytes,
            hysteresis: self.config.tuner_hysteresis,
            cooldown_ticks: self.config.tuner_cooldown_ticks,
            ..TunerConfig::default()
        };
        let ring_cap = cfg.ring;
        let shared = Arc::new(TunerShared {
            controller: Mutex::with_rank(lockrank::TUNER, Controller::new(cfg)),
            ring: DecisionRing::new(ring_cap),
            surface: DbSurface {
                tables: Arc::clone(&self.tables),
                join_cache: Arc::clone(&self.join_cache),
                heap_pool: Arc::clone(&self.heap_pool),
                index_pool: Arc::clone(&self.index_pool),
            },
            shutdown: Mutex::with_rank(lockrank::TUNER, false),
            wake: Condvar::new(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("nbb-tuner".into())
                .spawn(move || loop {
                    {
                        let mut stop = shared.shutdown.lock();
                        if !*stop {
                            shared.wake.wait_for(&mut stop, interval);
                        }
                        if *stop {
                            break;
                        }
                    }
                    shared.tick_once();
                })
                // nbb-lint: allow(unwrap, thread spawn at database construction; OS exhaustion is fatal)
                .expect("spawn tuner thread")
        };
        self.tuner = Some(shared);
        self.tuner_thread = Some(thread);
    }

    fn check_page_sizes(
        config: &DbConfig,
        heap_disk: &Arc<dyn DiskManager>,
        index_disk: &Arc<dyn DiskManager>,
    ) -> Result<()> {
        if heap_disk.page_size() != config.page_size || index_disk.page_size() != config.page_size {
            return Err(StorageError::Corrupt(format!(
                "disk page sizes (heap {}, index {}) do not match config page size {}",
                heap_disk.page_size(),
                index_disk.page_size(),
                config.page_size
            )));
        }
        Ok(())
    }

    /// Reserves heap page 0 as the catalog header (see catalog.rs) on a
    /// fresh heap disk. Only the fresh-disk paths (`open`, `with_disks`)
    /// call this; `reopen` expects the header to already exist.
    fn reserve_catalog_header(&self) -> Result<()> {
        if self.heap_disk.num_pages() == 0 {
            self.heap_disk.allocate()?;
        }
        Ok(())
    }

    /// Persists the catalog (all table/index metadata) and flushes both
    /// pools, so [`Database::reopen`] over the same disks restores every
    /// table. Each persist writes fresh payload chunks; superseded
    /// chunks become dead pages.
    ///
    /// The pool flushes are full durability barriers: each drains its
    /// write-behind queue (pages evicted dirty but not yet written by
    /// the background flusher) *before* flushing resident dirty frames,
    /// so after `persist` returns every committed byte is on its disk.
    pub fn persist(&self) -> Result<()> {
        use crate::catalog::{encode, Catalog, TableEntry};
        let tables = self.tables.read();
        let mut entries: Vec<TableEntry> = tables
            .values()
            .map(|t| TableEntry {
                name: t.name().to_string(),
                tuple_width: t.tuple_width() as u32,
                heap_pages: t.heap().page_ids(),
                indexes: t.index_specs(),
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let payload = encode(&Catalog { tables: entries });

        // Write payload chunks to freshly-allocated heap-disk pages.
        let page_size = self.config.page_size;
        let nchunks = payload.len().div_ceil(page_size).max(1);
        let mut first_chunk = None;
        for i in 0..nchunks {
            let pid = self.heap_disk.allocate()?;
            if first_chunk.is_none() {
                first_chunk = Some(pid);
            }
            let mut page = nbb_storage::Page::new(page_size);
            let start = i * page_size;
            let end = (start + page_size).min(payload.len());
            page.bytes_mut()[..end - start].copy_from_slice(&payload[start..end]);
            self.heap_disk.write(pid, &page)?;
        }
        // Header page 0: magic | len | first_chunk | nchunks.
        let mut header = nbb_storage::Page::new(page_size);
        header.write_u32(0, 0x6E62_6200);
        header.write_u64(4, payload.len() as u64);
        // nbb-lint: allow(unwrap, nchunks >= 1 so the loop set first_chunk)
        header.write_u64(12, first_chunk.expect("at least one chunk").0);
        header.write_u32(20, nchunks as u32);
        self.heap_disk.write(nbb_storage::PageId(0), &header)?;

        self.heap_pool.flush_all()?;
        self.index_pool.flush_all()?;
        Ok(())
    }

    /// Reopens a persisted database: reads the catalog from the heap
    /// disk and reattaches every table (heaps via page lists, indexes
    /// via [`nbb_btree::BTree::open`], which invalidates persisted
    /// cache bytes by starting a fresh CSN epoch).
    ///
    /// Reads the disks directly, so the previous owner of these disks
    /// must have flushed through [`Database::persist`] or
    /// [`Database::close`] (both drain write-behind); a still-live
    /// `Database` over the same disks may hold newer bytes in its
    /// pools or write-behind queues than `reopen` can see.
    pub fn reopen(
        config: DbConfig,
        heap_disk: Arc<dyn DiskManager>,
        index_disk: Arc<dyn DiskManager>,
    ) -> Result<Self> {
        // Validate the catalog before attach_disks allocates two full
        // frame sets — a failed probe should cost a header read, not
        // megabytes of zeroed pool pages.
        let page_size = config.page_size;
        Self::check_page_sizes(&config, &heap_disk, &index_disk)?;
        let mut header = nbb_storage::Page::new(page_size);
        heap_disk.read(nbb_storage::PageId(0), &mut header)?;
        if header.read_u32(0) != 0x6E62_6200 {
            return Err(StorageError::Corrupt("no catalog on this disk".into()));
        }
        let len = header.read_u64(4) as usize;
        let first_chunk = header.read_u64(12);
        let nchunks = header.read_u32(20) as usize;
        let mut payload = Vec::with_capacity(len);
        let mut buf = nbb_storage::Page::new(page_size);
        for i in 0..nchunks {
            heap_disk.read(nbb_storage::PageId(first_chunk + i as u64), &mut buf)?;
            let take = (len - payload.len()).min(page_size);
            payload.extend_from_slice(&buf.bytes()[..take]);
        }
        let catalog = crate::catalog::decode(&payload)?;
        let db = Self::attach_disks(config, heap_disk, index_disk)?;
        for entry in catalog.tables {
            let heap = nbb_storage::HeapFile::attach(Arc::clone(&db.heap_pool), entry.heap_pages)?;
            let mut table = Table::attach(
                &entry.name,
                entry.tuple_width as usize,
                heap,
                Arc::clone(&db.index_pool),
                entry.indexes,
                db.config.intent_stripes,
            )?;
            table.set_readahead(db.config.readahead);
            db.tables.write().insert(entry.name, Arc::new(table));
        }
        Ok(db)
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Creates a table of fixed-width tuples.
    pub fn create_table(&self, name: &str, tuple_width: usize) -> Result<Arc<Table>> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(StorageError::Corrupt(format!("table {name} already exists")));
        }
        let mut table = Table::create(
            name,
            tuple_width,
            Arc::clone(&self.heap_pool),
            Arc::clone(&self.index_pool),
        )?;
        table.set_intent_stripes(self.config.intent_stripes);
        table.set_readahead(self.config.readahead);
        let t = Arc::new(table);
        tables.insert(name.to_string(), Arc::clone(&t));
        Ok(t)
    }

    /// Creates a table from a typed [`crate::row::RowSchema`]: the
    /// table takes the schema's name and derived tuple width, and rows
    /// can then be encoded/decoded through the schema instead of
    /// hand-packed bytes.
    pub fn create_table_with(&self, rows: &crate::row::RowSchema) -> Result<Arc<Table>> {
        self.create_table(rows.table_name(), rows.tuple_width())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::Corrupt(format!("no table named {name}")))
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// The data-page buffer pool.
    pub fn heap_pool(&self) -> &Arc<BufferPool> {
        &self.heap_pool
    }

    /// The index-page buffer pool.
    pub fn index_pool(&self) -> &Arc<BufferPool> {
        &self.index_pool
    }

    /// `(heap, index)` buffer pool counters.
    pub fn pool_stats(&self) -> (PoolStats, PoolStats) {
        (self.heap_pool.stats(), self.index_pool.stats())
    }

    /// `(heap, index)` disk counters (simulated time lives here).
    pub fn io_stats(&self) -> (IoStats, IoStats) {
        (self.heap_disk.stats(), self.index_disk.stats())
    }

    /// Closes the database: persists the catalog and flushes both pools
    /// — including draining their write-behind queues — then drops the
    /// in-memory state. The error-visible durability barrier: dropping
    /// a `Database` without `close` still drains write-behind (the
    /// pools' drop does), but swallows I/O errors and does not flush
    /// resident dirty frames or the catalog.
    pub fn close(self) -> Result<()> {
        self.persist()
    }

    /// Zeroes all pool and disk counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.heap_pool.reset_stats();
        self.index_pool.reset_stats();
        self.heap_disk.reset_stats();
        self.index_disk.reset_stats();
    }

    /// The §2.2 join cache. Lock it to insert/lookup joined payloads;
    /// the tuner (when on) bounds its total bytes.
    pub fn join_cache(&self) -> &Arc<Mutex<JoinCache>> {
        &self.join_cache
    }

    /// Forces one synchronous controller round (sample → decide →
    /// resize → record). `None` when tuning is off *or* the controller
    /// decided to hold still this round. Benches and tests pair this
    /// with a long [`DbConfig::tuning_interval`] so ticks happen at
    /// deterministic workload points instead of wall-clock ones.
    pub fn tuning_tick(&self) -> Option<TunerDecision> {
        self.tuner.as_ref()?.tick_once()
    }

    /// The tuner's recent decisions, oldest first, rendered as the
    /// waste report prints them. Empty when tuning is off.
    pub fn tuner_decisions(&self) -> Vec<String> {
        self.tuner.as_ref().map_or_else(Vec::new, |t| t.ring.snapshot())
    }

    /// Runs the full waste audit on `table` and attaches the tuner's
    /// decision trace, so one report shows both the measured waste and
    /// what the controller did about it.
    ///
    /// When cursor readahead is on and has been exercised, the trace
    /// also carries an advice line grading the speculation's win rate
    /// (hits against evicted-unused pages), so the report points at the
    /// knob worth moving rather than just printing counters.
    pub fn waste_report(&self, table: &str, index_names: &[&str]) -> Result<crate::WasteReport> {
        let t = self.table(table)?;
        let mut report = crate::waste::audit(&t, index_names, None, None)?;
        report.tuner = self.tuner_decisions();
        let k = t.readahead();
        if k > 0 {
            let s = t.stats();
            // Only prefetches whose fate is known grade the knob: hits
            // served a later demand read, wasted were evicted untouched.
            // Still-resident speculation is undecided and not counted.
            let judged = s.pool_prefetch_hits + s.pool_prefetch_wasted;
            if judged > 0 {
                let useful = s.pool_prefetch_hits as f64 / judged as f64 * 100.0;
                let advice = if useful >= 80.0 {
                    "consider raising"
                } else if useful <= 30.0 {
                    "consider lowering"
                } else {
                    "keep"
                };
                report.tuner.push(format!("readahead K={k}: {useful:.0}% useful — {advice}"));
            }
        }
        Ok(report)
    }
}

impl Drop for Database {
    /// Stops the tuner thread (when tuning is on) before the pools go
    /// down: set the flag, wake the interval sleep, join.
    fn drop(&mut self) {
        if let Some(shared) = &self.tuner {
            *shared.shutdown.lock() = true;
            shared.wake.notify_all();
        }
        if let Some(h) = self.tuner_thread.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{FieldSpec, IndexSpec};

    #[test]
    fn create_and_fetch_tables() {
        let db = Database::open(DbConfig::default());
        db.create_table("a", 16).unwrap();
        db.create_table("b", 32).unwrap();
        assert_eq!(db.table_names(), vec!["a", "b"]);
        assert_eq!(db.table("a").unwrap().tuple_width(), 16);
        assert!(db.table("c").is_err());
        assert!(db.create_table("a", 8).is_err(), "duplicate name");
    }

    #[test]
    fn simulated_disk_accumulates_cost() {
        let db = Database::open(DbConfig {
            page_size: 4096,
            heap_frames: 2,
            index_frames: 2,
            disk_model: Some(DiskModel { read_ns: 1000, write_ns: 10 }),
            ..DbConfig::default()
        });
        let t = db.create_table("t", 64).unwrap();
        t.create_index(IndexSpec::plain("pk", FieldSpec::new(0, 8))).unwrap();
        for i in 0..500u64 {
            let mut tu = i.to_be_bytes().to_vec();
            tu.extend_from_slice(&[0u8; 56]);
            t.insert(&tu).unwrap();
        }
        db.reset_stats();
        for i in (0..500u64).step_by(7) {
            t.get_via_index("pk", &i.to_be_bytes()).unwrap().unwrap();
        }
        let (heap_io, index_io) = db.io_stats();
        // Tiny pools force disk reads with simulated latency.
        assert!(heap_io.reads + index_io.reads > 0);
        assert!(heap_io.sim_total_ns() + index_io.sim_total_ns() > 0);
    }

    #[test]
    fn reopen_probe_does_not_mutate_an_empty_disk() {
        use nbb_storage::InMemoryDisk;
        let heap: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
        let index: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
        // Probing an empty disk for a catalog fails...
        assert!(
            Database::reopen(DbConfig::default(), Arc::clone(&heap), Arc::clone(&index)).is_err()
        );
        // ...and must leave the disk untouched, so with_disks still works.
        assert_eq!(heap.num_pages(), 0, "reopen must not allocate on failure");
        let db = Database::with_disks(DbConfig::default(), heap, index).unwrap();
        db.create_table("t", 8).unwrap();
    }

    #[test]
    fn pool_shards_knob_applies_with_clamping() {
        let db = Database::open(DbConfig { pool_shards: 4, ..DbConfig::default() });
        assert_eq!(db.heap_pool().shards(), 4);
        assert_eq!(db.index_pool().shards(), 4);
        // Tiny pools clamp to one stripe regardless of the knob.
        let db = Database::open(DbConfig {
            heap_frames: 8,
            index_frames: 8,
            pool_shards: 8,
            ..DbConfig::default()
        });
        assert_eq!(db.heap_pool().shards(), 1);
    }

    #[test]
    fn write_behind_knob_applies_and_close_is_a_flush_barrier() {
        use nbb_storage::InMemoryDisk;
        // Knob: 0 disables, default threads through to both pools.
        let db = Database::open(DbConfig { write_behind: 0, ..DbConfig::default() });
        assert_eq!(db.heap_pool().write_behind(), 0);
        assert_eq!(db.index_pool().write_behind(), 0);

        // Tiny pools force dirty evictions into the write-behind queue;
        // close() must drain it so reopen sees every row.
        let heap: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let index: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let config =
            DbConfig { page_size: 4096, heap_frames: 4, index_frames: 4, ..DbConfig::default() };
        let db =
            Database::with_disks(config.clone(), Arc::clone(&heap), Arc::clone(&index)).unwrap();
        assert_eq!(db.heap_pool().write_behind(), nbb_storage::DEFAULT_WRITE_BEHIND);
        let t = db.create_table("t", 16).unwrap();
        for i in 0..500u64 {
            let mut tu = i.to_be_bytes().to_vec();
            tu.extend_from_slice(&[7u8; 8]);
            t.insert(&tu).unwrap();
        }
        db.close().unwrap();

        let db = Database::reopen(config, heap, index).unwrap();
        let t = db.table("t").unwrap();
        let mut rows = 0u64;
        let mut sum = 0u64;
        t.scan(|_, tuple| {
            rows += 1;
            sum += u64::from_be_bytes(tuple[..8].try_into().unwrap());
            true
        })
        .unwrap();
        assert_eq!(rows, 500, "close must drain write-behind before reopen");
        assert_eq!(sum, (0..500).sum::<u64>());
    }

    #[test]
    fn compressed_budget_knob_applies_and_close_drains_the_compressor() {
        use nbb_storage::InMemoryDisk;
        // Knob: default is 0 (tier off), a nonzero budget threads
        // through to both pools — and survives reopen via the config.
        let db = Database::open(DbConfig::default());
        assert_eq!(db.heap_pool().compressed_budget(), 0);
        assert_eq!(db.index_pool().compressed_budget(), 0);

        let heap: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let index: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let config = DbConfig {
            page_size: 4096,
            heap_frames: 4,
            index_frames: 4,
            compressed_budget_bytes: 256 * 1024,
            ..DbConfig::default()
        };
        let db =
            Database::with_disks(config.clone(), Arc::clone(&heap), Arc::clone(&index)).unwrap();
        assert_eq!(db.heap_pool().compressed_budget(), 256 * 1024);
        assert_eq!(db.index_pool().compressed_budget(), 256 * 1024);

        // Tiny pools force evictions, which now feed the compressor;
        // close() is a flush barrier, so every queued demotion must be
        // either admitted or retired before the pool drops — and the
        // durable bytes must round-trip regardless of tier state.
        let t = db.create_table("t", 16).unwrap();
        for i in 0..500u64 {
            let mut tu = i.to_be_bytes().to_vec();
            tu.extend_from_slice(&[7u8; 8]);
            t.insert(&tu).unwrap();
        }
        db.close().unwrap();

        let db = Database::reopen(config, heap, index).unwrap();
        assert_eq!(db.heap_pool().compressed_budget(), 256 * 1024, "reopen threads the knob");
        let t = db.table("t").unwrap();
        let mut rows = 0u64;
        t.scan(|_, _| {
            rows += 1;
            true
        })
        .unwrap();
        assert_eq!(rows, 500, "the tier never substitutes for durability");
    }

    #[test]
    fn readahead_knob_threads_through_create_and_reopen() {
        use nbb_storage::InMemoryDisk;
        let db = Database::open(DbConfig::default());
        let t = db.create_table("t", 16).unwrap();
        assert_eq!(t.readahead(), 0, "default is off");

        let heap: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let index: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let config = DbConfig { page_size: 4096, readahead: 8, ..DbConfig::default() };
        let db =
            Database::with_disks(config.clone(), Arc::clone(&heap), Arc::clone(&index)).unwrap();
        let t = db.create_table("t", 16).unwrap();
        assert_eq!(t.readahead(), 8);
        for i in 0..100u64 {
            let mut tu = i.to_be_bytes().to_vec();
            tu.extend_from_slice(&[7u8; 8]);
            t.insert(&tu).unwrap();
        }
        db.close().unwrap();
        let db = Database::reopen(config, heap, index).unwrap();
        assert_eq!(db.table("t").unwrap().readahead(), 8, "reopen threads the knob");
    }

    #[test]
    fn flusher_threads_knob_applies_to_both_pools() {
        let db = Database::open(DbConfig::default());
        assert_eq!(db.heap_pool().flusher_threads(), 1);
        assert_eq!(db.index_pool().flusher_threads(), 1);
        let db = Database::open(DbConfig { flusher_threads: 3, ..DbConfig::default() });
        assert_eq!(db.heap_pool().flusher_threads(), 3);
        assert_eq!(db.index_pool().flusher_threads(), 3);
    }

    #[test]
    fn tuning_is_off_by_default_and_surfaces_nothing() {
        let db = Database::open(DbConfig::default());
        db.create_table("t", 16).unwrap();
        assert!(db.tuning_tick().is_none());
        assert!(db.tuner_decisions().is_empty());
        let report = db.waste_report("t", &[]).unwrap();
        assert!(report.tuner.is_empty());
        assert!(!report.render().contains("[tuner]"));
    }

    #[test]
    fn tuner_thread_starts_and_shuts_down_cleanly() {
        // Spawn → (maybe a few wall-clock ticks) → shutdown → join.
        // The short interval exercises the timed wait; Drop must not
        // hang even if the thread is mid-sleep.
        let db = Database::open(DbConfig {
            tuning_interval: Some(Duration::from_millis(1)),
            ..DbConfig::default()
        });
        let t = db.create_table("t", 16).unwrap();
        for i in 0..50u64 {
            let mut tu = i.to_be_bytes().to_vec();
            tu.extend_from_slice(&[3u8; 8]);
            t.insert(&tu).unwrap();
        }
        std::thread::sleep(Duration::from_millis(10));
        drop(db);
    }

    #[test]
    fn stats_reset_clears_everything() {
        let db = Database::open(DbConfig { heap_frames: 2, ..DbConfig::default() });
        let t = db.create_table("t", 16).unwrap();
        for i in 0..100u64 {
            t.insert(&[i as u8; 16]).unwrap();
        }
        db.reset_stats();
        let (h, i) = db.pool_stats();
        assert_eq!(h, PoolStats::default());
        assert_eq!(i, PoolStats::default());
    }
}
