//! Data-page join caches — the §2.2 "additional direction" made real.
//!
//! "Data pages can cache the results of foreign key joins, to avoid
//! additional disk accesses for join queries." Here each *referencing*
//! data page gets a cache of `fk → joined payload` entries whose byte
//! budget equals the page's measured free space — the cache only ever
//! recycles bytes the page already wastes, mirroring the index-cache
//! philosophy. (Entries live beside the frame rather than inside the
//! page image; the budget, keying, and invalidation behave as §2.2
//! sketches.)
//!
//! Eviction is LRU within a page. Updating a referenced row invalidates
//! by foreign key across all pages.

use nbb_storage::page::PageId;
use std::collections::HashMap;

/// Per-page join-result cache with a free-space-derived byte budget.
#[derive(Debug, Default)]
pub struct JoinCache {
    pages: HashMap<PageId, PageCache>,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    invalidations: u64,
}

#[derive(Debug, Default)]
struct PageCache {
    budget: usize,
    used: usize,
    clock: u64,
    /// fk -> (payload, last-use tick)
    entries: HashMap<u64, (Vec<u8>, u64)>,
}

impl PageCache {
    fn evict_lru(&mut self) -> bool {
        let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (_, t))| *t) else {
            return false;
        };
        // nbb-lint: allow(unwrap, victim key was just produced by the scan above)
        let (payload, _) = self.entries.remove(&victim).expect("present");
        self.used -= entry_cost(&payload);
        true
    }
}

fn entry_cost(payload: &[u8]) -> usize {
    8 + payload.len() // fk key + payload bytes
}

/// Counters for the join cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries evicted for space.
    pub evictions: u64,
    /// Entries dropped by invalidation.
    pub invalidations: u64,
}

impl JoinCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets page `pid`'s byte budget (callers pass the page's measured
    /// free bytes; shrinking the budget evicts down to fit).
    pub fn set_budget(&mut self, pid: PageId, budget: usize) {
        let pc = self.pages.entry(pid).or_default();
        pc.budget = budget;
        while pc.used > pc.budget {
            if !pc.evict_lru() {
                break;
            }
            self.evictions += 1;
        }
    }

    /// Looks up the joined payload for `fk` cached on page `pid`.
    pub fn lookup(&mut self, pid: PageId, fk: u64) -> Option<Vec<u8>> {
        let pc = self.pages.get_mut(&pid)?;
        pc.clock += 1;
        let clock = pc.clock;
        match pc.entries.get_mut(&fk) {
            Some((payload, tick)) => {
                *tick = clock;
                self.hits += 1;
                Some(payload.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches `fk → payload` on page `pid`, evicting LRU entries to fit.
    /// Returns false when the payload exceeds the whole budget.
    pub fn insert(&mut self, pid: PageId, fk: u64, payload: &[u8]) -> bool {
        let pc = self.pages.entry(pid).or_default();
        let cost = entry_cost(payload);
        if cost > pc.budget {
            return false;
        }
        if let Some((old, _)) = pc.entries.remove(&fk) {
            pc.used -= entry_cost(&old);
        }
        while pc.used + cost > pc.budget {
            if !pc.evict_lru() {
                break;
            }
            self.evictions += 1;
        }
        pc.clock += 1;
        let clock = pc.clock;
        pc.entries.insert(fk, (payload.to_vec(), clock));
        pc.used += cost;
        self.insertions += 1;
        true
    }

    /// Invalidates every cached join result for `fk` (the referenced row
    /// changed) across all pages.
    pub fn invalidate_fk(&mut self, fk: u64) {
        for pc in self.pages.values_mut() {
            if let Some((payload, _)) = pc.entries.remove(&fk) {
                pc.used -= entry_cost(&payload);
                self.invalidations += 1;
            }
        }
    }

    /// Drops page `pid`'s cache entirely (page rewritten/compacted).
    pub fn invalidate_page(&mut self, pid: PageId) {
        if let Some(pc) = self.pages.get_mut(&pid) {
            self.invalidations += pc.entries.len() as u64;
            pc.entries.clear();
            pc.used = 0;
        }
    }

    /// Bytes cached on page `pid`.
    pub fn used_bytes(&self, pid: PageId) -> usize {
        self.pages.get(&pid).map_or(0, |p| p.used)
    }

    /// Counters.
    pub fn stats(&self) -> JoinCacheStats {
        JoinCacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            invalidations: self.invalidations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> PageId {
        PageId(n)
    }

    #[test]
    fn miss_insert_hit_cycle() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 1024);
        assert!(jc.lookup(pid(1), 42).is_none());
        assert!(jc.insert(pid(1), 42, b"joined-row"));
        assert_eq!(jc.lookup(pid(1), 42).unwrap(), b"joined-row");
        let s = jc.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn budget_enforced_with_lru_eviction() {
        let mut jc = JoinCache::new();
        // Budget fits exactly 2 entries of cost 8+8=16.
        jc.set_budget(pid(1), 32);
        assert!(jc.insert(pid(1), 1, &[1u8; 8]));
        assert!(jc.insert(pid(1), 2, &[2u8; 8]));
        // Touch 1 so 2 becomes LRU.
        jc.lookup(pid(1), 1);
        assert!(jc.insert(pid(1), 3, &[3u8; 8]));
        assert!(jc.lookup(pid(1), 1).is_some(), "recently used must survive");
        assert!(jc.lookup(pid(1), 2).is_none(), "LRU must be evicted");
        assert!(jc.lookup(pid(1), 3).is_some());
        assert_eq!(jc.stats().evictions, 1);
        assert!(jc.used_bytes(pid(1)) <= 32);
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 16);
        assert!(!jc.insert(pid(1), 1, &[0u8; 64]));
        assert_eq!(jc.used_bytes(pid(1)), 0);
    }

    #[test]
    fn shrinking_budget_evicts() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 64);
        for k in 0..4u64 {
            jc.insert(pid(1), k, &[k as u8; 8]);
        }
        assert_eq!(jc.used_bytes(pid(1)), 64);
        // A key insert consumed the page's free space: budget shrinks.
        jc.set_budget(pid(1), 16);
        assert!(jc.used_bytes(pid(1)) <= 16);
    }

    #[test]
    fn fk_invalidation_spans_pages() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 128);
        jc.set_budget(pid(2), 128);
        jc.insert(pid(1), 7, b"a");
        jc.insert(pid(2), 7, b"a");
        jc.insert(pid(2), 8, b"b");
        jc.invalidate_fk(7);
        assert!(jc.lookup(pid(1), 7).is_none());
        assert!(jc.lookup(pid(2), 7).is_none());
        assert_eq!(jc.lookup(pid(2), 8).unwrap(), b"b");
        assert_eq!(jc.stats().invalidations, 2);
    }

    #[test]
    fn page_invalidation_clears_one_page() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 128);
        jc.set_budget(pid(2), 128);
        jc.insert(pid(1), 1, b"x");
        jc.insert(pid(2), 2, b"y");
        jc.invalidate_page(pid(1));
        assert!(jc.lookup(pid(1), 1).is_none());
        assert!(jc.lookup(pid(2), 2).is_some());
    }

    #[test]
    fn reinsert_same_key_replaces() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 64);
        jc.insert(pid(1), 1, b"old");
        jc.insert(pid(1), 1, b"new");
        assert_eq!(jc.lookup(pid(1), 1).unwrap(), b"new");
        assert_eq!(jc.used_bytes(pid(1)), 8 + 3);
    }

    #[test]
    fn zero_budget_page_caches_nothing() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 0);
        assert!(!jc.insert(pid(1), 1, b"x"));
        assert!(jc.lookup(pid(1), 1).is_none());
    }
}
