//! Data-page join caches — the §2.2 "additional direction" made real.
//!
//! "Data pages can cache the results of foreign key joins, to avoid
//! additional disk accesses for join queries." Here each *referencing*
//! data page gets a cache of `fk → joined payload` entries whose byte
//! budget equals the page's measured free space — the cache only ever
//! recycles bytes the page already wastes, mirroring the index-cache
//! philosophy. (Entries live beside the frame rather than inside the
//! page image; the budget, keying, and invalidation behave as §2.2
//! sketches.)
//!
//! Eviction is LRU within a page. Updating a referenced row invalidates
//! by foreign key across all pages.

use nbb_storage::page::PageId;
use std::collections::HashMap;

/// Per-page join-result cache with a free-space-derived byte budget,
/// plus an optional cache-wide byte budget the tuner resizes at
/// runtime (`None` = unbounded, the pre-tuner behavior).
#[derive(Debug, Default)]
pub struct JoinCache {
    pages: HashMap<PageId, PageCache>,
    /// Global monotonic use clock. One clock (rather than one per
    /// page) keeps per-page LRU ordering intact *and* makes ticks
    /// comparable across pages, which the global-budget eviction needs.
    clock: u64,
    total_budget: Option<usize>,
    total_used: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    invalidations: u64,
}

#[derive(Debug, Default)]
struct PageCache {
    budget: usize,
    used: usize,
    /// fk -> (payload, last-use tick)
    entries: HashMap<u64, (Vec<u8>, u64)>,
}

impl PageCache {
    /// Evicts the page's least-recently-used entry, returning its cost
    /// (`None` when the page is empty).
    fn evict_lru(&mut self) -> Option<usize> {
        let (&victim, _) = self.entries.iter().min_by_key(|(_, (_, t))| *t)?;
        // nbb-lint: allow(unwrap, victim key was just produced by the scan above)
        let (payload, _) = self.entries.remove(&victim).expect("present");
        let cost = entry_cost(&payload);
        self.used -= cost;
        Some(cost)
    }
}

fn entry_cost(payload: &[u8]) -> usize {
    8 + payload.len() // fk key + payload bytes
}

/// Counters for the join cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries evicted for space.
    pub evictions: u64,
    /// Entries dropped by invalidation.
    pub invalidations: u64,
}

impl JoinCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets page `pid`'s byte budget (callers pass the page's measured
    /// free bytes; shrinking the budget evicts down to fit).
    pub fn set_budget(&mut self, pid: PageId, budget: usize) {
        let pc = self.pages.entry(pid).or_default();
        pc.budget = budget;
        while pc.used > pc.budget {
            let Some(cost) = pc.evict_lru() else { break };
            self.total_used -= cost;
            self.evictions += 1;
        }
    }

    /// Sets (or clears) the cache-wide byte bound — the tuner's resize
    /// hook. Shrinking evicts globally-least-recently-used entries,
    /// regardless of page, until the cache fits.
    pub fn set_total_budget(&mut self, budget: Option<usize>) {
        self.total_budget = budget;
        if let Some(bound) = budget {
            while self.total_used > bound {
                if !self.evict_global_lru() {
                    break;
                }
            }
        }
    }

    /// The cache-wide byte bound (`None` = unbounded).
    pub fn total_budget(&self) -> Option<usize> {
        self.total_budget
    }

    /// Bytes cached across all pages.
    pub fn total_used(&self) -> usize {
        self.total_used
    }

    /// Evicts the oldest entry across every page. Returns false when
    /// the cache is empty.
    fn evict_global_lru(&mut self) -> bool {
        let victim_page = self
            .pages
            .iter()
            .filter_map(|(pid, pc)| pc.entries.values().map(|(_, t)| *t).min().map(|t| (*pid, t)))
            .min_by_key(|&(_, t)| t)
            .map(|(pid, _)| pid);
        let Some(pid) = victim_page else { return false };
        // nbb-lint: allow(unwrap, pid was just produced by the scan above)
        let cost = self.pages.get_mut(&pid).and_then(PageCache::evict_lru).expect("non-empty");
        self.total_used -= cost;
        self.evictions += 1;
        true
    }

    /// Looks up the joined payload for `fk` cached on page `pid`.
    pub fn lookup(&mut self, pid: PageId, fk: u64) -> Option<Vec<u8>> {
        self.clock += 1;
        let clock = self.clock;
        let pc = self.pages.get_mut(&pid)?;
        match pc.entries.get_mut(&fk) {
            Some((payload, tick)) => {
                *tick = clock;
                self.hits += 1;
                Some(payload.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches `fk → payload` on page `pid`, evicting LRU entries to fit
    /// the page budget and (when set) the cache-wide budget. Returns
    /// false when the payload exceeds either whole budget.
    pub fn insert(&mut self, pid: PageId, fk: u64, payload: &[u8]) -> bool {
        let cost = entry_cost(payload);
        if self.total_budget.is_some_and(|b| cost > b) {
            return false;
        }
        let pc = self.pages.entry(pid).or_default();
        if cost > pc.budget {
            return false;
        }
        if let Some((old, _)) = pc.entries.remove(&fk) {
            let freed = entry_cost(&old);
            pc.used -= freed;
            self.total_used -= freed;
        }
        while pc.used + cost > pc.budget {
            let Some(freed) = pc.evict_lru() else { break };
            self.total_used -= freed;
            self.evictions += 1;
        }
        if let Some(bound) = self.total_budget {
            while self.total_used + cost > bound {
                if !self.evict_global_lru() {
                    break;
                }
            }
        }
        self.clock += 1;
        let clock = self.clock;
        // evict_global_lru never drops a PageCache, only entries, so the
        // nbb-lint: allow(unwrap, `pid` entry created above persists)
        let pc = self.pages.get_mut(&pid).expect("page entry created above");
        pc.entries.insert(fk, (payload.to_vec(), clock));
        pc.used += cost;
        self.total_used += cost;
        self.insertions += 1;
        true
    }

    /// Invalidates every cached join result for `fk` (the referenced row
    /// changed) across all pages.
    pub fn invalidate_fk(&mut self, fk: u64) {
        for pc in self.pages.values_mut() {
            if let Some((payload, _)) = pc.entries.remove(&fk) {
                let cost = entry_cost(&payload);
                pc.used -= cost;
                self.total_used -= cost;
                self.invalidations += 1;
            }
        }
    }

    /// Drops page `pid`'s cache entirely (page rewritten/compacted).
    pub fn invalidate_page(&mut self, pid: PageId) {
        if let Some(pc) = self.pages.get_mut(&pid) {
            self.invalidations += pc.entries.len() as u64;
            pc.entries.clear();
            self.total_used -= pc.used;
            pc.used = 0;
        }
    }

    /// Bytes cached on page `pid`.
    pub fn used_bytes(&self, pid: PageId) -> usize {
        self.pages.get(&pid).map_or(0, |p| p.used)
    }

    /// Counters.
    pub fn stats(&self) -> JoinCacheStats {
        JoinCacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            invalidations: self.invalidations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> PageId {
        PageId(n)
    }

    #[test]
    fn miss_insert_hit_cycle() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 1024);
        assert!(jc.lookup(pid(1), 42).is_none());
        assert!(jc.insert(pid(1), 42, b"joined-row"));
        assert_eq!(jc.lookup(pid(1), 42).unwrap(), b"joined-row");
        let s = jc.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn budget_enforced_with_lru_eviction() {
        let mut jc = JoinCache::new();
        // Budget fits exactly 2 entries of cost 8+8=16.
        jc.set_budget(pid(1), 32);
        assert!(jc.insert(pid(1), 1, &[1u8; 8]));
        assert!(jc.insert(pid(1), 2, &[2u8; 8]));
        // Touch 1 so 2 becomes LRU.
        jc.lookup(pid(1), 1);
        assert!(jc.insert(pid(1), 3, &[3u8; 8]));
        assert!(jc.lookup(pid(1), 1).is_some(), "recently used must survive");
        assert!(jc.lookup(pid(1), 2).is_none(), "LRU must be evicted");
        assert!(jc.lookup(pid(1), 3).is_some());
        assert_eq!(jc.stats().evictions, 1);
        assert!(jc.used_bytes(pid(1)) <= 32);
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 16);
        assert!(!jc.insert(pid(1), 1, &[0u8; 64]));
        assert_eq!(jc.used_bytes(pid(1)), 0);
    }

    #[test]
    fn shrinking_budget_evicts() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 64);
        for k in 0..4u64 {
            jc.insert(pid(1), k, &[k as u8; 8]);
        }
        assert_eq!(jc.used_bytes(pid(1)), 64);
        // A key insert consumed the page's free space: budget shrinks.
        jc.set_budget(pid(1), 16);
        assert!(jc.used_bytes(pid(1)) <= 16);
    }

    #[test]
    fn fk_invalidation_spans_pages() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 128);
        jc.set_budget(pid(2), 128);
        jc.insert(pid(1), 7, b"a");
        jc.insert(pid(2), 7, b"a");
        jc.insert(pid(2), 8, b"b");
        jc.invalidate_fk(7);
        assert!(jc.lookup(pid(1), 7).is_none());
        assert!(jc.lookup(pid(2), 7).is_none());
        assert_eq!(jc.lookup(pid(2), 8).unwrap(), b"b");
        assert_eq!(jc.stats().invalidations, 2);
    }

    #[test]
    fn page_invalidation_clears_one_page() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 128);
        jc.set_budget(pid(2), 128);
        jc.insert(pid(1), 1, b"x");
        jc.insert(pid(2), 2, b"y");
        jc.invalidate_page(pid(1));
        assert!(jc.lookup(pid(1), 1).is_none());
        assert!(jc.lookup(pid(2), 2).is_some());
    }

    #[test]
    fn reinsert_same_key_replaces() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 64);
        jc.insert(pid(1), 1, b"old");
        jc.insert(pid(1), 1, b"new");
        assert_eq!(jc.lookup(pid(1), 1).unwrap(), b"new");
        assert_eq!(jc.used_bytes(pid(1)), 8 + 3);
    }

    #[test]
    fn zero_budget_page_caches_nothing() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 0);
        assert!(!jc.insert(pid(1), 1, b"x"));
        assert!(jc.lookup(pid(1), 1).is_none());
    }

    #[test]
    fn total_budget_evicts_globally_lru_across_pages() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 128);
        jc.set_budget(pid(2), 128);
        // Two 16-byte entries per page; total budget fits exactly three.
        jc.set_total_budget(Some(48));
        assert!(jc.insert(pid(1), 1, &[1u8; 8]));
        assert!(jc.insert(pid(2), 2, &[2u8; 8]));
        assert!(jc.insert(pid(2), 3, &[3u8; 8]));
        // Touch the oldest so page 2's fk=2 becomes the global LRU.
        jc.lookup(pid(1), 1);
        assert!(jc.insert(pid(1), 4, &[4u8; 8]));
        assert!(jc.lookup(pid(2), 2).is_none(), "global LRU crossed a page boundary");
        assert!(jc.lookup(pid(1), 1).is_some());
        assert!(jc.lookup(pid(2), 3).is_some());
        assert!(jc.total_used() <= 48);
    }

    #[test]
    fn shrinking_total_budget_evicts_and_clearing_unbounds() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 256);
        for k in 0..8u64 {
            jc.insert(pid(1), k, &[k as u8; 8]);
        }
        assert_eq!(jc.total_used(), 128);
        jc.set_total_budget(Some(32));
        assert!(jc.total_used() <= 32, "shrink evicted down to the bound");
        assert!(jc.lookup(pid(1), 7).is_some(), "newest entries survive the shrink");
        jc.set_total_budget(None);
        assert_eq!(jc.total_budget(), None);
        for k in 10..16u64 {
            assert!(jc.insert(pid(1), k, &[k as u8; 8]));
        }
        assert!(jc.total_used() > 32, "unbounded again after clearing");
    }

    #[test]
    fn total_used_tracks_invalidations() {
        let mut jc = JoinCache::new();
        jc.set_budget(pid(1), 128);
        jc.set_budget(pid(2), 128);
        jc.insert(pid(1), 7, b"abc");
        jc.insert(pid(2), 7, b"abc");
        jc.insert(pid(2), 8, b"d");
        assert_eq!(jc.total_used(), (8 + 3) * 2 + (8 + 1));
        jc.invalidate_fk(7);
        assert_eq!(jc.total_used(), 8 + 1);
        jc.invalidate_page(pid(2));
        assert_eq!(jc.total_used(), 0);
    }
}
