//! Handle-based query surface: index handles, batched execution, and
//! ordered range cursors.
//!
//! The string-keyed `Table::*_via_index` methods pay a name lookup
//! through a `RwLock<HashMap>` on every call, take pool-shard locks one
//! key at a time, and only expose point lookups. This module is the
//! amortized alternative, in the spirit of the paper's thesis that no
//! spare capacity — lock budgets included — should go unused:
//!
//! * [`IndexRef`] — a cheap, clonable handle from [`Table::index`]. The
//!   name resolves once; `get`/`project`/`update`/`delete` go straight
//!   to the tree.
//! * [`IndexRef::get_many`] / [`IndexRef::project_many`] — N lookups
//!   share one tree-structure-lock acquisition, one page visit per
//!   distinct leaf, and one buffer-pool lock acquisition per pool shard
//!   on the heap side, instead of N of each.
//! * [`IndexRef::put_many`] / [`IndexRef::update_many`] /
//!   [`IndexRef::delete_many`] — the write-side analogues: N mutations
//!   validate up front, install key-level **write intents** on every
//!   addressed key (racing same-key writers park and resume via
//!   pre-granted handoff, so per-key writes through one index are
//!   linearizable end to end), share batched pointer resolution and
//!   heap access, and apply index maintenance through the tree's
//!   sorted, leaf-grouped multi-key ops (one descent + one per-leaf
//!   latch per destination leaf).
//! * [`Batch`] / [`Table::execute`] — heterogeneous point ops (reads
//!   **and** writes) grouped per index and executed through the
//!   batched paths; see [`Batch`] for the write-before-read ordering
//!   contract.
//! * [`IndexRef::range`] / [`IndexRef::range_projected`] — ordered
//!   cursors over the B+Tree's sibling-linked leaves. The projected
//!   cursor serves cached fields straight from leaf free space (§2.1)
//!   and falls back to heap chases with the usual key re-verification;
//!   refills re-descend by key, so cursors survive leaf splits
//!   mid-iteration.

use crate::table::{Index, IndexSpec, Projection, Table};
use nbb_btree::{BTree, InvToken, RangeEntry};
use nbb_storage::error::{Result, StorageError};
use nbb_storage::rid::RecordId;
use nbb_storage::PageId;
use std::collections::{HashMap, VecDeque};
use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A resolved handle to one of a table's indexes.
///
/// Obtained from [`Table::index`]; clonable and cheap (an `Arc` bump),
/// so hot loops can keep their own copy. The handle borrows the table
/// (`IndexRef<'t>`), so sharing across threads means scoped threads
/// (`std::thread::scope`) or having each worker resolve its own handle
/// from the shared `Arc<Table>` — resolution is a single map read. All
/// index operations on the handle skip the per-call name lookup and
/// its map lock. The handle stays valid for the life of the table;
/// operations keep working even if the index is later re-created under
/// the same name (they address the tree the handle was resolved to).
pub struct IndexRef<'t> {
    table: &'t Table,
    idx: Arc<Index>,
}

impl Clone for IndexRef<'_> {
    fn clone(&self) -> Self {
        IndexRef { table: self.table, idx: Arc::clone(&self.idx) }
    }
}

impl<'t> IndexRef<'t> {
    pub(crate) fn new(table: &'t Table, idx: Arc<Index>) -> Self {
        IndexRef { table, idx }
    }

    /// The index declaration.
    pub fn spec(&self) -> &IndexSpec {
        &self.idx.spec
    }

    /// The index name.
    pub fn name(&self) -> &str {
        &self.idx.spec.name
    }

    /// The underlying B+Tree (stats, fill factors).
    pub fn tree(&self) -> &BTree {
        &self.idx.tree
    }

    /// The table this handle belongs to.
    pub fn table(&self) -> &'t Table {
        self.table
    }

    /// Full-tuple point lookup (index → heap, with key re-verification).
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.table.get_with(&self.idx, key)
    }

    /// Projection over the cached fields: answered from leaf free space
    /// when the cache holds the entry, otherwise heap fetch + populate.
    pub fn project(&self, key: &[u8]) -> Result<Option<Projection>> {
        self.table.project_with(&self.idx, key)
    }

    /// Updates the tuple whose key is `key` to `tuple`, maintaining
    /// every index of the table (§2.1.2 invalidation duties included).
    pub fn update(&self, key: &[u8], tuple: &[u8]) -> Result<bool> {
        self.table.update_with(&self.idx, key, tuple)
    }

    /// Deletes the tuple whose key is `key` from the table and all its
    /// indexes.
    pub fn delete(&self, key: &[u8]) -> Result<bool> {
        self.table.delete_with(&self.idx, key)
    }

    /// Batched full-tuple lookup; results are indexed like `keys`.
    ///
    /// Keys are sorted and grouped so the whole batch takes one
    /// tree-structure-lock acquisition and one page visit per distinct
    /// leaf, and the heap chases behind the index hits are grouped per
    /// page and per buffer-pool shard
    /// ([`nbb_storage::BufferPool::with_page_batch`]) — N lookups over
    /// a hot key set cost far fewer lock acquisitions than N
    /// [`IndexRef::get`] calls.
    pub fn get_many<K: AsRef<[u8]>>(&self, keys: &[K]) -> Result<Vec<Option<Vec<u8>>>> {
        self.table.get_many_with(&self.idx, keys)
    }

    /// Batched projection; results are indexed like `keys`.
    ///
    /// Same grouping as [`IndexRef::get_many`], plus per-leaf cache
    /// amortization: one invalidation-verdict check and one promotion
    /// latch acquisition per leaf rather than per key. Cache misses
    /// fetch the heap in one batched read and populate the cache like
    /// the point path does.
    pub fn project_many<K: AsRef<[u8]>>(&self, keys: &[K]) -> Result<Vec<Option<Projection>>> {
        self.table.project_many_with(&self.idx, keys)
    }

    /// Upserts a tuple by this index's key: updates the existing row in
    /// place when the key is present, inserts a fresh row otherwise.
    /// Returns the tuple's landing address. Thin wrapper over a
    /// one-tuple [`IndexRef::put_many`].
    pub fn put(&self, tuple: &[u8]) -> Result<RecordId> {
        let mut rids = self.put_many(std::slice::from_ref(&tuple))?;
        // nbb-lint: allow(unwrap, put_many returns one rid per input tuple)
        Ok(rids.pop().expect("one tuple in, one rid out"))
    }

    /// Batched upsert by this index's key; landing addresses are
    /// indexed like `tuples`.
    ///
    /// The batch validates up front (tuple widths, and duplicate keys
    /// are rejected whole with
    /// [`nbb_storage::error::StorageError::DuplicateKeyInBatch`]), then
    /// resolves every key in one batched tree pass, updates present
    /// rows in place, and appends the rest through the leaf-grouped
    /// insert path — every index pays one descent and one per-leaf
    /// latch per destination leaf, not per tuple.
    pub fn put_many<T: AsRef<[u8]>>(&self, tuples: &[T]) -> Result<Vec<RecordId>> {
        self.table.put_many_with(&self.idx, tuples)
    }

    /// Batched key-based update; results (whether each key existed) are
    /// indexed like `pairs`. See [`IndexRef::update`] for the per-pair
    /// semantics and [`IndexRef::put_many`] for the batching/validation
    /// contract; key rotations within one batch (a→b, b→c) resolve
    /// deterministically because each index applies its deletes before
    /// its inserts.
    pub fn update_many<K: AsRef<[u8]>, T: AsRef<[u8]>>(
        &self,
        pairs: &[(K, T)],
    ) -> Result<Vec<bool>> {
        self.table.update_many_with(&self.idx, pairs)
    }

    /// Batched key-based delete; results (whether each key existed) are
    /// indexed like `keys`. One batched tree pass resolves the
    /// pointers, one batched heap read fetches the doomed rows, and
    /// every index drops its entries through the leaf-grouped
    /// `delete_many`. Write intents serialize racing same-key deleters:
    /// exactly one wins (`true`), the rest observe its completed delete
    /// (`false`). Duplicate keys are idempotent (first one wins).
    pub fn delete_many<K: AsRef<[u8]>>(&self, keys: &[K]) -> Result<Vec<bool>> {
        self.table.delete_many_with(&self.idx, keys)
    }

    /// Ordered full-tuple cursor over `range` (key order ascending).
    /// Bounds are key byte strings: `&lo[..]..&hi[..]`, `lo..=hi` over
    /// `Vec<u8>`, etc.
    ///
    /// Each yielded row is re-verified against its index key, so rows
    /// deleted by a racing writer are skipped, exactly like point
    /// lookups. Refills re-descend by key: leaves may split
    /// mid-iteration without disturbing the cursor.
    pub fn range<K: AsRef<[u8]> + ?Sized, R: RangeBounds<K>>(&self, range: R) -> RangeCursor<'t> {
        RangeCursor { inner: RangeState::new(self.table, Arc::clone(&self.idx), range) }
    }

    /// Full-table ordered cursor: [`IndexRef::range`] over all keys.
    pub fn range_all(&self) -> RangeCursor<'t> {
        self.range::<[u8], _>(..)
    }

    /// Ordered projection cursor over `range`: yields the cached fields
    /// of every row in the range, served from leaf free space when the
    /// §2.1 cache holds them (no heap touch), with heap chases — which
    /// also populate the cache — only for the cold entries.
    pub fn range_projected<K: AsRef<[u8]> + ?Sized, R: RangeBounds<K>>(
        &self,
        range: R,
    ) -> ProjectedRangeCursor<'t> {
        ProjectedRangeCursor { inner: RangeState::new(self.table, Arc::clone(&self.idx), range) }
    }

    /// Full-table ordered projection cursor:
    /// [`IndexRef::range_projected`] over all keys.
    pub fn range_projected_all(&self) -> ProjectedRangeCursor<'t> {
        self.range_projected::<[u8], _>(..)
    }
}

/// Converts a borrowed bound into an owned one.
fn owned_bound<K: AsRef<[u8]> + ?Sized>(b: Bound<&K>) -> Bound<Vec<u8>> {
    match b {
        Bound::Included(k) => Bound::Included(k.as_ref().to_vec()),
        Bound::Excluded(k) => Bound::Excluded(k.as_ref().to_vec()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn borrow_bound(b: &Bound<Vec<u8>>) -> Bound<&[u8]> {
    match b {
        Bound::Included(k) => Bound::Included(&k[..]),
        Bound::Excluded(k) => Bound::Excluded(&k[..]),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Shared cursor state: a buffered leaf chunk plus the resume bound.
struct RangeState<'t> {
    table: &'t Table,
    idx: Arc<Index>,
    lower: Bound<Vec<u8>>,
    upper: Bound<Vec<u8>>,
    buf: VecDeque<RangeEntry>,
    /// Leaf/token of the chunk currently in `buf`, for cache populates.
    leaf: PageId,
    token: Option<InvToken>,
    exhausted: bool,
    failed: bool,
}

impl<'t> RangeState<'t> {
    fn new<K: AsRef<[u8]> + ?Sized, R: RangeBounds<K>>(
        table: &'t Table,
        idx: Arc<Index>,
        range: R,
    ) -> Self {
        RangeState {
            table,
            idx,
            lower: owned_bound(range.start_bound()),
            upper: owned_bound(range.end_bound()),
            buf: VecDeque::new(),
            leaf: PageId::INVALID,
            token: None,
            exhausted: false,
            failed: false,
        }
    }

    /// Pulls the next leaf's worth of entries. Advancing `lower` past
    /// the last buffered key (rather than chasing a remembered sibling
    /// pointer) is what makes the cursor split-safe.
    fn refill(&mut self) -> Result<()> {
        let chunk =
            self.idx.tree.range_chunk(borrow_bound(&self.lower), borrow_bound(&self.upper))?;
        if let Some(last) = chunk.entries.last() {
            self.lower = Bound::Excluded(last.key.clone());
        }
        self.leaf = chunk.leaf;
        self.token = Some(chunk.token);
        self.exhausted = chunk.exhausted;
        self.buf = chunk.entries.into();
        // Cursor readahead: with `DbConfig::readahead = K > 0`, each
        // refill speculatively batch-loads the next K leaves past the
        // resident frontier so the next refills hit memory instead of
        // serially faulting. With K = 0 this is dead code — scans are
        // byte-for-byte identical to the pre-readahead behavior.
        let k = self.table.readahead();
        if k > 0 && !self.exhausted {
            let targets = self.idx.tree.readahead_targets(self.leaf, k);
            if !targets.is_empty() {
                self.idx.tree.pool().prefetch(&targets);
            }
        }
        Ok(())
    }

    /// Next raw index entry within the range, refilling as needed.
    fn next_entry(&mut self) -> Option<Result<RangeEntry>> {
        loop {
            if self.failed {
                return None;
            }
            if let Some(e) = self.buf.pop_front() {
                return Some(Ok(e));
            }
            if self.exhausted {
                return None;
            }
            if let Err(e) = self.refill() {
                self.failed = true;
                return Some(Err(e));
            }
        }
    }
}

/// One row yielded by [`IndexRef::range`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeRow {
    /// The index key.
    pub key: Vec<u8>,
    /// The tuple's heap address.
    pub rid: RecordId,
    /// The full tuple bytes.
    pub tuple: Vec<u8>,
}

/// Ordered full-tuple cursor; see [`IndexRef::range`].
pub struct RangeCursor<'t> {
    inner: RangeState<'t>,
}

impl Iterator for RangeCursor<'_> {
    type Item = Result<RangeRow>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let e = match self.inner.next_entry()? {
                Ok(e) => e,
                Err(err) => return Some(Err(err)),
            };
            match self.inner.table.fetch_verified(&self.inner.idx, &e.key, e.value) {
                Ok(Some(tuple)) => {
                    return Some(Ok(RangeRow {
                        key: e.key,
                        rid: RecordId::from_u64(e.value),
                        tuple,
                    }))
                }
                // Racing delete between the leaf read and the heap
                // chase: the row is gone; skip it.
                Ok(None) => continue,
                Err(err) => {
                    self.inner.failed = true;
                    return Some(Err(err));
                }
            }
        }
    }
}

/// One row yielded by [`IndexRef::range_projected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectedRow {
    /// The index key.
    pub key: Vec<u8>,
    /// The tuple's heap address.
    pub rid: RecordId,
    /// The cached-field projection; `index_only` is true when it was
    /// served from leaf free space without touching the heap.
    pub projection: Projection,
}

/// Ordered projection cursor; see [`IndexRef::range_projected`].
pub struct ProjectedRangeCursor<'t> {
    inner: RangeState<'t>,
}

impl Iterator for ProjectedRangeCursor<'_> {
    type Item = Result<ProjectedRow>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let e = match self.inner.next_entry()? {
                Ok(e) => e,
                Err(err) => return Some(Err(err)),
            };
            let rid = RecordId::from_u64(e.value);
            if let Some(payload) = e.payload {
                self.inner.table.note_index_only_answer();
                return Some(Ok(ProjectedRow {
                    key: e.key,
                    rid,
                    projection: Projection { payload, index_only: true },
                }));
            }
            let (leaf, token) = (self.inner.leaf, self.inner.token);
            match self.inner.table.fetch_verified(&self.inner.idx, &e.key, e.value) {
                Ok(Some(tuple)) => {
                    let payload = self.inner.idx.extract_payload(&tuple);
                    if let Some(token) = token {
                        if let Err(err) =
                            self.inner.idx.tree.cache_populate(leaf, e.value, &payload, token)
                        {
                            self.inner.failed = true;
                            return Some(Err(err));
                        }
                    }
                    return Some(Ok(ProjectedRow {
                        key: e.key,
                        rid,
                        projection: Projection { payload, index_only: false },
                    }));
                }
                Ok(None) => continue,
                Err(err) => {
                    self.inner.failed = true;
                    return Some(Err(err));
                }
            }
        }
    }
}

/// One operation of a [`Batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum BatchOp {
    /// Full-tuple lookup through the named index.
    Get { index: String, key: Vec<u8> },
    /// Cached-field projection through the named index.
    Project { index: String, key: Vec<u8> },
    /// Upsert of a tuple by the named index's key.
    Put { index: String, tuple: Vec<u8> },
    /// Key-based in-place update through the named index.
    Update { index: String, key: Vec<u8>, tuple: Vec<u8> },
    /// Key-based delete through the named index.
    Delete { index: String, key: Vec<u8> },
}

/// A heterogeneous batch of point operations — reads **and** writes —
/// executed by [`Table::execute`] with per-index grouping so each
/// group rides the batched paths ([`IndexRef::get_many`] /
/// [`IndexRef::project_many`] on the read side, [`IndexRef::put_many`]
/// / [`IndexRef::update_many`] / [`IndexRef::delete_many`] on the
/// write side).
///
/// # Mixed read/write semantics
///
/// A batch is **not** a transaction and does not replay its ops in
/// queue order. Instead the ops are grouped by kind and applied in a
/// fixed, documented order: all `put`s, then all `update`s, then all
/// `delete`s, then all reads. Consequences:
///
/// * reads in a batch observe **all** of the same batch's writes (a
///   `get` of a key the batch `put` returns the new tuple; a `get` of
///   a key the batch `delete`d returns `None`);
/// * `put` is an **upsert** through its named index, exactly like
///   [`IndexRef::put`]: present keys update their row in place,
///   absent keys insert fresh rows;
/// * within one kind, grouping per index preserves no cross-index
///   ordering — don't encode cross-op dependencies beyond the
///   kind-order above;
/// * index names and tuple widths are validated up front, before any
///   page is touched; duplicate keys within one write group surface
///   [`nbb_storage::error::StorageError::DuplicateKeyInBatch`] before
///   *that group* mutates anything — but a group that fails after
///   earlier groups ran leaves those earlier groups applied (e.g. a
///   duplicate in the update group does not roll back the puts),
///   exactly like the equivalent loop of single-key calls.
///
/// ```ignore
/// let results = table.execute(
///     Batch::new()
///         .put("by_id", &new_row)
///         .update("by_id", &7u64.to_be_bytes(), &changed_row)
///         .delete("by_id", &9u64.to_be_bytes())
///         .get("by_id", &7u64.to_be_bytes()),   // sees the update
/// )?;
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch {
    ops: Vec<BatchOp>,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// Appends a full-tuple lookup of `key` through `index`.
    pub fn get(mut self, index: &str, key: &[u8]) -> Self {
        self.ops.push(BatchOp::Get { index: index.to_string(), key: key.to_vec() });
        self
    }

    /// Appends a cached-field projection of `key` through `index`.
    pub fn project(mut self, index: &str, key: &[u8]) -> Self {
        self.ops.push(BatchOp::Project { index: index.to_string(), key: key.to_vec() });
        self
    }

    /// Appends an upsert of `tuple` through `index` (present keys
    /// update in place, absent keys insert; every index maintained).
    pub fn put(mut self, index: &str, tuple: &[u8]) -> Self {
        self.ops.push(BatchOp::Put { index: index.to_string(), tuple: tuple.to_vec() });
        self
    }

    /// Appends an in-place update of the row whose `index` key is
    /// `key` to `tuple`.
    pub fn update(mut self, index: &str, key: &[u8], tuple: &[u8]) -> Self {
        self.ops.push(BatchOp::Update {
            index: index.to_string(),
            key: key.to_vec(),
            tuple: tuple.to_vec(),
        });
        self
    }

    /// Appends a delete of the row whose `index` key is `key`.
    pub fn delete(mut self, index: &str, key: &[u8]) -> Self {
        self.ops.push(BatchOp::Delete { index: index.to_string(), key: key.to_vec() });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// One result of [`Table::execute`], in batch order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutput {
    /// Result of a [`Batch::get`] op.
    Tuple(Option<Vec<u8>>),
    /// Result of a [`Batch::project`] op.
    Projection(Option<Projection>),
    /// Result of a [`Batch::put`] op: where the tuple landed.
    Put(RecordId),
    /// Result of a [`Batch::update`] op: whether the key existed.
    Updated(bool),
    /// Result of a [`Batch::delete`] op: whether the key existed.
    Deleted(bool),
}

impl BatchOutput {
    /// The tuple of a `get` op; `None` for other op kinds.
    pub fn tuple(&self) -> Option<&[u8]> {
        match self {
            BatchOutput::Tuple(Some(t)) => Some(t),
            _ => None,
        }
    }

    /// The projection of a `project` op; `None` for other op kinds.
    pub fn projection(&self) -> Option<&Projection> {
        match self {
            BatchOutput::Projection(Some(p)) => Some(p),
            _ => None,
        }
    }

    /// The landing address of a `put` op; `None` for other op kinds.
    pub fn rid(&self) -> Option<RecordId> {
        match self {
            BatchOutput::Put(rid) => Some(*rid),
            _ => None,
        }
    }

    /// Whether an `update`/`delete` op found its key; `None` for other
    /// op kinds.
    pub fn applied(&self) -> Option<bool> {
        match self {
            BatchOutput::Updated(b) | BatchOutput::Deleted(b) => Some(*b),
            _ => None,
        }
    }
}

impl Table {
    /// Executes a [`Batch`]: operations are grouped per `(index, kind)`
    /// — resolving each index name exactly once — and each group runs
    /// through the batched sorted-key paths, so a batch of N point ops
    /// costs one structure-lock acquisition and one leaf visit per
    /// distinct leaf per group instead of N full descents. Write groups
    /// apply before read groups in the documented put → update →
    /// delete → read order (see [`Batch`]); everything is validated —
    /// index names, tuple widths — before any group touches a page.
    /// Results come back in the batch's op order.
    pub fn execute(&self, batch: Batch) -> Result<Vec<BatchOutput>> {
        // ---- Validate up front ------------------------------------
        let mut handles: HashMap<&str, Arc<Index>> = HashMap::new();
        for op in &batch.ops {
            let (index, tuple) = match op {
                BatchOp::Get { index, .. }
                | BatchOp::Project { index, .. }
                | BatchOp::Delete { index, .. } => (index, None),
                BatchOp::Put { index, tuple } | BatchOp::Update { index, tuple, .. } => {
                    (index, Some(tuple))
                }
            };
            if !handles.contains_key(index.as_str()) {
                handles.insert(index, self.find_index(index)?);
            }
            if let Some(tuple) = tuple {
                self.check_tuple(tuple)?;
            }
        }
        let mut out: Vec<Option<BatchOutput>> = batch.ops.iter().map(|_| None).collect();

        // ---- Writes: puts, then updates, then deletes -------------
        let mut put_groups: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut update_groups: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut delete_groups: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, op) in batch.ops.iter().enumerate() {
            match op {
                BatchOp::Put { index, .. } => put_groups.entry(index).or_default().push(i),
                BatchOp::Update { index, .. } => update_groups.entry(index).or_default().push(i),
                BatchOp::Delete { index, .. } => delete_groups.entry(index).or_default().push(i),
                _ => {}
            }
        }
        for (index, positions) in put_groups {
            let idx = &handles[index];
            let tuples: Vec<&[u8]> = positions
                .iter()
                .map(|&i| match &batch.ops[i] {
                    BatchOp::Put { tuple, .. } => tuple.as_slice(),
                    _ => unreachable!("grouped as put"),
                })
                .collect();
            for (&i, rid) in positions.iter().zip(self.put_many_with(idx, &tuples)?) {
                out[i] = Some(BatchOutput::Put(rid));
            }
        }
        for (index, positions) in update_groups {
            let idx = &handles[index];
            let pairs: Vec<(&[u8], &[u8])> = positions
                .iter()
                .map(|&i| match &batch.ops[i] {
                    BatchOp::Update { key, tuple, .. } => (key.as_slice(), tuple.as_slice()),
                    _ => unreachable!("grouped as update"),
                })
                .collect();
            for (&i, applied) in positions.iter().zip(self.update_many_with(idx, &pairs)?) {
                out[i] = Some(BatchOutput::Updated(applied));
            }
        }
        for (index, positions) in delete_groups {
            let idx = &handles[index];
            let keys: Vec<&[u8]> = positions
                .iter()
                .map(|&i| match &batch.ops[i] {
                    BatchOp::Delete { key, .. } => key.as_slice(),
                    _ => unreachable!("grouped as delete"),
                })
                .collect();
            for (&i, applied) in positions.iter().zip(self.delete_many_with(idx, &keys)?) {
                out[i] = Some(BatchOutput::Deleted(applied));
            }
        }

        // ---- Reads: they observe this batch's writes --------------
        let mut read_groups: HashMap<(&str, bool), Vec<usize>> = HashMap::new();
        for (i, op) in batch.ops.iter().enumerate() {
            match op {
                BatchOp::Get { index, .. } => {
                    read_groups.entry((index, false)).or_default().push(i)
                }
                BatchOp::Project { index, .. } => {
                    read_groups.entry((index, true)).or_default().push(i)
                }
                _ => {}
            }
        }
        for ((index, is_projection), positions) in read_groups {
            let idx = &handles[index];
            let keys: Vec<&[u8]> = positions
                .iter()
                .map(|&i| match &batch.ops[i] {
                    BatchOp::Get { key, .. } | BatchOp::Project { key, .. } => key.as_slice(),
                    _ => unreachable!("grouped as read"),
                })
                .collect();
            if is_projection {
                for (&i, p) in positions.iter().zip(self.project_many_with(idx, &keys)?) {
                    out[i] = Some(BatchOutput::Projection(p));
                }
            } else {
                for (&i, t) in positions.iter().zip(self.get_many_with(idx, &keys)?) {
                    out[i] = Some(BatchOutput::Tuple(t));
                }
            }
        }
        out.into_iter()
            .map(|r| r.ok_or_else(|| StorageError::Corrupt("batch op not executed".into())))
            .collect()
    }
}
