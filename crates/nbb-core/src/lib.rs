//! # nbb-core — the *No Bits Left Behind* system facade
//!
//! Ties the substrates into the system the paper envisions:
//!
//! * [`db`] — a small database: separate data/index buffer pools over
//!   (optionally latency-modeled) disks, named tables. Each pool is
//!   lock-striped; the [`db::DbConfig::pool_shards`] knob sizes the
//!   stripe count (clamped so tiny experiment pools stay single-stripe);
//! * [`table`] — fixed-width-tuple tables with cached secondary
//!   indexes: [`table::Table::project_via_index`] is the paper's §2.1
//!   hot path (index-cache hit → no heap access), and updates/deletes
//!   carry the §2.1.2 invalidation duties automatically. Reads are
//!   fully concurrent (index→heap chases re-verify the fetched key, so
//!   racing deletes read as absent). Writers crab through per-leaf
//!   latches underneath, so mutators on **disjoint keys** proceed in
//!   parallel — across threads and across tables — with only
//!   structural splits briefly excluding other tree users; writers on
//!   the **same key** are first-class too: every put/update/delete
//!   installs a key-level *write intent* ([`nbb_btree::KeyIntents`])
//!   before resolving anything, racing same-key writers park on it
//!   with a pre-granted handoff, and per-key writes through one index
//!   are linearizable end to end (one racing deleter wins `true`, the
//!   rest observe its completed delete as `false` — no silently
//!   dropped rows, no tolerated writer-side `InvalidSlot`s).
//!   `db::DbConfig::intent_stripes` sizes the intent table;
//!   `table::TableStats::intent_parks` / `intent_handoffs` meter it.
//!   Batched mutators ([`table::Table::insert_many`] and the
//!   `update_many`/`delete_many`/`put_many` family) validate up front
//!   — duplicate in-batch keys surface
//!   [`nbb_storage::error::StorageError::DuplicateKeyInBatch`] — and
//!   amortize one descent + one leaf latch + one heap-page latch per
//!   page touched, visible as `write_batches` vs `inserts` in
//!   [`table::Table::stats`];
//! * [`query`] — the handle-based query surface:
//!   [`query::IndexRef`] handles from [`table::Table::index`] skip the
//!   per-call name lookup; [`query::IndexRef::get_many`] /
//!   [`query::IndexRef::project_many`] and their write twins
//!   [`query::IndexRef::put_many`] / [`query::IndexRef::update_many`]
//!   / [`query::IndexRef::delete_many`] amortize lock acquisitions and
//!   leaf visits across N keys; [`query::Batch`] /
//!   [`table::Table::execute`] mix point reads and writes with a
//!   documented put → update → delete → read order (a batch's reads
//!   observe its writes); [`query::IndexRef::range`] /
//!   [`query::IndexRef::range_projected`] walk sibling leaves in key
//!   order, serving projections from leaf free space;
//! * [`row`] — typed table declarations: [`row::RowSchema`] derives
//!   field geometry and order-preserving key bytes from an
//!   [`nbb_encoding::Schema`], so rows read/write as
//!   [`nbb_encoding::Value`]s;
//! * [`waste`] — the §1 vision of "tools that automate waste
//!   detection": one audit spanning unused space, locality, and
//!   encoding waste;
//! * [`joincache`] — the §2.2 data-page join-result cache extension;
//! * [`tuner`] — the self-tuning free-space controller: opt in via
//!   [`db::DbConfig::tuning_interval`] and a background thread walks
//!   the waste metrics, scores each spare-byte consumer's hits per
//!   KiB, and reallocates bytes online (leaf cache space ↔ join cache
//!   ↔ compressed tier), recording every decision in a ring the waste
//!   report renders.
//!
//! The string-keyed `Table::*_via_index` methods remain as thin
//! compatibility wrappers over the handle paths.
//!
//! ## Quickstart
//!
//! ```
//! use nbb_core::db::{Database, DbConfig};
//! use nbb_core::query::Batch;
//! use nbb_core::row::RowSchema;
//! use nbb_encoding::{ColumnDef, DeclaredType, Schema, Value};
//!
//! // Declare the table with typed columns; geometry is derived.
//! let schema = Schema {
//!     table: "pages".into(),
//!     columns: vec![
//!         ColumnDef::new("id", DeclaredType::Int64),
//!         ColumnDef::new("views", DeclaredType::Int64),
//!         ColumnDef::new("flags", DeclaredType::Int64),
//!     ],
//! };
//! let rows = RowSchema::new(&schema);
//! let db = Database::open(DbConfig::default());
//! let t = db.create_table_with(&rows).unwrap();
//! t.create_index(rows.index_spec("by_id", "id", &["views"]).unwrap()).unwrap();
//! // Load through the batched write path: one validated batch, one
//! // descent per destination leaf instead of per row.
//! let load: Vec<Vec<u8>> = (0..100i64)
//!     .map(|id| rows.encode(&[Value::Int(id), Value::Int(id * 10), Value::Int(1)]).unwrap())
//!     .collect();
//! t.insert_many(&load).unwrap();
//! assert_eq!(t.stats().write_batches, 1);
//!
//! // Resolve the index once; query through the handle.
//! let by_id = t.index("by_id").unwrap();
//! let key = rows.key("id", &Value::Int(7)).unwrap();
//! let first = by_id.project(&key).unwrap().unwrap();
//! assert!(!first.index_only);          // cold: heap fetch + populate
//! let second = by_id.project(&key).unwrap().unwrap();
//! assert!(second.index_only);          // hot: answered from index free space
//!
//! // Batched lookups amortize locks across keys...
//! let keys: Vec<Vec<u8>> =
//!     (0..20i64).map(|id| rows.key("id", &Value::Int(id)).unwrap()).collect();
//! let many = by_id.get_many(&keys).unwrap();
//! assert!(many.iter().all(|t| t.is_some()));
//!
//! // ...and range cursors walk sibling leaves in key order.
//! let lo = rows.key("id", &Value::Int(10)).unwrap();
//! let hi = rows.key("id", &Value::Int(20)).unwrap();
//! let in_range: Vec<_> =
//!     by_id.range(&lo[..]..&hi[..]).map(|r| r.unwrap().tuple).collect();
//! assert_eq!(in_range.len(), 10);
//!
//! // Heterogeneous point ops — reads AND writes — group per index
//! // through Table::execute. Writes apply before reads (put → update
//! // → delete → read), so the batch's reads observe its writes.
//! let fresh = rows.encode(&[Value::Int(100), Value::Int(0), Value::Int(1)]).unwrap();
//! let k100 = rows.key("id", &Value::Int(100)).unwrap();
//! let out = t
//!     .execute(
//!         Batch::new()
//!             .put("by_id", &fresh)
//!             .delete("by_id", &keys[0])
//!             .get("by_id", &k100)       // sees the put
//!             .get("by_id", &keys[0])    // sees the delete
//!             .project("by_id", &keys[1]),
//!     )
//!     .unwrap();
//! assert!(out[0].rid().is_some());
//! assert_eq!(out[1].applied(), Some(true));
//! assert!(out[2].tuple().is_some() && out[3].tuple().is_none());
//! assert!(out[4].projection().is_some());
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod db;
pub mod joincache;
pub mod query;
pub mod row;
pub mod table;
pub mod tuner;
pub mod waste;

pub use db::{Database, DbConfig};
pub use joincache::{JoinCache, JoinCacheStats};
pub use query::{
    Batch, BatchOutput, IndexRef, ProjectedRangeCursor, ProjectedRow, RangeCursor, RangeRow,
};
pub use row::RowSchema;
pub use table::{FieldSpec, IndexSpec, Projection, Table, TableStats};
pub use tuner::{ConsumerId, ConsumerSample, Controller, TunedSurface, TunerConfig, TunerDecision};
pub use waste::{audit, audit_encoding, audit_locality, audit_unused, WasteReport};
