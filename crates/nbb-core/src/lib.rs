//! # nbb-core — the *No Bits Left Behind* system facade
//!
//! Ties the substrates into the system the paper envisions:
//!
//! * [`db`] — a small database: separate data/index buffer pools over
//!   (optionally latency-modeled) disks, named tables. Each pool is
//!   lock-striped; the [`db::DbConfig::pool_shards`] knob sizes the
//!   stripe count (clamped so tiny experiment pools stay single-stripe);
//! * [`table`] — fixed-width-tuple tables with cached secondary
//!   indexes: [`table::Table::project_via_index`] is the paper's §2.1
//!   hot path (index-cache hit → no heap access), and updates/deletes
//!   carry the §2.1.2 invalidation duties automatically. Reads are
//!   fully concurrent (index→heap chases re-verify the fetched key, so
//!   racing deletes read as absent); table-level mutators assume a
//!   single writer per table, with index-structure writes serialized
//!   per tree underneath;
//! * [`waste`] — the §1 vision of "tools that automate waste
//!   detection": one audit spanning unused space, locality, and
//!   encoding waste;
//! * [`joincache`] — the §2.2 data-page join-result cache extension.
//!
//! ## Quickstart
//!
//! ```
//! use nbb_core::db::{Database, DbConfig};
//! use nbb_core::table::{FieldSpec, IndexSpec};
//!
//! let db = Database::open(DbConfig::default());
//! let t = db.create_table("pages", 24).unwrap();
//! // tuple: id(8) | views(8) | flags(8); index on id, caching views.
//! t.create_index(IndexSpec::cached(
//!     "by_id",
//!     FieldSpec::new(0, 8),
//!     vec![FieldSpec::new(8, 8)],
//! )).unwrap();
//! let mut tuple = 7u64.to_be_bytes().to_vec();
//! tuple.extend_from_slice(&123u64.to_le_bytes());
//! tuple.extend_from_slice(&[0u8; 8]);
//! t.insert(&tuple).unwrap();
//!
//! let first = t.project_via_index("by_id", &7u64.to_be_bytes()).unwrap().unwrap();
//! assert!(!first.index_only);          // cold: heap fetch + populate
//! let second = t.project_via_index("by_id", &7u64.to_be_bytes()).unwrap().unwrap();
//! assert!(second.index_only);          // hot: answered from index free space
//! assert_eq!(second.payload, 123u64.to_le_bytes());
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod db;
pub mod joincache;
pub mod table;
pub mod waste;

pub use db::{Database, DbConfig};
pub use joincache::{JoinCache, JoinCacheStats};
pub use table::{FieldSpec, IndexSpec, Projection, Table, TableStats};
pub use waste::{audit, audit_encoding, audit_locality, audit_unused, WasteReport};
