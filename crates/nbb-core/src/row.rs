//! Typed table declarations: [`RowSchema`] bridges
//! [`nbb_encoding::Schema`]'s declared column types to the byte-range
//! geometry the storage layers speak.
//!
//! A [`Table`] addresses tuples as raw fixed-width byte ranges — a
//! [`FieldSpec`] is literally `offset..offset+len` — which keeps the
//! substrate honest but makes callers hand-compute offsets. `RowSchema`
//! derives that geometry from a typed schema via
//! [`nbb_encoding::RowLayout`]'s order-preserving column codecs, so a
//! table can be declared with named, typed columns, indexed by column
//! name, and read/written as [`Value`] rows:
//!
//! ```
//! use nbb_core::db::{Database, DbConfig};
//! use nbb_core::row::RowSchema;
//! use nbb_encoding::{ColumnDef, DeclaredType, Schema, Value};
//!
//! let schema = Schema {
//!     table: "articles".into(),
//!     columns: vec![
//!         ColumnDef::new("id", DeclaredType::Int64),
//!         ColumnDef::new("views", DeclaredType::Int64),
//!         ColumnDef::new("title", DeclaredType::Str { width: 16 }),
//!     ],
//! };
//! let rows = RowSchema::new(&schema);
//!
//! let db = Database::open(DbConfig::default());
//! let t = db.create_table_with(&rows).unwrap();
//! t.create_index(rows.index_spec("by_id", "id", &["views"]).unwrap()).unwrap();
//!
//! t.insert(&rows.encode(&[Value::Int(7), Value::Int(123), Value::str("Main_Page")]).unwrap())
//!     .unwrap();
//! let by_id = t.index("by_id").unwrap();
//! let tuple = by_id.get(&rows.key("id", &Value::Int(7)).unwrap()).unwrap().unwrap();
//! assert_eq!(
//!     rows.decode(&tuple).unwrap(),
//!     vec![Value::Int(7), Value::Int(123), Value::str("Main_Page")],
//! );
//! ```
//!
//! Because every column codec is order-preserving (integers big-endian
//! with the sign bit flipped, strings zero-padded), the encoded column
//! bytes double as `memcmp`-ordered B+Tree keys: [`RowSchema::key`]
//! values compose directly with [`crate::query::IndexRef::range`]
//! cursors, and numeric ranges scan in numeric order.

use crate::table::{FieldSpec, IndexSpec};
use nbb_encoding::rowcodec::{RowCodecError, RowLayout};
use nbb_encoding::{Schema, Value};
use nbb_storage::error::{Result, StorageError};

/// A typed row schema bound to a fixed-width tuple layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowSchema {
    table: String,
    layout: RowLayout,
}

fn codec_err(e: RowCodecError) -> StorageError {
    StorageError::Corrupt(e.to_string())
}

impl RowSchema {
    /// Derives the physical layout from a typed schema's columns, in
    /// declaration order.
    pub fn new(schema: &Schema) -> Self {
        let cols: Vec<(String, nbb_encoding::DeclaredType)> =
            schema.columns.iter().map(|c| (c.name.clone(), c.declared)).collect();
        RowSchema { table: schema.table.clone(), layout: RowLayout::new(&cols) }
    }

    /// The table name the schema declares.
    pub fn table_name(&self) -> &str {
        &self.table
    }

    /// Total tuple width in bytes — pass to
    /// [`crate::db::Database::create_table`], or use
    /// [`crate::db::Database::create_table_with`].
    pub fn tuple_width(&self) -> usize {
        self.layout.tuple_width()
    }

    /// The underlying physical layout.
    pub fn layout(&self) -> &RowLayout {
        &self.layout
    }

    /// The byte range of column `name` — the geometry piece an
    /// [`IndexSpec`] is made of.
    pub fn field(&self, name: &str) -> Result<FieldSpec> {
        let col = self.layout.column(name).map_err(codec_err)?;
        Ok(FieldSpec::new(col.offset, col.width))
    }

    /// Builds an [`IndexSpec`] keyed on column `key_column`, caching
    /// `cached_columns` in leaf free space (empty = plain index). The
    /// byte geometry is derived, not hand-computed.
    pub fn index_spec(
        &self,
        index_name: &str,
        key_column: &str,
        cached_columns: &[&str],
    ) -> Result<IndexSpec> {
        let key = self.field(key_column)?;
        let cached =
            cached_columns.iter().map(|c| self.field(c)).collect::<Result<Vec<FieldSpec>>>()?;
        Ok(if cached.is_empty() {
            IndexSpec::plain(index_name, key)
        } else {
            IndexSpec::cached(index_name, key, cached)
        })
    }

    /// Encodes a typed row into its fixed-width tuple bytes.
    pub fn encode(&self, values: &[Value]) -> Result<Vec<u8>> {
        self.layout.encode_row(values).map_err(codec_err)
    }

    /// Decodes tuple bytes back into a typed row.
    pub fn decode(&self, tuple: &[u8]) -> Result<Vec<Value>> {
        self.layout.decode_row(tuple).map_err(codec_err)
    }

    /// Encodes one column value as order-preserving key bytes, for
    /// point lookups and range-cursor bounds over an index keyed on
    /// that column.
    pub fn key(&self, column: &str, value: &Value) -> Result<Vec<u8>> {
        let col = self.layout.column(column).map_err(codec_err)?;
        RowLayout::encode_value(col, value).map_err(codec_err)
    }

    /// Decodes the cached-fields payload of a [`crate::table::Projection`]
    /// produced through `index`, returning `(column name, value)` pairs
    /// in the index's cached-field order.
    pub fn decode_projection(
        &self,
        index: &IndexSpec,
        payload: &[u8],
    ) -> Result<Vec<(String, Value)>> {
        let mut out = Vec::with_capacity(index.cached_fields.len());
        let mut at = 0usize;
        for f in &index.cached_fields {
            let col = self
                .layout
                .columns()
                .iter()
                .find(|c| c.offset == f.offset && c.width == f.len)
                .ok_or_else(|| {
                    StorageError::Corrupt(format!(
                        "cached field {}..{} does not match any schema column",
                        f.offset,
                        f.offset + f.len
                    ))
                })?;
            if at + f.len > payload.len() {
                return Err(StorageError::Corrupt(format!(
                    "projection payload of {} bytes too short for cached fields",
                    payload.len()
                )));
            }
            out.push((col.name.clone(), RowLayout::decode_value(col, &payload[at..at + f.len])));
            at += f.len;
        }
        Ok(out)
    }
}
