//! The self-tuning free-space controller — "close the loop on waste".
//!
//! The engine *measures* how every spare byte is spent (waste report,
//! per-index cache stats, pool counters); this module makes the
//! allocation adaptive. A [`Controller`] periodically receives one
//! [`ConsumerSample`] per spare-byte consumer — each index's leaf
//! promotion-cache space, the §2.2 join cache, the pool's compressed
//! tier — computes the observed **hit value per spare KiB** since the
//! last tick, and moves a bounded step of bytes from the
//! lowest-value consumer to the highest. Decisions land in a bounded
//! [`DecisionRing`] the waste report renders, so the controller is
//! observable and debuggable.
//!
//! The controller is deliberately a pure function of its samples: the
//! database feeds it through the [`TunedSurface`] trait (sample +
//! resize hooks), and tests feed it scripts. Anti-oscillation is
//! two-fold: a move only happens when the best consumer's value beats
//! the worst's by a configured hysteresis factor, and each move is
//! followed by a cooldown (letting the new allocation show results)
//! during which an exact reversal is additionally refused.
//!
//! Lock order: the ring's mutex is [`nbb_storage::lockrank::TUNER`],
//! the lowest rank in the lattice — the tuner thread holds it while
//! sampling (which reaches every engine lock below), and nothing in
//! the engine ever locks tuner state from inside an engine lock.

use nbb_storage::lockrank;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

/// A spare-byte consumer the controller can grow or shrink.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ConsumerId {
    /// Leaf promotion-cache space of one index (by index name).
    LeafCache(String),
    /// The §2.2 data-page join cache (one cache-wide budget).
    JoinCache,
    /// The buffer pool's compressed cold-frame tier.
    CompressedTier,
}

impl fmt::Display for ConsumerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsumerId::LeafCache(idx) => write!(f, "leaf-cache idx={idx}"),
            ConsumerId::JoinCache => write!(f, "join-cache"),
            ConsumerId::CompressedTier => write!(f, "compressed-tier"),
        }
    }
}

/// One consumer's state at a sampling instant.
#[derive(Clone, Debug)]
pub struct ConsumerSample {
    /// Which consumer.
    pub id: ConsumerId,
    /// *Cumulative* hits served by this consumer's bytes (the
    /// controller differences successive samples itself).
    pub hits: u64,
    /// Bytes currently allocated to the consumer.
    pub bytes: usize,
}

/// Controller knobs. `Default` is the production shape; tests tighten
/// the numbers.
#[derive(Clone, Debug)]
pub struct TunerConfig {
    /// Wall-clock pause between background ticks (ignored by manual
    /// [`crate::db::Database::tuning_tick`] calls).
    pub interval: Duration,
    /// Upper bound on bytes moved per decision.
    pub step_bytes: usize,
    /// The best consumer's hit value must exceed the worst's by this
    /// factor before a move happens (damps churn on near-ties).
    pub hysteresis: f64,
    /// Ticks to sit out after a move, letting the new allocation
    /// produce evidence before the next decision.
    pub cooldown_ticks: u32,
    /// Bounded decision-ring capacity.
    pub ring: usize,
    /// Floor below which a consumer is never shrunk.
    pub min_bytes: usize,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            interval: Duration::from_millis(100),
            step_bytes: 4096,
            hysteresis: 1.5,
            cooldown_ticks: 2,
            ring: 64,
            min_bytes: 4096,
        }
    }
}

/// What the controller tunes: a stats source plus resize hooks. The
/// database is the production implementation; tests script one.
pub trait TunedSurface {
    /// Snapshot every consumer's cumulative hits and current bytes.
    fn sample(&self) -> Vec<ConsumerSample>;
    /// Apply a new byte allocation to one consumer.
    fn resize(&self, id: &ConsumerId, new_bytes: usize);
}

/// One reallocation decision, in the shape the ring renders.
#[derive(Clone, Debug)]
pub struct TunerDecision {
    /// Controller tick (1-based) the decision fired on.
    pub tick: u64,
    /// Bytes moved.
    pub moved_bytes: usize,
    /// Shrunk consumer.
    pub from: ConsumerId,
    /// Grown consumer.
    pub to: ConsumerId,
    /// Donor's observed hit value (hits per spare KiB this interval).
    pub from_value: f64,
    /// Recipient's observed hit value.
    pub to_value: f64,
    /// Donor's allocation after the move.
    pub from_bytes: usize,
    /// Recipient's allocation after the move.
    pub to_bytes: usize,
}

impl fmt::Display for TunerDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tuner: moved {} KiB {} \u{2192} {}, value {:.1}\u{2192}{:.1} hits/KiB",
            self.moved_bytes / 1024,
            self.from,
            self.to,
            self.from_value,
            self.to_value,
        )
    }
}

/// The decision core: differences successive samples, scores hit value
/// per spare KiB, and proposes one bounded move per tick. Pure — it
/// never touches the engine; callers apply decisions through their
/// [`TunedSurface`].
#[derive(Debug)]
pub struct Controller {
    cfg: TunerConfig,
    tick: u64,
    /// Last cumulative hit count seen per consumer.
    last_hits: HashMap<ConsumerId, u64>,
    /// Ticks remaining before the next move is allowed.
    cooldown: u32,
    /// The previous move's (from, to), refused in reverse while
    /// `reverse_ttl` is warm.
    last_move: Option<(ConsumerId, ConsumerId)>,
    /// Ticks the reversal guard stays armed. A freshly-moved pair may
    /// not trade straight back on its first post-cooldown reading
    /// (that is noise chasing), but the guard must *expire* — a real
    /// regime change is allowed to reverse an old move one window
    /// later.
    reverse_ttl: u32,
}

impl Controller {
    /// A controller with `cfg`'s knobs and no history.
    pub fn new(cfg: TunerConfig) -> Self {
        Controller {
            cfg,
            tick: 0,
            last_hits: HashMap::new(),
            cooldown: 0,
            last_move: None,
            reverse_ttl: 0,
        }
    }

    /// The knobs this controller runs with.
    pub fn config(&self) -> &TunerConfig {
        &self.cfg
    }

    /// Ingests one sampling round and proposes at most one move.
    ///
    /// The first sighting of a consumer only records its baseline (a
    /// cumulative counter needs two points to yield a rate), so no
    /// move can fire before the second tick.
    pub fn tick(&mut self, samples: &[ConsumerSample]) -> Option<TunerDecision> {
        self.tick += 1;
        // Score every consumer that has a baseline; always refresh
        // baselines (even through cooldowns) so rates stay per-interval.
        let mut scored: Vec<(usize, f64)> = Vec::with_capacity(samples.len());
        for (i, s) in samples.iter().enumerate() {
            if let Some(prev) = self.last_hits.insert(s.id.clone(), s.hits) {
                let delta = s.hits.saturating_sub(prev);
                let kib = (s.bytes.max(1)) as f64 / 1024.0;
                scored.push((i, delta as f64 / kib));
            }
        }
        self.reverse_ttl = self.reverse_ttl.saturating_sub(1);
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        // Recipient: highest value anywhere. Donor: lowest value among
        // consumers still shrinkable (above the floor).
        let &(to_i, to_value) = scored.iter().max_by(|a, b| a.1.total_cmp(&b.1))?;
        let &(from_i, from_value) = scored
            .iter()
            .filter(|&&(i, _)| i != to_i && samples[i].bytes > self.cfg.min_bytes)
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        if to_value <= from_value * self.cfg.hysteresis || to_value <= 0.0 {
            return None;
        }
        let (from, to) = (samples[from_i].id.clone(), samples[to_i].id.clone());
        if self.reverse_ttl > 0 && self.last_move.as_ref() == Some(&(to.clone(), from.clone())) {
            // An exact reversal of a *fresh* move: the two consumers
            // are trading places on noise — hold still this window. If
            // the advantage persists, the guard has expired by the next
            // decision tick and the reversal goes through.
            return None;
        }
        let step = self.cfg.step_bytes.min(samples[from_i].bytes - self.cfg.min_bytes);
        if step == 0 {
            return None;
        }
        self.cooldown = self.cfg.cooldown_ticks;
        self.last_move = Some((from.clone(), to.clone()));
        // Armed through the cooldown plus the first decision tick after
        // it — exactly one fresh-evidence window.
        self.reverse_ttl = self.cfg.cooldown_ticks + 2;
        Some(TunerDecision {
            tick: self.tick,
            moved_bytes: step,
            from_bytes: samples[from_i].bytes - step,
            to_bytes: samples[to_i].bytes + step,
            from,
            to,
            from_value,
            to_value,
        })
    }
}

/// Bounded, thread-shared log of rendered decisions (newest last) —
/// the waste report's `tuner:` lines.
#[derive(Debug)]
pub struct DecisionRing {
    cap: usize,
    inner: Mutex<VecDeque<String>>,
}

impl DecisionRing {
    /// A ring keeping at most `cap` decisions.
    pub fn new(cap: usize) -> Self {
        DecisionRing { cap: cap.max(1), inner: Mutex::with_rank(lockrank::TUNER, VecDeque::new()) }
    }

    /// Records a rendered decision, dropping the oldest past capacity.
    pub fn push(&self, line: String) {
        let mut ring = self.inner.lock();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(line);
    }

    /// Snapshot, oldest first.
    pub fn snapshot(&self) -> Vec<String> {
        self.inner.lock().iter().cloned().collect()
    }
}

/// Runs one sample → decide → resize → record round against `surface`.
/// Shared by the background tuner thread and the synchronous
/// [`crate::db::Database::tuning_tick`] test/bench hook.
pub fn run_tick(
    controller: &mut Controller,
    surface: &dyn TunedSurface,
    ring: &DecisionRing,
) -> Option<TunerDecision> {
    let samples = surface.sample();
    let decision = controller.tick(&samples)?;
    surface.resize(&decision.from, decision.from_bytes);
    surface.resize(&decision.to, decision.to_bytes);
    ring.push(decision.to_string());
    Some(decision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn cfg() -> TunerConfig {
        TunerConfig {
            step_bytes: 4096,
            hysteresis: 1.5,
            cooldown_ticks: 2,
            min_bytes: 4096,
            ..TunerConfig::default()
        }
    }

    fn leaf(name: &str) -> ConsumerId {
        ConsumerId::LeafCache(name.into())
    }

    fn sample(id: &ConsumerId, hits: u64, bytes: usize) -> ConsumerSample {
        ConsumerSample { id: id.clone(), hits, bytes }
    }

    /// A scripted surface: per-tick hit *rates* per consumer, bytes
    /// tracked through resize calls so the controller sees its own
    /// moves take effect.
    struct Scripted {
        bytes: RefCell<HashMap<ConsumerId, usize>>,
        hits: RefCell<HashMap<ConsumerId, u64>>,
        /// hits gained per tick per consumer (the workload).
        rates: RefCell<HashMap<ConsumerId, u64>>,
    }

    impl Scripted {
        fn new(init: &[(ConsumerId, usize, u64)]) -> Self {
            let s = Scripted {
                bytes: RefCell::new(HashMap::new()),
                hits: RefCell::new(HashMap::new()),
                rates: RefCell::new(HashMap::new()),
            };
            for (id, bytes, rate) in init {
                s.bytes.borrow_mut().insert(id.clone(), *bytes);
                s.hits.borrow_mut().insert(id.clone(), 0);
                s.rates.borrow_mut().insert(id.clone(), *rate);
            }
            s
        }

        fn set_rate(&self, id: &ConsumerId, rate: u64) {
            self.rates.borrow_mut().insert(id.clone(), rate);
        }

        fn bytes_of(&self, id: &ConsumerId) -> usize {
            self.bytes.borrow()[id]
        }
    }

    impl TunedSurface for Scripted {
        fn sample(&self) -> Vec<ConsumerSample> {
            let mut hits = self.hits.borrow_mut();
            let rates = self.rates.borrow();
            let bytes = self.bytes.borrow();
            let mut ids: Vec<&ConsumerId> = bytes.keys().collect();
            ids.sort_by_key(|id| id.to_string());
            ids.iter()
                .map(|id| {
                    let h = hits.get_mut(id).expect("scripted consumer");
                    *h += rates[*id];
                    ConsumerSample { id: (*id).clone(), hits: *h, bytes: bytes[*id] }
                })
                .collect()
        }

        fn resize(&self, id: &ConsumerId, new_bytes: usize) {
            self.bytes.borrow_mut().insert(id.clone(), new_bytes);
        }
    }

    #[test]
    fn starved_high_value_consumer_gains_bytes_within_k_ticks() {
        // "pk" is rich but cold; "by_len" is starved but hot. Within a
        // few intervals the controller must have moved bytes to it.
        let surface =
            Scripted::new(&[(leaf("pk"), 64 * 1024, 10), (leaf("by_len"), 8 * 1024, 400)]);
        let mut c = Controller::new(cfg());
        let ring = DecisionRing::new(16);
        let start = surface.bytes_of(&leaf("by_len"));
        let mut moves = 0;
        for _ in 0..10 {
            if run_tick(&mut c, &surface, &ring).is_some() {
                moves += 1;
            }
        }
        assert!(moves >= 2, "expected repeated corrections, got {moves}");
        assert!(
            surface.bytes_of(&leaf("by_len")) >= start + 2 * 4096,
            "starved consumer must gain bytes: {} -> {}",
            start,
            surface.bytes_of(&leaf("by_len"))
        );
        assert!(surface.bytes_of(&leaf("pk")) >= 4096, "donor never shrinks below the floor");
        let trace = ring.snapshot();
        assert!(!trace.is_empty());
        assert!(
            trace[0].contains("leaf-cache idx=pk \u{2192} leaf-cache idx=by_len"),
            "ring renders the move: {}",
            trace[0]
        );
    }

    #[test]
    fn near_ties_inside_hysteresis_do_not_move() {
        // Values 1.0 vs 1.2 hits/KiB: inside the 1.5× band, so the
        // controller must hold still forever.
        let surface = Scripted::new(&[(leaf("a"), 100 * 1024, 100), (leaf("b"), 100 * 1024, 120)]);
        let mut c = Controller::new(cfg());
        let ring = DecisionRing::new(16);
        for _ in 0..20 {
            assert!(run_tick(&mut c, &surface, &ring).is_none());
        }
        assert_eq!(surface.bytes_of(&leaf("a")), 100 * 1024);
        assert_eq!(surface.bytes_of(&leaf("b")), 100 * 1024);
        assert!(ring.snapshot().is_empty());
    }

    #[test]
    fn alternating_advantage_is_damped_not_chased() {
        // The hot consumer flips every tick. Cooldown + the reversal
        // guard must keep the controller from thrashing bytes back and
        // forth: allow at most one move per cooldown window, and never
        // an immediate A→B, B→A pair.
        let (a, b) = (leaf("a"), leaf("b"));
        let surface = Scripted::new(&[(a.clone(), 64 * 1024, 0), (b.clone(), 64 * 1024, 0)]);
        let mut c = Controller::new(cfg());
        let ring = DecisionRing::new(64);
        let mut decisions: Vec<TunerDecision> = Vec::new();
        for t in 0..12 {
            if t % 2 == 0 {
                surface.set_rate(&a, 1000);
                surface.set_rate(&b, 10);
            } else {
                surface.set_rate(&a, 10);
                surface.set_rate(&b, 1000);
            }
            decisions.extend(run_tick(&mut c, &surface, &ring));
        }
        for pair in decisions.windows(2) {
            assert!(
                !(pair[1].from == pair[0].to
                    && pair[1].to == pair[0].from
                    && pair[1].tick == pair[0].tick + 1),
                "back-to-back reversal slipped through: {:?}",
                pair
            );
        }
        assert!(
            decisions.len() <= 4,
            "cooldown must bound churn to one move per window, got {}",
            decisions.len()
        );
    }

    #[test]
    fn first_tick_only_baselines() {
        let mut c = Controller::new(cfg());
        let (a, b) = (leaf("a"), leaf("b"));
        assert!(
            c.tick(&[sample(&a, 1_000_000, 64 * 1024), sample(&b, 0, 64 * 1024)]).is_none(),
            "cumulative counters need two points"
        );
        // Second tick: "a" gained nothing, "b" surged — now it moves.
        let d = c
            .tick(&[sample(&a, 1_000_000, 64 * 1024), sample(&b, 5_000, 64 * 1024)])
            .expect("second tick has rates");
        assert_eq!(d.from, a);
        assert_eq!(d.to, b);
        assert_eq!(d.moved_bytes, 4096);
        assert_eq!(d.from_bytes, 64 * 1024 - 4096);
        assert_eq!(d.to_bytes, 64 * 1024 + 4096);
    }

    #[test]
    fn decision_ring_is_bounded() {
        let ring = DecisionRing::new(3);
        for i in 0..10 {
            ring.push(format!("d{i}"));
        }
        assert_eq!(ring.snapshot(), vec!["d7", "d8", "d9"]);
    }

    #[test]
    fn decision_display_matches_report_format() {
        let d = TunerDecision {
            tick: 3,
            moved_bytes: 4096,
            from: leaf("pk"),
            to: ConsumerId::JoinCache,
            from_value: 0.84,
            to_value: 2.31,
            from_bytes: 60 * 1024,
            to_bytes: 68 * 1024,
        };
        assert_eq!(
            d.to_string(),
            "tuner: moved 4 KiB leaf-cache idx=pk \u{2192} join-cache, value 0.8\u{2192}2.3 hits/KiB"
        );
    }
}
