//! Tables: fixed-width tuples on a heap, with cached secondary indexes.
//!
//! A [`Table`] composes the substrates into the paper's system: a heap
//! file for tuples, any number of B+Tree indexes whose leaf free space
//! caches hot tuples' projected fields (§2.1), and the bookkeeping that
//! keeps caches consistent under updates (§2.1.2).
//!
//! Field geometry is declared, not parsed: a [`FieldSpec`] names a byte
//! range of the fixed-width tuple; an [`IndexSpec`] says which range is
//! the key and which ranges ride in the index cache. The paper's
//! `name_title` example: key = (namespace, title), cached payload =
//! 4 projected fields, 25-byte cache items. Declarations are validated
//! at [`Table::create_index`]; geometry can also be derived from a
//! typed schema via [`crate::row::RowSchema`].
//!
//! Queries flow through handles: [`Table::index`] resolves an index
//! name once to a [`crate::query::IndexRef`], whose point, batched
//! (`get_many` / `project_many` / [`Table::execute`]) and range-cursor
//! operations skip the per-call name lookup and amortize lock work.
//! Writes batch the same way: [`Table::insert_many`] and the
//! `put_many` / `update_many` / `delete_many` family validate up front
//! (duplicate in-batch keys are a named error), append heap tuples one
//! page latch per tail page, and maintain every index through the
//! B+Tree's sorted, leaf-grouped multi-key ops — writers on disjoint
//! keys proceed in parallel under per-leaf latches. The single-key
//! mutators and the string-keyed `*_via_index` methods remain as thin
//! compatibility wrappers over the same paths.
//!
//! # Same-key writers: key-level write intents
//!
//! A logical write (resolve the key through its index, mutate the heap
//! row, maintain every index) spans several page operations, so two
//! writers racing the *same* key used to interleave mid-sequence; the
//! write paths carried tolerance workarounds (a racing deleter dropped
//! just its row, writer-side `InvalidSlot`s read as "lost the race").
//! Those workarounds are gone. Every put/update/delete path now
//! installs a **write intent** ([`nbb_btree::KeyIntents`], owned by the
//! accessed index's tree) on each key it addresses — including the keys
//! a key-changing update will write — *before* resolving anything, and
//! racing same-key writers park on the in-flight intent with a
//! pre-granted handoff (the buffer pool's in-flight-load pattern).
//! Per-key put/update/delete through one index is therefore
//! **linearizable end to end**: one racing deleter wins (`true`), the
//! others observe a completed delete (`false`), and nothing is ever
//! silently dropped mid-batch. Readers never take intents — index→heap
//! chases keep their re-verification, so reads stay wait-free and
//! reader-vs-writer races still read as absent.
//!
//! The guarantee is scoped to writers that address a row **through the
//! same index**. Concurrent writers reaching one row through different
//! indexes of a multi-index table are not coordinated; if such a race
//! destroys a resolved slot, the write surfaces
//! [`StorageError::Corrupt`] naming the violated intent instead of
//! silently dropping the row. `inserts` of already-present keys remain
//! the caller's contract violation, as before.

use nbb_btree::{BTree, BTreeOptions, CacheConfig};
use nbb_storage::error::{Result, StorageError};
use nbb_storage::heap::HeapFile;
use nbb_storage::lockrank;
use nbb_storage::rid::RecordId;
use nbb_storage::BufferPool;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A byte range within the fixed-width tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// Byte offset within the tuple.
    pub offset: usize,
    /// Field width in bytes.
    pub len: usize,
}

impl FieldSpec {
    /// Shorthand constructor.
    pub fn new(offset: usize, len: usize) -> Self {
        FieldSpec { offset, len }
    }

    fn extract<'a>(&self, tuple: &'a [u8]) -> &'a [u8] {
        &tuple[self.offset..self.offset + self.len]
    }
}

/// Declaration of a secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Index name (unique within the table).
    pub name: String,
    /// Which tuple bytes form the key (must be unique per tuple for
    /// point lookups to be meaningful).
    pub key: FieldSpec,
    /// Fields cached in leaf free space; empty = caching disabled.
    pub cached_fields: Vec<FieldSpec>,
    /// Cache tuning (bucket size, log threshold); payload size is
    /// derived from `cached_fields`.
    pub bucket_slots: usize,
    /// Predicate-log threshold before full invalidation.
    pub log_threshold: usize,
}

impl IndexSpec {
    /// A plain (uncached) index on `key`.
    pub fn plain(name: &str, key: FieldSpec) -> Self {
        IndexSpec {
            name: name.to_string(),
            key,
            cached_fields: Vec::new(),
            bucket_slots: 8,
            log_threshold: 64,
        }
    }

    /// A cached index on `key`, caching `fields` (§2.1).
    pub fn cached(name: &str, key: FieldSpec, fields: Vec<FieldSpec>) -> Self {
        IndexSpec {
            name: name.to_string(),
            key,
            cached_fields: fields,
            bucket_slots: 8,
            log_threshold: 64,
        }
    }

    /// Total cached payload width.
    pub fn payload_size(&self) -> usize {
        self.cached_fields.iter().map(|f| f.len).sum()
    }
}

/// Sorts `keys` in place and rejects the batch when any two collide
/// ([`StorageError::DuplicateKeyInBatch`]) — the shared up-front guard
/// of every batched write path.
fn reject_duplicate_keys(keys: &mut [&[u8]]) -> Result<()> {
    keys.sort_unstable();
    if let Some(w) = keys.windows(2).find(|w| w[0] == w[1]) {
        return Err(StorageError::duplicate_key(w[0]));
    }
    Ok(())
}

/// Error for an index→heap chase that came up empty **while the key's
/// write intent was held**: with same-key writers serialized, a pointer
/// the index resolved under the intent must land on a live heap tuple
/// carrying that key. The one way to get here is a writer addressing
/// the same row through a *different* index (uncoordinated by design,
/// see the module docs) — surfaced loudly instead of silently dropping
/// the row, which is what the pre-intent tolerance branches did.
fn intent_violation(index: &str, key: &[u8]) -> StorageError {
    use std::fmt::Write;
    let mut hex = String::with_capacity(key.len() * 2);
    for b in key {
        let _ = write!(hex, "{b:02x}");
    }
    StorageError::Corrupt(format!(
        "index {index} resolved key 0x{hex} to a freed or recycled heap slot while its \
         write intent was held; writers racing on one row must address it through the \
         same index to coordinate"
    ))
}

pub(crate) struct Index {
    pub(crate) spec: IndexSpec,
    pub(crate) tree: BTree,
}

impl Index {
    pub(crate) fn extract_payload(&self, tuple: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.spec.payload_size());
        for f in &self.spec.cached_fields {
            out.extend_from_slice(f.extract(tuple));
        }
        out
    }
}

/// Result of a cache-aware projection query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projection {
    /// The concatenated cached fields.
    pub payload: Vec<u8>,
    /// True when answered from the index cache without touching the heap.
    pub index_only: bool,
}

/// Per-table access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Point queries answered entirely from an index cache.
    pub index_only_answers: u64,
    /// Point queries that had to fetch the heap tuple.
    pub heap_fetches: u64,
    /// Tuples inserted.
    pub inserts: u64,
    /// Tuples updated.
    pub updates: u64,
    /// Tuples deleted.
    pub deletes: u64,
    /// Logical write batches executed. A leaf-grouped multi-op
    /// ([`Table::insert_many`], `update_many`, `delete_many`, or one
    /// write group of a [`crate::query::Batch`]) counts as **one**
    /// batch here while still counting each tuple above, so
    /// `inserts / write_batches` is the visible amortization factor —
    /// a loop of N single-tuple calls shows as N batches of one.
    pub write_batches: u64,
    /// Page loads started by the heap + index pools under this table
    /// (every cold-page fault, however many threads wanted it).
    pub pool_faults: u64,
    /// Requests that parked on another thread's in-flight load instead
    /// of issuing a duplicate read — overlap the fault state machine
    /// recovered for free.
    pub pool_fault_joins: u64,
    /// Dirty evictees flushed to disk by the pools' background
    /// write-behind flushers (writes taken off the eviction path).
    pub pool_wb_flushed: u64,
    /// Evicted-but-unflushed pages queued in the pools' write-behind
    /// stores right now (a gauge).
    pub pool_wb_pending: u64,
    /// Pool faults served by decompressing a page from the compressed
    /// frame tier instead of reading the disk (summed over the heap and
    /// index pools; zero with `DbConfig::compressed_budget_bytes = 0`).
    pub pool_compressed_hits: u64,
    /// Compressed-tier entries evicted to stay within budget.
    pub pool_compressed_evictions: u64,
    /// Requesters that parked on an in-flight decompress fault.
    pub pool_decompress_stalls: u64,
    /// Pages held compressed in the pools' tiers right now (a gauge).
    pub pool_compressed_pages: u64,
    /// Speculative page loads issued by cursor readahead (summed over
    /// the heap and index pools; zero with `DbConfig::readahead = 0`).
    pub pool_prefetch_issued: u64,
    /// Prefetched pages a requester went on to touch — speculation that
    /// paid off.
    pub pool_prefetch_hits: u64,
    /// Prefetched pages evicted untouched — speculation that missed.
    pub pool_prefetch_wasted: u64,
    /// Batched disk reads issued by the pools' batch-fault path (one
    /// per `read_many` call, however many pages it carried).
    pub pool_read_batches: u64,
    /// Pages carried by those batched reads;
    /// `pool_read_pages / pool_read_batches` is the achieved read
    /// coalescing factor.
    pub pool_read_pages: u64,
    /// Writers that found their key's write intent held by a racing
    /// same-key writer and parked on it, summed over this table's
    /// indexes — the contention the intent table absorbs.
    pub intent_parks: u64,
    /// Intent releases that handed the key directly to a parked waiter
    /// (pre-granted continuation), summed over this table's indexes.
    pub intent_handoffs: u64,
}

/// A fixed-width-tuple table with cached secondary indexes.
pub struct Table {
    name: String,
    tuple_width: usize,
    heap: HeapFile,
    indexes: RwLock<HashMap<String, Arc<Index>>>,
    index_pool: Arc<BufferPool>,
    /// Stripe count for each index's key-intent table (0 = the btree
    /// default); applied to indexes created or attached afterwards.
    intent_stripes: usize,
    /// Leaves of cursor readahead per range-scan refill (0 = off).
    readahead: usize,
    index_only_answers: AtomicU64,
    heap_fetches: AtomicU64,
    inserts: AtomicU64,
    updates: AtomicU64,
    deletes: AtomicU64,
    write_batches: AtomicU64,
}

impl Table {
    /// Creates a table of `tuple_width`-byte tuples.
    ///
    /// `heap_pool` backs the data pages, `index_pool` the index pages —
    /// separating them lets experiments give indexes dedicated RAM, the
    /// knob behind Figure 3's `Partition` result.
    pub fn create(
        name: &str,
        tuple_width: usize,
        heap_pool: Arc<BufferPool>,
        index_pool: Arc<BufferPool>,
    ) -> Result<Self> {
        assert!(tuple_width > 0, "tuple width must be positive");
        Ok(Table {
            name: name.to_string(),
            tuple_width,
            heap: HeapFile::create(heap_pool)?,
            indexes: RwLock::with_rank(lockrank::TABLE_INDEXES, HashMap::new()),
            index_pool,
            intent_stripes: 0,
            readahead: 0,
            index_only_answers: AtomicU64::new(0),
            heap_fetches: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            write_batches: AtomicU64::new(0),
        })
    }

    /// Reattaches a persisted table: an existing heap plus indexes
    /// reopened from their catalog entries `(spec, root page)`. No
    /// backfill happens — the trees already contain the entries.
    /// `intent_stripes` sizes each reopened index's key-intent table
    /// (0 = the btree default), matching what
    /// [`Table::set_intent_stripes`] does for fresh tables.
    pub fn attach(
        name: &str,
        tuple_width: usize,
        heap: HeapFile,
        index_pool: Arc<BufferPool>,
        indexes: Vec<(IndexSpec, nbb_storage::PageId)>,
        intent_stripes: usize,
    ) -> Result<Self> {
        assert!(tuple_width > 0, "tuple width must be positive");
        let t = Table {
            name: name.to_string(),
            tuple_width,
            heap,
            indexes: RwLock::with_rank(lockrank::TABLE_INDEXES, HashMap::new()),
            index_pool,
            intent_stripes,
            readahead: 0,
            index_only_answers: AtomicU64::new(0),
            heap_fetches: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            write_batches: AtomicU64::new(0),
        };
        for (spec, root) in indexes {
            t.check_spec(&spec)?;
            let cache = (!spec.cached_fields.is_empty()).then(|| CacheConfig {
                payload_size: spec.payload_size(),
                bucket_slots: spec.bucket_slots,
                log_threshold: spec.log_threshold,
            });
            let tree = BTree::open(
                Arc::clone(&t.index_pool),
                spec.key.len,
                root,
                BTreeOptions { cache, cache_seed: 0x5eed, intent_stripes },
            )?;
            t.indexes.write().insert(spec.name.clone(), Arc::new(Index { spec, tree }));
        }
        Ok(t)
    }

    /// Sets the stripe count for the key-intent table of every index
    /// created after this call (0 = the btree default,
    /// [`nbb_btree::DEFAULT_INTENT_STRIPES`]). [`crate::db::Database`]
    /// threads its `DbConfig::intent_stripes` knob through here before
    /// the table is shared.
    pub fn set_intent_stripes(&mut self, stripes: usize) {
        self.intent_stripes = stripes;
    }

    /// The configured key-intent stripe count (0 = the btree default).
    pub fn intent_stripes(&self) -> usize {
        self.intent_stripes
    }

    /// Sets the cursor readahead depth: how many leaves ahead of a
    /// range cursor each refill speculatively prefetches (0 = off —
    /// scans behave byte-for-byte as before). [`crate::db::Database`]
    /// threads its `DbConfig::readahead` knob through here before the
    /// table is shared.
    pub fn set_readahead(&mut self, leaves: usize) {
        self.readahead = leaves;
    }

    /// The configured cursor readahead depth (0 = off).
    pub fn readahead(&self) -> usize {
        self.readahead
    }

    /// Every index's declaration and current root page — the catalog
    /// entry needed to [`Table::attach`] later.
    pub fn index_specs(&self) -> Vec<(IndexSpec, nbb_storage::PageId)> {
        let mut v: Vec<(IndexSpec, nbb_storage::PageId)> =
            self.indexes.read().values().map(|i| (i.spec.clone(), i.tree.root_page())).collect();
        v.sort_by(|a, b| a.0.name.cmp(&b.0.name));
        v
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fixed tuple width in bytes.
    pub fn tuple_width(&self) -> usize {
        self.tuple_width
    }

    /// The underlying heap.
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// The buffer pool backing this table's indexes. Its shard count
    /// (see [`BufferPool::shards`]) bounds how many index readers can
    /// proceed without contending on a pool stripe.
    pub fn index_pool(&self) -> &Arc<BufferPool> {
        &self.index_pool
    }

    /// Fill factor used when backfilling an index over existing tuples.
    ///
    /// Matches the ~50% fill that incremental mid-point splits converge
    /// to, but applies it uniformly — with N ascending inserts the
    /// rightmost leaf ends nearly full, leaving the newest (usually
    /// hottest) key range with almost no recyclable cache space.
    const BACKFILL_FILL: f64 = 0.5;

    /// Declares an index. Existing tuples are indexed immediately: via a
    /// single-pass [`BTree::bulk_load`] when the extracted keys are
    /// unique, falling back to one-by-one inserts for duplicate keys.
    pub fn create_index(&self, spec: IndexSpec) -> Result<()> {
        self.check_spec(&spec)?;
        let cache = (!spec.cached_fields.is_empty()).then(|| CacheConfig {
            payload_size: spec.payload_size(),
            bucket_slots: spec.bucket_slots,
            log_threshold: spec.log_threshold,
        });
        let opts = BTreeOptions { cache, cache_seed: 0x5eed, intent_stripes: self.intent_stripes };
        let mut pending = Vec::new();
        self.heap.scan(|rid, tuple| {
            pending.push((spec.key.extract(tuple).to_vec(), rid));
            true
        })?;
        pending.sort_by(|a, b| a.0.cmp(&b.0));
        let unique = pending.windows(2).all(|w| w[0].0 < w[1].0);
        let tree = if !pending.is_empty() && unique {
            BTree::bulk_load(
                Arc::clone(&self.index_pool),
                spec.key.len,
                opts,
                pending.into_iter().map(|(k, rid)| (k, rid.to_u64())),
                Self::BACKFILL_FILL,
            )?
        } else {
            let tree = BTree::create(Arc::clone(&self.index_pool), spec.key.len, opts)?;
            for (key, rid) in pending {
                tree.insert(&key, rid.to_u64())?;
            }
            tree
        };
        let name = spec.name.clone();
        self.indexes.write().insert(name, Arc::new(Index { spec, tree }));
        Ok(())
    }

    /// Validates an index declaration against the tuple geometry,
    /// returning [`StorageError::InvalidIndexSpec`] (instead of
    /// panicking or silently mis-slicing later) when a field range is
    /// empty, exceeds `tuple_width`, or a cached field overlaps the key
    /// bytes it would merely duplicate.
    fn check_spec(&self, spec: &IndexSpec) -> Result<()> {
        let err =
            |reason: String| StorageError::InvalidIndexSpec { index: spec.name.clone(), reason };
        let check = |what: &str, f: &FieldSpec| -> Result<()> {
            if f.len == 0 {
                return Err(err(format!("{what} at offset {} is empty", f.offset)));
            }
            if f.offset + f.len > self.tuple_width {
                return Err(err(format!(
                    "{what} bytes {}..{} exceed tuple width {}",
                    f.offset,
                    f.offset + f.len,
                    self.tuple_width
                )));
            }
            Ok(())
        };
        check("key", &spec.key)?;
        for f in &spec.cached_fields {
            check("cached field", f)?;
            let key = &spec.key;
            if f.offset < key.offset + key.len && key.offset < f.offset + f.len {
                return Err(err(format!(
                    "cached field bytes {}..{} overlap the key bytes {}..{} \
                     (key bytes already live in the leaf; caching them wastes slots)",
                    f.offset,
                    f.offset + f.len,
                    key.offset,
                    key.offset + key.len
                )));
            }
        }
        Ok(())
    }

    pub(crate) fn find_index(&self, name: &str) -> Result<Arc<Index>> {
        self.indexes
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::Corrupt(format!("no index named {name}")))
    }

    /// Resolves an index name to a cheap, clonable handle
    /// ([`crate::query::IndexRef`]). The name lookup and its
    /// `RwLock<HashMap>` acquisition happen **once**, here; every
    /// subsequent operation through the handle goes straight to the
    /// tree. Resolve once, query many times:
    ///
    /// ```ignore
    /// let by_id = table.index("by_id")?;
    /// for key in keys {
    ///     by_id.get(key)?;          // no name lookup, no map lock
    /// }
    /// ```
    pub fn index(&self, name: &str) -> Result<crate::query::IndexRef<'_>> {
        Ok(crate::query::IndexRef::new(self, self.find_index(name)?))
    }

    /// Access to an index's tree (stats, fill factors).
    pub fn index_tree(&self, name: &str) -> Result<Arc<IndexHandle>> {
        let idx = self.find_index(name)?;
        Ok(Arc::new(IndexHandle { idx }))
    }

    pub(crate) fn check_tuple(&self, tuple: &[u8]) -> Result<()> {
        if tuple.len() != self.tuple_width {
            return Err(StorageError::Corrupt(format!(
                "tuple width {} != declared {}",
                tuple.len(),
                self.tuple_width
            )));
        }
        Ok(())
    }

    /// Inserts a tuple, maintaining every index. Thin wrapper over a
    /// one-tuple [`Table::insert_many`].
    pub fn insert(&self, tuple: &[u8]) -> Result<RecordId> {
        let mut rids = self.insert_many(std::slice::from_ref(&tuple))?;
        // nbb-lint: allow(unwrap, insert_many returns one rid per input tuple)
        Ok(rids.pop().expect("one tuple in, one rid out"))
    }

    /// Inserts a batch of tuples, returning their heap addresses
    /// indexed like `tuples`, maintaining every index through the
    /// sorted multi-key tree path.
    ///
    /// Validation happens **up front**, before any page is touched:
    /// every tuple must match the declared width, and no two tuples in
    /// the batch may collide on any index's key bytes — within one
    /// batch there is no meaningful "last writer", so collisions are
    /// rejected whole with [`StorageError::DuplicateKeyInBatch`]
    /// instead of silently resolved. After validation the heap appends
    /// ride one page latch per tail page ([`HeapFile::append_many`])
    /// and each index applies its entries via
    /// [`nbb_btree::BTree::insert_many`]: one descent plus one
    /// leaf-latch acquisition per destination leaf instead of per
    /// tuple. The whole call counts as **one** logical write batch in
    /// [`Table::stats`].
    pub fn insert_many<T: AsRef<[u8]>>(&self, tuples: &[T]) -> Result<Vec<RecordId>> {
        for t in tuples {
            self.check_tuple(t.as_ref())?;
        }
        if tuples.is_empty() {
            return Ok(Vec::new());
        }
        if let [t] = tuples {
            // Batch of one (the `insert` wrapper's shape): the direct
            // path, none of the batch bookkeeping allocations — no
            // index snapshot, no key vectors, no (vacuous) dup scan.
            let t = t.as_ref();
            let rid = self.heap.insert(t)?;
            for idx in self.indexes.read().values() {
                idx.tree.insert(idx.spec.key.extract(t), rid.to_u64())?;
            }
            self.inserts.fetch_add(1, Ordering::Relaxed);
            self.write_batches.fetch_add(1, Ordering::Relaxed);
            return Ok(vec![rid]);
        }
        let indexes: Vec<Arc<Index>> = self.indexes.read().values().cloned().collect();
        for idx in &indexes {
            let mut keys: Vec<&[u8]> =
                tuples.iter().map(|t| idx.spec.key.extract(t.as_ref())).collect();
            reject_duplicate_keys(&mut keys)?;
        }
        let rids = self.heap.append_many(tuples)?;
        for idx in &indexes {
            let entries: Vec<(&[u8], u64)> = tuples
                .iter()
                .zip(&rids)
                .map(|(t, rid)| (idx.spec.key.extract(t.as_ref()), rid.to_u64()))
                .collect();
            idx.tree.insert_many(&entries)?;
        }
        self.inserts.fetch_add(tuples.len() as u64, Ordering::Relaxed);
        self.write_batches.fetch_add(1, Ordering::Relaxed);
        Ok(rids)
    }

    /// Fetches the heap tuple behind an index hit, tolerating the
    /// index→heap race window: between resolving the pointer and
    /// reading the slot, a concurrent deleter may free it
    /// (`InvalidSlot`) or a re-insert may recycle it for a different
    /// key. Both read as "gone" — the lookup then reflects the delete
    /// having happened first. The returned tuple is verified to carry
    /// `key`, so callers may cache fields extracted from it.
    ///
    /// This is the **reader-vs-writer** re-verification, and it stays:
    /// readers never take write intents, so they remain wait-free and
    /// pay nothing for the writers' coordination. (The write paths'
    /// equivalent tolerance is gone — they resolve under intents, where
    /// a dead chase is an invariant violation.)
    pub(crate) fn fetch_verified(
        &self,
        idx: &Index,
        key: &[u8],
        ptr: u64,
    ) -> Result<Option<Vec<u8>>> {
        // Count every heap access, not just verified ones — a chase
        // that lands on a recycled or freed slot still did the I/O.
        self.heap_fetches.fetch_add(1, Ordering::Relaxed);
        match self.heap.get(RecordId::from_u64(ptr)) {
            Ok(tuple) if idx.spec.key.extract(&tuple) == key => Ok(Some(tuple)),
            Ok(_) => Ok(None),
            Err(StorageError::InvalidSlot { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Full-tuple point lookup through an index (index → heap).
    ///
    /// Compatibility wrapper: resolves the index name on every call.
    /// Hot paths should resolve once via [`Table::index`] and use
    /// [`crate::query::IndexRef::get`].
    pub fn get_via_index(&self, index: &str, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let idx = self.find_index(index)?;
        self.get_with(&idx, key)
    }

    pub(crate) fn get_with(&self, idx: &Index, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let Some(ptr) = idx.tree.get(key)? else { return Ok(None) };
        self.fetch_verified(idx, key, ptr)
    }

    /// Projection query over the cached fields (§2.1's hot path):
    /// answered from the index cache when possible, otherwise fetches
    /// the heap tuple and populates the cache.
    ///
    /// Compatibility wrapper over [`crate::query::IndexRef::project`];
    /// see [`Table::index`].
    pub fn project_via_index(&self, index: &str, key: &[u8]) -> Result<Option<Projection>> {
        let idx = self.find_index(index)?;
        self.project_with(&idx, key)
    }

    pub(crate) fn project_with(&self, idx: &Index, key: &[u8]) -> Result<Option<Projection>> {
        if idx.spec.cached_fields.is_empty() {
            // No cache: plain index -> heap -> project.
            let Some(tuple) = self.get_with(idx, key)? else { return Ok(None) };
            return Ok(Some(Projection {
                payload: idx.extract_payload(&tuple),
                index_only: false,
            }));
        }
        let m = idx.tree.lookup_cached(key)?;
        let Some(ptr) = m.value else { return Ok(None) };
        if let Some(payload) = m.payload {
            self.index_only_answers.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(Projection { payload, index_only: true }));
        }
        let Some(tuple) = self.fetch_verified(idx, key, ptr)? else { return Ok(None) };
        let payload = idx.extract_payload(&tuple);
        idx.tree.cache_populate(m.leaf, ptr, &payload, m.token)?;
        Ok(Some(Projection { payload, index_only: false }))
    }

    /// Updates the tuple with index key `key` (via `index`) to `tuple`.
    ///
    /// Handles the §2.1.2 consistency duties: indexes whose cached
    /// fields changed get an invalidation predicate; indexes whose key
    /// bytes changed get a delete+insert.
    ///
    /// Compatibility wrapper over [`crate::query::IndexRef::update`];
    /// see [`Table::index`].
    pub fn update_via_index(&self, index: &str, key: &[u8], tuple: &[u8]) -> Result<bool> {
        let idx = self.find_index(index)?;
        self.update_with(&idx, key, tuple)
    }

    /// Single-pair wrapper over [`Table::update_many_with`].
    pub(crate) fn update_with(&self, idx: &Index, key: &[u8], tuple: &[u8]) -> Result<bool> {
        let mut r = self.update_many_with(idx, &[(key, tuple)])?;
        // nbb-lint: allow(unwrap, update_many_with returns one result per pair)
        Ok(r.pop().expect("one pair in, one result out"))
    }

    /// Batched key-based update; see
    /// [`crate::query::IndexRef::update_many`], which this implements.
    ///
    /// Per pair the semantics match the single-key update: absent keys
    /// report `false`, heap tuples update in place (RIDs stay stable),
    /// and every index gets its §2.1.2 consistency duty — an
    /// invalidation predicate when cached fields changed, a
    /// delete+insert when key bytes changed. The batch amortizes: one
    /// [`nbb_btree::BTree::get_many`] resolves all pointers, old
    /// tuples ride one batched heap read, and each index's maintenance
    /// lands as one leaf-grouped `delete_many` + `insert_many`
    /// (deletes before inserts, so key rotations within a batch —
    /// a→b, b→c — resolve deterministically instead of depending on op
    /// order).
    ///
    /// Before resolving anything the batch installs **write intents**
    /// on every key it addresses on this index — the input keys plus
    /// the keys the new tuples carry (a key-changing update writes
    /// both) — so racing same-key writers park and the whole
    /// resolve→heap→maintain sequence is exclusive per key: an update
    /// serialized behind a deleter observes the completed delete and
    /// reports `false`; one serialized ahead of it lands first. No row
    /// is ever silently dropped mid-batch.
    ///
    /// Duplicate keys are rejected whole with
    /// [`StorageError::DuplicateKeyInBatch`] before anything mutates —
    /// both duplicate *input* keys (two updates to the same key in one
    /// batch have no defined order) and two rows updating into the
    /// same **new** key on any index (a loop of singles would silently
    /// leave that index pointing at whichever row ran last; the batch
    /// surfaces the collision instead).
    pub(crate) fn update_many_with<K: AsRef<[u8]>, T: AsRef<[u8]>>(
        &self,
        idx: &Index,
        pairs: &[(K, T)],
    ) -> Result<Vec<bool>> {
        for (_, t) in pairs {
            self.check_tuple(t.as_ref())?;
        }
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        let keys: Vec<&[u8]> = pairs.iter().map(|(k, _)| k.as_ref()).collect();
        {
            let mut sorted = keys.clone();
            reject_duplicate_keys(&mut sorted)?;
        }
        // Key-level write intents, held to the end of the batch: the
        // addressed keys plus the keys the replacement tuples carry on
        // this index (sorted and deduplicated inside `acquire_many`).
        let mut intent_keys = keys.clone();
        intent_keys.extend(pairs.iter().map(|(_, t)| idx.spec.key.extract(t.as_ref())));
        let _intents = idx.tree.intents().acquire_many(&intent_keys);
        let ptrs = idx.tree.get_many(&keys)?;
        let mut positions = Vec::new();
        let mut rids = Vec::new();
        for (i, ptr) in ptrs.iter().enumerate() {
            if let Some(p) = ptr {
                positions.push(i);
                rids.push(RecordId::from_u64(*p));
            }
        }
        let olds = self.heap.get_many(&rids)?;
        // (position, rid, old tuple) per resolved row. Same-key writers
        // are parked on our intents, so every pointer the index just
        // resolved must chase to a live tuple still carrying its key.
        let mut rows: Vec<(usize, RecordId, Vec<u8>)> = Vec::new();
        for ((&i, rid), old) in positions.iter().zip(&rids).zip(olds) {
            match old {
                Some(o) if idx.spec.key.extract(&o) == keys[i] => rows.push((i, *rid, o)),
                _ => return Err(intent_violation(&idx.spec.name, keys[i])),
            }
        }
        let out = self.apply_verified_updates(
            rows,
            |i| pairs[i].1.as_ref(),
            |i| intent_violation(&idx.spec.name, keys[i]),
            pairs.len(),
        )?;
        self.write_batches.fetch_add(1, Ordering::Relaxed);
        Ok(out)
    }

    /// Shared tail of the batched update path (used by
    /// [`Table::update_many_with`] and the update leg of
    /// [`Table::put_many_with`], which resolves and verifies rows
    /// itself to avoid a second descent + heap read).
    ///
    /// `rows` are `(out position, rid, old tuple)` entries resolved and
    /// verified **under the caller's write intents**; `new_of` maps an
    /// out position to its replacement tuple, `violation_of` builds the
    /// intent-violation error for a position. Validates the planned
    /// index effects, applies heap updates, performs grouped per-index
    /// maintenance, and returns which of the `n_out` positions landed.
    ///
    /// With same-key writers parked on the intents, nothing coordinated
    /// can free a resolved slot mid-batch — but an *uncoordinated*
    /// cross-index writer (or `relocate`) still can. That violation is
    /// surfaced as an error, yet only **after** the batch's surviving
    /// rows get their full index maintenance: aborting mid-loop would
    /// strand already-updated heap rows with no invalidation predicates
    /// and stale secondary entries — torn state for rows that were not
    /// even part of the race. The racing row itself needs no
    /// maintenance from us (its destroyer maintained the indexes when
    /// it freed the slot), so finishing the batch leaves the table
    /// consistent and the error purely informational.
    fn apply_verified_updates<'k>(
        &self,
        rows: Vec<(usize, RecordId, Vec<u8>)>,
        new_of: impl Fn(usize) -> &'k [u8],
        violation_of: impl Fn(usize) -> StorageError,
        n_out: usize,
    ) -> Result<Vec<bool>> {
        if rows.is_empty() {
            return Ok(vec![false; n_out]);
        }
        // Validate the batch's index effects BEFORE mutating anything:
        // two rows updating into the same new key — or a changed key
        // landing on a key another row keeps in place — would make the
        // planned insert silently overwrite (or `insert_many` reject
        // mid-batch, stranding an index with neither entry). Kept keys
        // colliding with each other are a pre-existing non-unique-index
        // state, not this batch's doing, and stay legal.
        let indexes: Vec<Arc<Index>> = self.indexes.read().values().cloned().collect();
        for other in &indexes {
            let mut changed: Vec<&[u8]> = Vec::new();
            let mut kept: Vec<&[u8]> = Vec::new();
            for (i, _, old) in &rows {
                let new_key = other.spec.key.extract(new_of(*i));
                if other.spec.key.extract(old) != new_key {
                    changed.push(new_key);
                } else {
                    kept.push(new_key);
                }
            }
            reject_duplicate_keys(&mut changed)?;
            kept.sort_unstable();
            if let Some(k) = changed.iter().find(|k| kept.binary_search(k).is_ok()) {
                return Err(StorageError::duplicate_key(k));
            }
        }
        // Heap writes in place. The pre-intent "racing deleter drops
        // just its row (reported false)" tolerance is gone: a freed
        // slot here is an intent violation and becomes an error — but
        // the batch finishes first (see the method docs), so no
        // heap-updated row is ever left without its index maintenance.
        let mut violation: Option<StorageError> = None;
        let mut landed: Vec<(usize, RecordId, Vec<u8>)> = Vec::with_capacity(rows.len());
        for (i, rid, old) in rows {
            match self.heap.update(rid, new_of(i)) {
                Ok(()) => landed.push((i, rid, old)),
                Err(StorageError::InvalidSlot { .. }) => {
                    violation.get_or_insert_with(|| violation_of(i));
                }
                Err(e) => return Err(e),
            }
        }
        // Index maintenance, grouped per index: deletes before inserts,
        // so key rotations within one batch (a→b, b→c) resolve
        // deterministically.
        for other in &indexes {
            let mut dels: Vec<&[u8]> = Vec::new();
            let mut inss: Vec<(&[u8], u64)> = Vec::new();
            let mut invs: Vec<(&[u8], u64)> = Vec::new();
            for (i, rid, old) in &landed {
                let new_tuple = new_of(*i);
                let old_key = other.spec.key.extract(old);
                let new_key = other.spec.key.extract(new_tuple);
                if old_key != new_key {
                    dels.push(old_key);
                    inss.push((new_key, rid.to_u64()));
                } else if !other.spec.cached_fields.is_empty()
                    && other.extract_payload(old) != other.extract_payload(new_tuple)
                {
                    invs.push((new_key, rid.to_u64()));
                }
            }
            other.tree.delete_many(&dels)?;
            other.tree.insert_many(&inss)?;
            for (k, ptr) in invs {
                other.tree.invalidate(k, ptr)?;
            }
        }
        let mut out = vec![false; n_out];
        for (i, _, _) in &landed {
            out[*i] = true;
        }
        self.updates.fetch_add(landed.len() as u64, Ordering::Relaxed);
        match violation {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Deletes the tuple with index key `key` (via `index`).
    ///
    /// Compatibility wrapper over [`crate::query::IndexRef::delete`];
    /// see [`Table::index`].
    pub fn delete_via_index(&self, index: &str, key: &[u8]) -> Result<bool> {
        let idx = self.find_index(index)?;
        self.delete_with(&idx, key)
    }

    /// Single-key wrapper over [`Table::delete_many_with`].
    pub(crate) fn delete_with(&self, idx: &Index, key: &[u8]) -> Result<bool> {
        let mut r = self.delete_many_with(idx, std::slice::from_ref(&key))?;
        // nbb-lint: allow(unwrap, delete_many_with returns one result per key)
        Ok(r.pop().expect("one key in, one result out"))
    }

    /// Batched key-based delete; see
    /// [`crate::query::IndexRef::delete_many`], which this implements.
    ///
    /// One [`nbb_btree::BTree::get_many`] resolves every pointer, the
    /// doomed tuples ride one batched heap read, and each index drops
    /// its entries through one leaf-grouped
    /// [`nbb_btree::BTree::delete_many`] (plus the RID-reuse
    /// invalidation predicates) before the heap slots are freed —
    /// index first, heap second, the same ordering as the single-key
    /// path.
    ///
    /// Write intents on every addressed key serialize racing same-key
    /// deleters end to end: exactly one wins (`true`) and the rest
    /// observe its completed delete (`false`, via the index reading
    /// absent) — the pre-intent branch that swallowed a loser's
    /// `InvalidSlot` mid-heap-delete is gone. Absent keys report
    /// `false`. Duplicate keys in one batch are idempotent: the first
    /// occurrence deletes the row, later ones report `false`, matching
    /// the equivalent loop.
    pub(crate) fn delete_many_with<K: AsRef<[u8]>>(
        &self,
        idx: &Index,
        keys: &[K],
    ) -> Result<Vec<bool>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        // Write intents on the addressed keys, held until the heap
        // slots are freed (acquire_many dedupes, so a key listed twice
        // parks no one on itself).
        let _intents = idx.tree.intents().acquire_many(keys);
        let ptrs = idx.tree.get_many(keys)?;
        let mut positions = Vec::new();
        let mut rids = Vec::new();
        for (i, ptr) in ptrs.iter().enumerate() {
            if let Some(p) = ptr {
                positions.push(i);
                rids.push(RecordId::from_u64(*p));
            }
        }
        let tuples = self.heap.get_many(&rids)?;
        // (position, rid, tuple) per doomed row. Under the intents a
        // resolved pointer must chase to a live tuple with its key;
        // dedupe rids so a key listed twice deletes once.
        let mut victims: Vec<(usize, RecordId, Vec<u8>)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for ((&i, rid), tuple) in positions.iter().zip(&rids).zip(tuples) {
            match tuple {
                Some(t) if idx.spec.key.extract(&t) == keys[i].as_ref() => {
                    if seen.insert(rid.to_u64()) {
                        victims.push((i, *rid, t));
                    }
                }
                _ => return Err(intent_violation(&idx.spec.name, keys[i].as_ref())),
            }
        }
        let indexes: Vec<Arc<Index>> = self.indexes.read().values().cloned().collect();
        for other in &indexes {
            let del_keys: Vec<&[u8]> =
                victims.iter().map(|(_, _, t)| other.spec.key.extract(t)).collect();
            other.tree.delete_many(&del_keys)?;
            // Drop any cached entry for these pointers (RID reuse
            // safety).
            for (_, rid, t) in &victims {
                other.tree.invalidate(other.spec.key.extract(t), rid.to_u64())?;
            }
        }
        let mut out = vec![false; keys.len()];
        let mut deleted = 0u64;
        // A slot an *uncoordinated* cross-index writer freed first is
        // an intent violation, surfaced as an error — but only after
        // every other victim's heap delete runs: aborting mid-loop
        // would strand rows whose index entries were already dropped
        // above as unreachable live heap tuples. The racing row itself
        // ends consistent either way (its destroyer freed the slot, we
        // dropped the index entries — the row is simply gone).
        let mut violation: Option<StorageError> = None;
        for (i, rid, _) in &victims {
            match self.heap.delete(*rid) {
                Ok(()) => {
                    out[*i] = true;
                    deleted += 1;
                }
                Err(StorageError::InvalidSlot { .. }) => {
                    violation
                        .get_or_insert_with(|| intent_violation(&idx.spec.name, keys[*i].as_ref()));
                }
                Err(e) => return Err(e),
            }
        }
        self.deletes.fetch_add(deleted, Ordering::Relaxed);
        self.write_batches.fetch_add(1, Ordering::Relaxed);
        match violation {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Batched upsert through one index; see
    /// [`crate::query::IndexRef::put_many`], which this implements.
    ///
    /// Each tuple's key (as declared by `idx`) decides its fate: keys
    /// already present update their row in place (keeping its RID,
    /// with full index maintenance), absent keys insert fresh rows.
    /// Write intents on every key make the whole decision-and-apply
    /// sequence exclusive per key, so the legs cannot be invalidated
    /// mid-flight — a put serialized behind a racing same-key deleter
    /// observes the completed delete and inserts fresh; the pre-intent
    /// "update leg lost, fall back to insert" retry is gone. Every
    /// tuple lands; returns each tuple's landing address, indexed like
    /// `tuples`. Duplicate keys surface
    /// [`StorageError::DuplicateKeyInBatch`] before anything mutates —
    /// on this index's keys, and across both legs on every index's
    /// keys the batch will write (two fresh tuples, two key-changing
    /// updates, or one of each landing on the same secondary key, as
    /// well as any of those landing on a key an update keeps in
    /// place). Decomposes into (up to) one update batch and one insert
    /// batch in [`Table::stats`].
    pub(crate) fn put_many_with<T: AsRef<[u8]>>(
        &self,
        idx: &Index,
        tuples: &[T],
    ) -> Result<Vec<RecordId>> {
        for t in tuples {
            self.check_tuple(t.as_ref())?;
        }
        if tuples.is_empty() {
            return Ok(Vec::new());
        }
        {
            let mut keys: Vec<&[u8]> =
                tuples.iter().map(|t| idx.spec.key.extract(t.as_ref())).collect();
            reject_duplicate_keys(&mut keys)?;
        }
        let keys: Vec<&[u8]> = tuples.iter().map(|t| idx.spec.key.extract(t.as_ref())).collect();
        // Write intents on every upserted key (a put's addressed key is
        // the key its tuple carries, so this is the full write set on
        // this index), held until both legs land.
        let _intents = idx.tree.intents().acquire_many(&keys);
        let ptrs = idx.tree.get_many(&keys)?;
        let mut update_rids: Vec<(usize, RecordId)> = Vec::new();
        let mut insert_positions: Vec<usize> = Vec::new();
        let mut inserts: Vec<&[u8]> = Vec::new();
        for (i, ptr) in ptrs.iter().enumerate() {
            match ptr {
                Some(p) => update_rids.push((i, RecordId::from_u64(*p))),
                None => {
                    insert_positions.push(i);
                    inserts.push(tuples[i].as_ref());
                }
            }
        }
        // Pre-validate the batch's combined index effects — across BOTH
        // legs — before anything mutates: any key this batch will write
        // (an insert-leg key, or an update-leg key that changes) must
        // collide with no other written key and with no key an update
        // keeps in place, on every index. Without the cross-leg check a
        // fresh tuple and an updated row landing on the same secondary
        // key would silently overwrite one another's entries. This
        // needs the update rows' old tuples, read (and verified under
        // the intents) here; the verified rows then feed the update leg
        // directly, so the leg costs one descent and one heap read, not
        // two of each.
        let rids: Vec<RecordId> = update_rids.iter().map(|(_, rid)| *rid).collect();
        let olds = self.heap.get_many(&rids)?;
        let mut update_rows: Vec<(usize, RecordId, Vec<u8>)> = Vec::new();
        for (&(i, rid), old) in update_rids.iter().zip(olds) {
            match old {
                Some(o) if idx.spec.key.extract(&o) == keys[i] => {
                    update_rows.push((i, rid, o));
                }
                _ => return Err(intent_violation(&idx.spec.name, keys[i])),
            }
        }
        let indexes: Vec<Arc<Index>> = self.indexes.read().values().cloned().collect();
        for other in &indexes {
            let mut written: Vec<&[u8]> =
                inserts.iter().map(|t| other.spec.key.extract(t)).collect();
            let mut kept: Vec<&[u8]> = Vec::new();
            for (i, _, old) in &update_rows {
                let new_key = other.spec.key.extract(tuples[*i].as_ref());
                if other.spec.key.extract(old) == new_key {
                    kept.push(new_key);
                } else {
                    written.push(new_key);
                }
            }
            reject_duplicate_keys(&mut written)?;
            kept.sort_unstable();
            if let Some(k) = written.iter().find(|k| kept.binary_search(k).is_ok()) {
                return Err(StorageError::duplicate_key(k));
            }
        }
        let mut out = vec![RecordId::from_u64(0); tuples.len()];
        // Apply the update leg on the rows verified above; under the
        // intents every row lands (no fallback leg exists anymore).
        let upd_rids: Vec<(usize, RecordId)> =
            update_rows.iter().map(|(i, rid, _)| (*i, *rid)).collect();
        self.apply_verified_updates(
            update_rows,
            |i| tuples[i].as_ref(),
            |i| intent_violation(&idx.spec.name, keys[i]),
            tuples.len(),
        )?;
        if !upd_rids.is_empty() {
            self.write_batches.fetch_add(1, Ordering::Relaxed);
        }
        for (i, rid) in upd_rids {
            out[i] = rid;
        }
        let new_rids = self.insert_many(&inserts)?;
        for (&i, rid) in insert_positions.iter().zip(new_rids) {
            out[i] = rid;
        }
        Ok(out)
    }

    /// Batched full-tuple lookup; see
    /// [`crate::query::IndexRef::get_many`], which this implements.
    pub(crate) fn get_many_with<K: AsRef<[u8]>>(
        &self,
        idx: &Index,
        keys: &[K],
    ) -> Result<Vec<Option<Vec<u8>>>> {
        let ptrs = idx.tree.get_many(keys)?;
        let mut positions = Vec::new();
        let mut rids = Vec::new();
        for (i, ptr) in ptrs.iter().enumerate() {
            if let Some(p) = ptr {
                positions.push(i);
                rids.push(RecordId::from_u64(*p));
            }
        }
        self.heap_fetches.fetch_add(rids.len() as u64, Ordering::Relaxed);
        let tuples = self.heap.get_many(&rids)?;
        let mut out: Vec<Option<Vec<u8>>> = keys.iter().map(|_| None).collect();
        for (&i, tuple) in positions.iter().zip(tuples) {
            // Same re-verification as the point path: a racing
            // delete/re-insert reads as absent.
            if let Some(t) = tuple {
                if idx.spec.key.extract(&t) == keys[i].as_ref() {
                    out[i] = Some(t);
                }
            }
        }
        Ok(out)
    }

    /// Batched projection; see
    /// [`crate::query::IndexRef::project_many`], which this implements.
    pub(crate) fn project_many_with<K: AsRef<[u8]>>(
        &self,
        idx: &Index,
        keys: &[K],
    ) -> Result<Vec<Option<Projection>>> {
        if idx.spec.cached_fields.is_empty() {
            return Ok(self
                .get_many_with(idx, keys)?
                .into_iter()
                .map(|t| {
                    t.map(|tuple| Projection {
                        payload: idx.extract_payload(&tuple),
                        index_only: false,
                    })
                })
                .collect());
        }
        let lookups = idx.tree.lookup_cached_many(keys)?;
        let mut out: Vec<Option<Projection>> = keys.iter().map(|_| None).collect();
        // (position, ptr, leaf, token) per cache miss that needs a heap
        // chase; all the chases share one batched heap read.
        let mut misses = Vec::new();
        let mut rids = Vec::new();
        let mut served = 0u64;
        for (i, m) in lookups.into_iter().enumerate() {
            let Some(ptr) = m.value else { continue };
            match m.payload {
                Some(payload) => {
                    served += 1;
                    out[i] = Some(Projection { payload, index_only: true });
                }
                None => {
                    misses.push((i, ptr, m.leaf, m.token));
                    rids.push(RecordId::from_u64(ptr));
                }
            }
        }
        self.index_only_answers.fetch_add(served, Ordering::Relaxed);
        self.heap_fetches.fetch_add(rids.len() as u64, Ordering::Relaxed);
        let tuples = self.heap.get_many(&rids)?;
        for ((i, ptr, leaf, token), tuple) in misses.into_iter().zip(tuples) {
            let Some(t) = tuple else { continue };
            if idx.spec.key.extract(&t) != keys[i].as_ref() {
                continue;
            }
            let payload = idx.extract_payload(&t);
            idx.tree.cache_populate(leaf, ptr, &payload, token)?;
            out[i] = Some(Projection { payload, index_only: false });
        }
        Ok(out)
    }

    /// Relocates the tuple at `rid` to the heap tail (the §3.1
    /// clustering primitive), patching every index.
    pub fn relocate(&self, rid: RecordId) -> Result<RecordId> {
        let tuple = self.heap.get(rid)?;
        let new_rid = self.heap.relocate(rid)?;
        for idx in self.indexes.read().values() {
            let k = idx.spec.key.extract(&tuple);
            idx.tree.update_value(k, new_rid.to_u64())?;
        }
        Ok(new_rid)
    }

    /// Visits every live tuple. The callback returns `true` to keep
    /// walking; returning `false` stops the scan without touching the
    /// remaining heap pages (e.g. sampling scans stop after N rows
    /// instead of paying for the whole table).
    pub fn scan(&self, f: impl FnMut(RecordId, &[u8]) -> bool) -> Result<()> {
        self.heap.scan(f)
    }

    /// Records a query answered entirely from an index cache (used by
    /// the range cursors, whose hits bypass `project_with`).
    pub(crate) fn note_index_only_answer(&self) {
        self.index_only_answers.fetch_add(1, Ordering::Relaxed);
    }

    /// Access counters. The `pool_*` fields aggregate the heap and
    /// index buffer pools beneath this table, so overlapped-fault and
    /// write-behind behaviour stays metered next to the logical
    /// counters it amortizes. Note a pool may be shared across tables;
    /// these meter the pools, not this table exclusively.
    pub fn stats(&self) -> TableStats {
        let heap_pool = self.heap.pool().stats();
        let index_pool = self.index_pool.stats();
        let (mut intent_parks, mut intent_handoffs) = (0u64, 0u64);
        for idx in self.indexes.read().values() {
            let w = idx.tree.write_stats();
            intent_parks += w.intent_parks;
            intent_handoffs += w.intent_handoffs;
        }
        TableStats {
            index_only_answers: self.index_only_answers.load(Ordering::Relaxed),
            heap_fetches: self.heap_fetches.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            write_batches: self.write_batches.load(Ordering::Relaxed),
            pool_faults: heap_pool.faults + index_pool.faults,
            pool_fault_joins: heap_pool.fault_joins + index_pool.fault_joins,
            pool_wb_flushed: heap_pool.wb_flushed + index_pool.wb_flushed,
            pool_wb_pending: heap_pool.wb_pending + index_pool.wb_pending,
            pool_compressed_hits: heap_pool.compressed_hits + index_pool.compressed_hits,
            pool_compressed_evictions: heap_pool.compressed_evictions
                + index_pool.compressed_evictions,
            pool_decompress_stalls: heap_pool.decompress_stalls + index_pool.decompress_stalls,
            pool_compressed_pages: heap_pool.compressed_pages + index_pool.compressed_pages,
            pool_prefetch_issued: heap_pool.prefetch_issued + index_pool.prefetch_issued,
            pool_prefetch_hits: heap_pool.prefetch_hits + index_pool.prefetch_hits,
            pool_prefetch_wasted: heap_pool.prefetch_wasted + index_pool.prefetch_wasted,
            pool_read_batches: heap_pool.read_batches + index_pool.read_batches,
            pool_read_pages: heap_pool.read_pages + index_pool.read_pages,
            intent_parks,
            intent_handoffs,
        }
    }
}

/// Borrow-friendly handle exposing an index's tree.
pub struct IndexHandle {
    idx: Arc<Index>,
}

impl IndexHandle {
    /// The underlying B+Tree.
    pub fn tree(&self) -> &BTree {
        &self.idx.tree
    }

    /// The index declaration.
    pub fn spec(&self) -> &IndexSpec {
        &self.idx.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbb_storage::{DiskManager, InMemoryDisk};

    fn pools() -> (Arc<BufferPool>, Arc<BufferPool>) {
        let d1: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let d2: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        (Arc::new(BufferPool::new(d1, 128)), Arc::new(BufferPool::new(d2, 128)))
    }

    /// 32-byte tuple: id(8) | group(8) | value(8) | blob(8)
    fn tuple(id: u64, group: u64, value: u64) -> Vec<u8> {
        let mut t = Vec::with_capacity(32);
        t.extend_from_slice(&id.to_be_bytes());
        t.extend_from_slice(&group.to_be_bytes());
        t.extend_from_slice(&value.to_le_bytes());
        t.extend_from_slice(&[0xAB; 8]);
        t
    }

    fn table_with_cached_index() -> Table {
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        t.create_index(IndexSpec::cached(
            "by_id",
            FieldSpec::new(0, 8),
            vec![FieldSpec::new(16, 8)], // cache `value`
        ))
        .unwrap();
        t
    }

    #[test]
    fn insert_and_lookup() {
        let t = table_with_cached_index();
        t.insert(&tuple(1, 10, 100)).unwrap();
        t.insert(&tuple(2, 20, 200)).unwrap();
        let got = t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap();
        assert_eq!(got, tuple(1, 10, 100));
        assert!(t.get_via_index("by_id", &3u64.to_be_bytes()).unwrap().is_none());
    }

    #[test]
    fn projection_becomes_index_only_on_second_access() {
        let t = table_with_cached_index();
        t.insert(&tuple(1, 10, 100)).unwrap();
        let p1 = t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap();
        assert!(!p1.index_only, "first access must fetch the heap");
        assert_eq!(p1.payload, 100u64.to_le_bytes());
        let p2 = t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap();
        assert!(p2.index_only, "second access must be answered by the cache");
        assert_eq!(p2.payload, 100u64.to_le_bytes());
        let s = t.stats();
        assert_eq!(s.heap_fetches, 1);
        assert_eq!(s.index_only_answers, 1);
    }

    #[test]
    fn update_invalidates_cached_projection() {
        let t = table_with_cached_index();
        t.insert(&tuple(1, 10, 100)).unwrap();
        // warm the cache
        t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap();
        t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap();
        // update the cached field
        assert!(t.update_via_index("by_id", &1u64.to_be_bytes(), &tuple(1, 10, 999)).unwrap());
        let p = t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap();
        assert_eq!(p.payload, 999u64.to_le_bytes(), "must never serve the stale 100");
    }

    #[test]
    fn update_of_uncached_field_keeps_cache_warm() {
        let t = table_with_cached_index();
        t.insert(&tuple(1, 10, 100)).unwrap();
        t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap();
        assert!(t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap().index_only);
        // group (uncached) changes; value stays.
        t.update_via_index("by_id", &1u64.to_be_bytes(), &tuple(1, 77, 100)).unwrap();
        let p = t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap();
        assert!(p.index_only, "unrelated updates must not invalidate the cache");
        assert_eq!(p.payload, 100u64.to_le_bytes());
    }

    #[test]
    fn delete_then_rid_reuse_never_serves_stale_cache() {
        let t = table_with_cached_index();
        t.insert(&tuple(1, 10, 100)).unwrap();
        t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap();
        t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap();
        assert!(t.delete_via_index("by_id", &1u64.to_be_bytes()).unwrap());
        assert!(t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().is_none());
        // New tuple reuses the heap slot (same rid) with a new id.
        t.insert(&tuple(2, 20, 222)).unwrap();
        let p = t.project_via_index("by_id", &2u64.to_be_bytes()).unwrap().unwrap();
        assert_eq!(p.payload, 222u64.to_le_bytes());
        assert!(t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().is_none());
    }

    #[test]
    fn multiple_indexes_stay_consistent() {
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        t.create_index(IndexSpec::cached(
            "by_id",
            FieldSpec::new(0, 8),
            vec![FieldSpec::new(16, 8)],
        ))
        .unwrap();
        t.create_index(IndexSpec::plain("by_group", FieldSpec::new(8, 8))).unwrap();
        t.insert(&tuple(1, 10, 100)).unwrap();
        assert_eq!(
            t.get_via_index("by_group", &10u64.to_be_bytes()).unwrap().unwrap(),
            tuple(1, 10, 100)
        );
        // Key change on the group index via an update through by_id.
        t.update_via_index("by_id", &1u64.to_be_bytes(), &tuple(1, 33, 100)).unwrap();
        assert!(t.get_via_index("by_group", &10u64.to_be_bytes()).unwrap().is_none());
        assert_eq!(
            t.get_via_index("by_group", &33u64.to_be_bytes()).unwrap().unwrap(),
            tuple(1, 33, 100)
        );
    }

    #[test]
    fn backfill_indexes_existing_tuples() {
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        for i in 0..200u64 {
            t.insert(&tuple(i, i % 5, i * 2)).unwrap();
        }
        t.create_index(IndexSpec::plain("late", FieldSpec::new(0, 8))).unwrap();
        for i in (0..200u64).step_by(17) {
            assert_eq!(
                t.get_via_index("late", &i.to_be_bytes()).unwrap().unwrap(),
                tuple(i, i % 5, i * 2)
            );
        }
    }

    #[test]
    fn relocate_patches_indexes() {
        let t = table_with_cached_index();
        let rid = t.insert(&tuple(1, 10, 100)).unwrap();
        // Enough tuples that the heap spans several pages and the tail
        // is a different page from `rid`'s.
        for i in 2..400u64 {
            t.insert(&tuple(i, 0, 0)).unwrap();
        }
        let new_rid = t.relocate(rid).unwrap();
        assert_ne!(rid, new_rid);
        assert_eq!(
            t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap(),
            tuple(1, 10, 100)
        );
    }

    #[test]
    fn bad_specs_rejected() {
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        assert!(t.create_index(IndexSpec::plain("oob", FieldSpec::new(30, 8))).is_err());
        assert!(t.insert(&[0u8; 10]).is_err());
        assert!(t.get_via_index("nope", &[0u8; 8]).is_err());
    }

    #[test]
    fn insert_many_round_trips_and_counts_one_batch() {
        let t = table_with_cached_index();
        let tuples: Vec<Vec<u8>> = (0..500u64).map(|i| tuple(i, i % 7, i * 3)).collect();
        let rids = t.insert_many(&tuples).unwrap();
        assert_eq!(rids.len(), 500);
        for i in (0..500u64).step_by(41) {
            assert_eq!(
                t.get_via_index("by_id", &i.to_be_bytes()).unwrap().unwrap(),
                tuple(i, i % 7, i * 3)
            );
        }
        let s = t.stats();
        assert_eq!(s.inserts, 500, "every tuple counted");
        assert_eq!(s.write_batches, 1, "one logical batch, not 500");
    }

    #[test]
    fn insert_many_duplicate_key_rejected_before_any_mutation() {
        let t = table_with_cached_index();
        let batch = vec![tuple(1, 0, 10), tuple(2, 0, 20), tuple(1, 0, 99)];
        let err = t.insert_many(&batch).unwrap_err();
        assert!(
            matches!(err, StorageError::DuplicateKeyInBatch { .. }),
            "want the named duplicate error, got {err:?}"
        );
        // Nothing was applied: no heap rows, no index entries, no stats.
        assert_eq!(t.heap().live_tuple_count().unwrap(), 0);
        assert!(t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().is_none());
        assert_eq!(t.stats().inserts, 0);
        assert_eq!(t.stats().write_batches, 0);
    }

    #[test]
    fn update_many_applies_all_and_reports_absentees() {
        let t = table_with_cached_index();
        t.insert_many(&(0..50u64).map(|i| tuple(i, 0, i)).collect::<Vec<_>>()).unwrap();
        let idx = t.find_index("by_id").unwrap();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> =
            (40..60u64).map(|i| (i.to_be_bytes().to_vec(), tuple(i, 1, i + 1000))).collect();
        let applied = t.update_many_with(&idx, &pairs).unwrap();
        for (j, i) in (40..60u64).enumerate() {
            assert_eq!(applied[j], i < 50, "key {i}");
        }
        assert_eq!(
            t.get_via_index("by_id", &43u64.to_be_bytes()).unwrap().unwrap(),
            tuple(43, 1, 1043)
        );
        assert!(t.get_via_index("by_id", &55u64.to_be_bytes()).unwrap().is_none());
        assert_eq!(t.stats().updates, 10);
        // 1 insert batch + 1 update batch.
        assert_eq!(t.stats().write_batches, 2);
    }

    #[test]
    fn update_many_key_rotation_is_deterministic() {
        // a→b while b→c in ONE batch: per-index deletes apply before
        // inserts, so both rows survive under their new keys — a loop
        // of single updates would order-dependently lose one.
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        t.create_index(IndexSpec::plain("by_id", FieldSpec::new(0, 8))).unwrap();
        t.insert(&tuple(1, 0, 100)).unwrap();
        t.insert(&tuple(2, 0, 200)).unwrap();
        let idx = t.find_index("by_id").unwrap();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (1u64.to_be_bytes().to_vec(), tuple(2, 0, 100)), // 1 → 2
            (2u64.to_be_bytes().to_vec(), tuple(3, 0, 200)), // 2 → 3
        ];
        assert_eq!(t.update_many_with(&idx, &pairs).unwrap(), vec![true, true]);
        assert!(t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().is_none());
        assert_eq!(
            t.get_via_index("by_id", &2u64.to_be_bytes()).unwrap().unwrap(),
            tuple(2, 0, 100)
        );
        assert_eq!(
            t.get_via_index("by_id", &3u64.to_be_bytes()).unwrap().unwrap(),
            tuple(3, 0, 200)
        );
    }

    #[test]
    fn update_many_duplicate_key_rejected() {
        let t = table_with_cached_index();
        t.insert(&tuple(1, 0, 100)).unwrap();
        let idx = t.find_index("by_id").unwrap();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (1u64.to_be_bytes().to_vec(), tuple(1, 0, 111)),
            (1u64.to_be_bytes().to_vec(), tuple(1, 0, 222)),
        ];
        assert!(matches!(
            t.update_many_with(&idx, &pairs),
            Err(StorageError::DuplicateKeyInBatch { .. })
        ));
        assert_eq!(
            t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap(),
            tuple(1, 0, 100),
            "rejected batch must not touch the row"
        );
    }

    #[test]
    fn update_many_new_key_collision_rejected_before_mutation() {
        // Distinct input keys whose NEW tuples collide on a secondary
        // index's key: must fail whole with the named error before any
        // heap or index mutation (mid-batch failure would strand the
        // secondary index with neither the old nor the new entries).
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        t.create_index(IndexSpec::plain("by_id", FieldSpec::new(0, 8))).unwrap();
        t.create_index(IndexSpec::plain("by_group", FieldSpec::new(8, 8))).unwrap();
        t.insert(&tuple(1, 10, 100)).unwrap();
        t.insert(&tuple(2, 20, 200)).unwrap();
        let idx = t.find_index("by_id").unwrap();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (1u64.to_be_bytes().to_vec(), tuple(1, 30, 100)), // group 10 → 30
            (2u64.to_be_bytes().to_vec(), tuple(2, 30, 200)), // group 20 → 30: collision
        ];
        let err = t.update_many_with(&idx, &pairs).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKeyInBatch { .. }), "got {err:?}");
        // Nothing moved: heap rows and both index views are intact.
        assert_eq!(
            t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap(),
            tuple(1, 10, 100)
        );
        assert_eq!(
            t.get_via_index("by_id", &2u64.to_be_bytes()).unwrap().unwrap(),
            tuple(2, 20, 200)
        );
        assert!(t.get_via_index("by_group", &10u64.to_be_bytes()).unwrap().is_some());
        assert!(t.get_via_index("by_group", &20u64.to_be_bytes()).unwrap().is_some());
        assert!(t.get_via_index("by_group", &30u64.to_be_bytes()).unwrap().is_none());
        assert_eq!(t.stats().updates, 0);
    }

    #[test]
    fn update_many_changed_key_colliding_with_kept_key_rejected() {
        // Row 1 moves its id to 2 while row 2 keeps id 2 in the same
        // batch: the planned insert would silently overwrite row 2's
        // entry, so the batch must be rejected whole.
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        t.create_index(IndexSpec::plain("by_id", FieldSpec::new(0, 8))).unwrap();
        t.insert(&tuple(1, 10, 100)).unwrap();
        t.insert(&tuple(2, 20, 200)).unwrap();
        let idx = t.find_index("by_id").unwrap();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (1u64.to_be_bytes().to_vec(), tuple(2, 10, 100)), // id 1 → 2
            (2u64.to_be_bytes().to_vec(), tuple(2, 99, 200)), // id stays 2
        ];
        let err = t.update_many_with(&idx, &pairs).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKeyInBatch { .. }), "got {err:?}");
        assert_eq!(
            t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap(),
            tuple(1, 10, 100)
        );
        assert_eq!(
            t.get_via_index("by_id", &2u64.to_be_bytes()).unwrap().unwrap(),
            tuple(2, 20, 200)
        );
        // Kept keys sharing a secondary value stay legal: updating two
        // rows that already share a group must not be flagged.
        t.create_index(IndexSpec::plain("by_group", FieldSpec::new(8, 8))).unwrap();
        t.update_via_index("by_id", &1u64.to_be_bytes(), &tuple(1, 7, 1)).unwrap();
        t.update_via_index("by_id", &2u64.to_be_bytes(), &tuple(2, 7, 2)).unwrap();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (1u64.to_be_bytes().to_vec(), tuple(1, 7, 11)),
            (2u64.to_be_bytes().to_vec(), tuple(2, 7, 22)),
        ];
        assert_eq!(t.update_many_with(&idx, &pairs).unwrap(), vec![true, true]);
    }

    #[test]
    fn put_many_fresh_secondary_collision_rejected_before_updates() {
        // Two FRESH tuples colliding on a secondary index must fail the
        // whole put batch before its update leg mutates anything.
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        t.create_index(IndexSpec::plain("by_id", FieldSpec::new(0, 8))).unwrap();
        t.create_index(IndexSpec::plain("by_group", FieldSpec::new(8, 8))).unwrap();
        t.insert(&tuple(1, 10, 100)).unwrap();
        let idx = t.find_index("by_id").unwrap();
        let batch = vec![
            tuple(1, 10, 999), // update leg
            tuple(50, 77, 0),  // fresh, group 77
            tuple(51, 77, 0),  // fresh, group 77: collision
        ];
        let err = t.put_many_with(&idx, &batch).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKeyInBatch { .. }), "got {err:?}");
        assert_eq!(
            t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap(),
            tuple(1, 10, 100),
            "update leg must not have run"
        );
        assert_eq!(t.heap().live_tuple_count().unwrap(), 1);
    }

    #[test]
    fn put_many_cross_leg_secondary_collision_rejected() {
        // An updated row and a fresh tuple landing on the same
        // secondary key (one per leg) must fail the whole batch before
        // anything mutates — the legs would otherwise silently
        // overwrite each other's index entry.
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        t.create_index(IndexSpec::plain("by_id", FieldSpec::new(0, 8))).unwrap();
        t.create_index(IndexSpec::plain("by_group", FieldSpec::new(8, 8))).unwrap();
        t.insert(&tuple(1, 10, 100)).unwrap();
        let idx = t.find_index("by_id").unwrap();
        let batch = vec![
            tuple(1, 77, 0), // update leg: group 10 → 77
            tuple(2, 77, 0), // insert leg: group 77 — cross-leg collision
        ];
        let err = t.put_many_with(&idx, &batch).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKeyInBatch { .. }), "got {err:?}");
        assert_eq!(
            t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap(),
            tuple(1, 10, 100)
        );
        assert!(t.get_via_index("by_group", &10u64.to_be_bytes()).unwrap().is_some());
        assert!(t.get_via_index("by_group", &77u64.to_be_bytes()).unwrap().is_none());
        assert_eq!(t.heap().live_tuple_count().unwrap(), 1);
        // A kept-key + fresh-tuple collision is also the batch's doing
        // and must be rejected: fresh group 10 vs row 1 keeping 10.
        let batch = vec![tuple(1, 10, 5), tuple(3, 10, 0)];
        assert!(matches!(
            t.put_many_with(&idx, &batch),
            Err(StorageError::DuplicateKeyInBatch { .. })
        ));
        // Disjoint legs still work.
        let batch = vec![tuple(1, 11, 5), tuple(3, 12, 0)];
        let rids = t.put_many_with(&idx, &batch).unwrap();
        assert_eq!(rids.len(), 2);
        assert_eq!(
            t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap(),
            tuple(1, 11, 5)
        );
        assert_eq!(
            t.get_via_index("by_id", &3u64.to_be_bytes()).unwrap().unwrap(),
            tuple(3, 12, 0)
        );
    }

    #[test]
    fn delete_many_handles_absent_and_duplicate_keys() {
        let t = table_with_cached_index();
        t.insert_many(&(0..20u64).map(|i| tuple(i, 0, i)).collect::<Vec<_>>()).unwrap();
        let idx = t.find_index("by_id").unwrap();
        let keys: Vec<Vec<u8>> = vec![
            3u64.to_be_bytes().to_vec(),
            99u64.to_be_bytes().to_vec(), // absent
            7u64.to_be_bytes().to_vec(),
            3u64.to_be_bytes().to_vec(), // duplicate: idempotent
        ];
        let gone = t.delete_many_with(&idx, &keys).unwrap();
        assert_eq!(gone, vec![true, false, true, false]);
        assert!(t.get_via_index("by_id", &3u64.to_be_bytes()).unwrap().is_none());
        assert!(t.get_via_index("by_id", &7u64.to_be_bytes()).unwrap().is_none());
        assert_eq!(t.heap().live_tuple_count().unwrap(), 18);
        assert_eq!(t.stats().deletes, 2);
    }

    #[test]
    fn delete_many_maintains_secondary_indexes() {
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        t.create_index(IndexSpec::plain("by_id", FieldSpec::new(0, 8))).unwrap();
        t.create_index(IndexSpec::plain("by_group", FieldSpec::new(8, 8))).unwrap();
        t.insert_many(&(0..10u64).map(|i| tuple(i, 100 + i, 0)).collect::<Vec<_>>()).unwrap();
        let idx = t.find_index("by_id").unwrap();
        let keys: Vec<Vec<u8>> = (0..5u64).map(|i| i.to_be_bytes().to_vec()).collect();
        assert!(t.delete_many_with(&idx, &keys).unwrap().iter().all(|&b| b));
        for i in 0..10u64 {
            let via_group = t.get_via_index("by_group", &(100 + i).to_be_bytes()).unwrap();
            assert_eq!(via_group.is_some(), i >= 5, "group key {}", 100 + i);
        }
    }

    #[test]
    fn put_many_upserts_by_index_key() {
        let t = table_with_cached_index();
        t.insert_many(&(0..10u64).map(|i| tuple(i, 0, i)).collect::<Vec<_>>()).unwrap();
        let idx = t.find_index("by_id").unwrap();
        // 5..15: half updates in place, half fresh inserts.
        let tuples: Vec<Vec<u8>> = (5..15u64).map(|i| tuple(i, 9, i + 500)).collect();
        let rids = t.put_many_with(&idx, &tuples).unwrap();
        assert_eq!(rids.len(), 10);
        for i in 0..15u64 {
            let got = t.get_via_index("by_id", &i.to_be_bytes()).unwrap().unwrap();
            let want = if i < 5 { tuple(i, 0, i) } else { tuple(i, 9, i + 500) };
            assert_eq!(got, want, "key {i}");
        }
        assert_eq!(t.heap().live_tuple_count().unwrap(), 15, "updates must not re-insert");
        assert_eq!(t.stats().inserts, 15);
        assert_eq!(t.stats().updates, 5);
    }

    #[test]
    fn uncoordinated_slot_destruction_surfaces_intent_violation() {
        // Simulate the documented uncoordinated case: something frees a
        // heap slot without maintaining the indexes (here: a raw heap
        // delete standing in for a cross-index writer). A write that
        // resolves that key under its intent must surface the named
        // violation — and must do so before mutating anything, so the
        // batch's other rows are untouched rather than half-applied.
        let t = table_with_cached_index();
        let rid = t.insert(&tuple(1, 0, 100)).unwrap();
        t.insert(&tuple(2, 0, 200)).unwrap();
        t.heap().delete(rid).unwrap(); // bypasses index maintenance
        let idx = t.find_index("by_id").unwrap();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (1u64.to_be_bytes().to_vec(), tuple(1, 0, 111)),
            (2u64.to_be_bytes().to_vec(), tuple(2, 0, 222)),
        ];
        let err = t.update_many_with(&idx, &pairs).unwrap_err();
        assert!(
            matches!(&err, StorageError::Corrupt(msg) if msg.contains("write intent")),
            "want the named intent violation, got {err:?}"
        );
        assert_eq!(
            t.get_via_index("by_id", &2u64.to_be_bytes()).unwrap().unwrap(),
            tuple(2, 0, 200),
            "the violation must surface before any other row mutates"
        );
        // Same shape through delete_many; readers still tolerate the
        // dangling entry (key 1 simply reads as absent).
        let keys: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.clone()).collect();
        let err = t.delete_many_with(&idx, &keys).unwrap_err();
        assert!(matches!(&err, StorageError::Corrupt(msg) if msg.contains("write intent")));
        assert!(t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().is_none());
    }

    #[test]
    fn stress_mixed_workload_against_model() {
        use std::collections::HashMap;
        let t = table_with_cached_index();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut x = 42u64;
        for step in 0..8000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let id = x % 300;
            match x % 7 {
                0 => {
                    if model.contains_key(&id) {
                        let v = x % 10_000;
                        t.update_via_index("by_id", &id.to_be_bytes(), &tuple(id, 0, v)).unwrap();
                        model.insert(id, v);
                    }
                }
                1 => {
                    let existed = t.delete_via_index("by_id", &id.to_be_bytes()).unwrap();
                    assert_eq!(existed, model.remove(&id).is_some(), "step {step}");
                }
                2 => {
                    model.entry(id).or_insert_with(|| {
                        let v = x % 10_000;
                        t.insert(&tuple(id, 0, v)).unwrap();
                        v
                    });
                }
                _ => {
                    let got = t.project_via_index("by_id", &id.to_be_bytes()).unwrap();
                    match (got, model.get(&id)) {
                        (Some(p), Some(v)) => {
                            assert_eq!(p.payload, v.to_le_bytes(), "step {step} id {id}")
                        }
                        (None, None) => {}
                        (g, m) => panic!("step {step} id {id}: {g:?} vs {m:?}"),
                    }
                }
            }
        }
        let s = t.stats();
        assert!(s.index_only_answers > 0, "cache must contribute: {s:?}");
    }
}
