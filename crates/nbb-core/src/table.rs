//! Tables: fixed-width tuples on a heap, with cached secondary indexes.
//!
//! A [`Table`] composes the substrates into the paper's system: a heap
//! file for tuples, any number of B+Tree indexes whose leaf free space
//! caches hot tuples' projected fields (§2.1), and the bookkeeping that
//! keeps caches consistent under updates (§2.1.2).
//!
//! Field geometry is declared, not parsed: a [`FieldSpec`] names a byte
//! range of the fixed-width tuple; an [`IndexSpec`] says which range is
//! the key and which ranges ride in the index cache. The paper's
//! `name_title` example: key = (namespace, title), cached payload =
//! 4 projected fields, 25-byte cache items. Declarations are validated
//! at [`Table::create_index`]; geometry can also be derived from a
//! typed schema via [`crate::row::RowSchema`].
//!
//! Queries flow through handles: [`Table::index`] resolves an index
//! name once to a [`crate::query::IndexRef`], whose point, batched
//! (`get_many` / `project_many` / [`Table::execute`]) and range-cursor
//! operations skip the per-call name lookup and amortize lock work.
//! The string-keyed `*_via_index` methods remain as thin compatibility
//! wrappers over the same paths.

use nbb_btree::{BTree, BTreeOptions, CacheConfig};
use nbb_storage::error::{Result, StorageError};
use nbb_storage::heap::HeapFile;
use nbb_storage::rid::RecordId;
use nbb_storage::BufferPool;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A byte range within the fixed-width tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// Byte offset within the tuple.
    pub offset: usize,
    /// Field width in bytes.
    pub len: usize,
}

impl FieldSpec {
    /// Shorthand constructor.
    pub fn new(offset: usize, len: usize) -> Self {
        FieldSpec { offset, len }
    }

    fn extract<'a>(&self, tuple: &'a [u8]) -> &'a [u8] {
        &tuple[self.offset..self.offset + self.len]
    }
}

/// Declaration of a secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Index name (unique within the table).
    pub name: String,
    /// Which tuple bytes form the key (must be unique per tuple for
    /// point lookups to be meaningful).
    pub key: FieldSpec,
    /// Fields cached in leaf free space; empty = caching disabled.
    pub cached_fields: Vec<FieldSpec>,
    /// Cache tuning (bucket size, log threshold); payload size is
    /// derived from `cached_fields`.
    pub bucket_slots: usize,
    /// Predicate-log threshold before full invalidation.
    pub log_threshold: usize,
}

impl IndexSpec {
    /// A plain (uncached) index on `key`.
    pub fn plain(name: &str, key: FieldSpec) -> Self {
        IndexSpec {
            name: name.to_string(),
            key,
            cached_fields: Vec::new(),
            bucket_slots: 8,
            log_threshold: 64,
        }
    }

    /// A cached index on `key`, caching `fields` (§2.1).
    pub fn cached(name: &str, key: FieldSpec, fields: Vec<FieldSpec>) -> Self {
        IndexSpec {
            name: name.to_string(),
            key,
            cached_fields: fields,
            bucket_slots: 8,
            log_threshold: 64,
        }
    }

    /// Total cached payload width.
    pub fn payload_size(&self) -> usize {
        self.cached_fields.iter().map(|f| f.len).sum()
    }
}

pub(crate) struct Index {
    pub(crate) spec: IndexSpec,
    pub(crate) tree: BTree,
}

impl Index {
    pub(crate) fn extract_payload(&self, tuple: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.spec.payload_size());
        for f in &self.spec.cached_fields {
            out.extend_from_slice(f.extract(tuple));
        }
        out
    }
}

/// Result of a cache-aware projection query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projection {
    /// The concatenated cached fields.
    pub payload: Vec<u8>,
    /// True when answered from the index cache without touching the heap.
    pub index_only: bool,
}

/// Per-table access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Point queries answered entirely from an index cache.
    pub index_only_answers: u64,
    /// Point queries that had to fetch the heap tuple.
    pub heap_fetches: u64,
    /// Tuples inserted.
    pub inserts: u64,
    /// Tuples updated.
    pub updates: u64,
    /// Tuples deleted.
    pub deletes: u64,
}

/// A fixed-width-tuple table with cached secondary indexes.
pub struct Table {
    name: String,
    tuple_width: usize,
    heap: HeapFile,
    indexes: RwLock<HashMap<String, Arc<Index>>>,
    index_pool: Arc<BufferPool>,
    index_only_answers: AtomicU64,
    heap_fetches: AtomicU64,
    inserts: AtomicU64,
    updates: AtomicU64,
    deletes: AtomicU64,
}

impl Table {
    /// Creates a table of `tuple_width`-byte tuples.
    ///
    /// `heap_pool` backs the data pages, `index_pool` the index pages —
    /// separating them lets experiments give indexes dedicated RAM, the
    /// knob behind Figure 3's `Partition` result.
    pub fn create(
        name: &str,
        tuple_width: usize,
        heap_pool: Arc<BufferPool>,
        index_pool: Arc<BufferPool>,
    ) -> Result<Self> {
        assert!(tuple_width > 0, "tuple width must be positive");
        Ok(Table {
            name: name.to_string(),
            tuple_width,
            heap: HeapFile::create(heap_pool)?,
            indexes: RwLock::new(HashMap::new()),
            index_pool,
            index_only_answers: AtomicU64::new(0),
            heap_fetches: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
        })
    }

    /// Reattaches a persisted table: an existing heap plus indexes
    /// reopened from their catalog entries `(spec, root page)`. No
    /// backfill happens — the trees already contain the entries.
    pub fn attach(
        name: &str,
        tuple_width: usize,
        heap: HeapFile,
        index_pool: Arc<BufferPool>,
        indexes: Vec<(IndexSpec, nbb_storage::PageId)>,
    ) -> Result<Self> {
        assert!(tuple_width > 0, "tuple width must be positive");
        let t = Table {
            name: name.to_string(),
            tuple_width,
            heap,
            indexes: RwLock::new(HashMap::new()),
            index_pool,
            index_only_answers: AtomicU64::new(0),
            heap_fetches: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
        };
        for (spec, root) in indexes {
            t.check_spec(&spec)?;
            let cache = (!spec.cached_fields.is_empty()).then(|| CacheConfig {
                payload_size: spec.payload_size(),
                bucket_slots: spec.bucket_slots,
                log_threshold: spec.log_threshold,
            });
            let tree = BTree::open(
                Arc::clone(&t.index_pool),
                spec.key.len,
                root,
                BTreeOptions { cache, cache_seed: 0x5eed },
            )?;
            t.indexes.write().insert(spec.name.clone(), Arc::new(Index { spec, tree }));
        }
        Ok(t)
    }

    /// Every index's declaration and current root page — the catalog
    /// entry needed to [`Table::attach`] later.
    pub fn index_specs(&self) -> Vec<(IndexSpec, nbb_storage::PageId)> {
        let mut v: Vec<(IndexSpec, nbb_storage::PageId)> =
            self.indexes.read().values().map(|i| (i.spec.clone(), i.tree.root_page())).collect();
        v.sort_by(|a, b| a.0.name.cmp(&b.0.name));
        v
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fixed tuple width in bytes.
    pub fn tuple_width(&self) -> usize {
        self.tuple_width
    }

    /// The underlying heap.
    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// The buffer pool backing this table's indexes. Its shard count
    /// (see [`BufferPool::shards`]) bounds how many index readers can
    /// proceed without contending on a pool stripe.
    pub fn index_pool(&self) -> &Arc<BufferPool> {
        &self.index_pool
    }

    /// Fill factor used when backfilling an index over existing tuples.
    ///
    /// Matches the ~50% fill that incremental mid-point splits converge
    /// to, but applies it uniformly — with N ascending inserts the
    /// rightmost leaf ends nearly full, leaving the newest (usually
    /// hottest) key range with almost no recyclable cache space.
    const BACKFILL_FILL: f64 = 0.5;

    /// Declares an index. Existing tuples are indexed immediately: via a
    /// single-pass [`BTree::bulk_load`] when the extracted keys are
    /// unique, falling back to one-by-one inserts for duplicate keys.
    pub fn create_index(&self, spec: IndexSpec) -> Result<()> {
        self.check_spec(&spec)?;
        let cache = (!spec.cached_fields.is_empty()).then(|| CacheConfig {
            payload_size: spec.payload_size(),
            bucket_slots: spec.bucket_slots,
            log_threshold: spec.log_threshold,
        });
        let opts = BTreeOptions { cache, cache_seed: 0x5eed };
        let mut pending = Vec::new();
        self.heap.scan(|rid, tuple| {
            pending.push((spec.key.extract(tuple).to_vec(), rid));
            true
        })?;
        pending.sort_by(|a, b| a.0.cmp(&b.0));
        let unique = pending.windows(2).all(|w| w[0].0 < w[1].0);
        let tree = if !pending.is_empty() && unique {
            BTree::bulk_load(
                Arc::clone(&self.index_pool),
                spec.key.len,
                opts,
                pending.into_iter().map(|(k, rid)| (k, rid.to_u64())),
                Self::BACKFILL_FILL,
            )?
        } else {
            let tree = BTree::create(Arc::clone(&self.index_pool), spec.key.len, opts)?;
            for (key, rid) in pending {
                tree.insert(&key, rid.to_u64())?;
            }
            tree
        };
        let name = spec.name.clone();
        self.indexes.write().insert(name, Arc::new(Index { spec, tree }));
        Ok(())
    }

    /// Validates an index declaration against the tuple geometry,
    /// returning [`StorageError::InvalidIndexSpec`] (instead of
    /// panicking or silently mis-slicing later) when a field range is
    /// empty, exceeds `tuple_width`, or a cached field overlaps the key
    /// bytes it would merely duplicate.
    fn check_spec(&self, spec: &IndexSpec) -> Result<()> {
        let err =
            |reason: String| StorageError::InvalidIndexSpec { index: spec.name.clone(), reason };
        let check = |what: &str, f: &FieldSpec| -> Result<()> {
            if f.len == 0 {
                return Err(err(format!("{what} at offset {} is empty", f.offset)));
            }
            if f.offset + f.len > self.tuple_width {
                return Err(err(format!(
                    "{what} bytes {}..{} exceed tuple width {}",
                    f.offset,
                    f.offset + f.len,
                    self.tuple_width
                )));
            }
            Ok(())
        };
        check("key", &spec.key)?;
        for f in &spec.cached_fields {
            check("cached field", f)?;
            let key = &spec.key;
            if f.offset < key.offset + key.len && key.offset < f.offset + f.len {
                return Err(err(format!(
                    "cached field bytes {}..{} overlap the key bytes {}..{} \
                     (key bytes already live in the leaf; caching them wastes slots)",
                    f.offset,
                    f.offset + f.len,
                    key.offset,
                    key.offset + key.len
                )));
            }
        }
        Ok(())
    }

    pub(crate) fn find_index(&self, name: &str) -> Result<Arc<Index>> {
        self.indexes
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::Corrupt(format!("no index named {name}")))
    }

    /// Resolves an index name to a cheap, clonable handle
    /// ([`crate::query::IndexRef`]). The name lookup and its
    /// `RwLock<HashMap>` acquisition happen **once**, here; every
    /// subsequent operation through the handle goes straight to the
    /// tree. Resolve once, query many times:
    ///
    /// ```ignore
    /// let by_id = table.index("by_id")?;
    /// for key in keys {
    ///     by_id.get(key)?;          // no name lookup, no map lock
    /// }
    /// ```
    pub fn index(&self, name: &str) -> Result<crate::query::IndexRef<'_>> {
        Ok(crate::query::IndexRef::new(self, self.find_index(name)?))
    }

    /// Access to an index's tree (stats, fill factors).
    pub fn index_tree(&self, name: &str) -> Result<Arc<IndexHandle>> {
        let idx = self.find_index(name)?;
        Ok(Arc::new(IndexHandle { idx }))
    }

    fn check_tuple(&self, tuple: &[u8]) -> Result<()> {
        if tuple.len() != self.tuple_width {
            return Err(StorageError::Corrupt(format!(
                "tuple width {} != declared {}",
                tuple.len(),
                self.tuple_width
            )));
        }
        Ok(())
    }

    /// Inserts a tuple, maintaining every index.
    pub fn insert(&self, tuple: &[u8]) -> Result<RecordId> {
        self.check_tuple(tuple)?;
        let rid = self.heap.insert(tuple)?;
        for idx in self.indexes.read().values() {
            idx.tree.insert(idx.spec.key.extract(tuple), rid.to_u64())?;
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        Ok(rid)
    }

    /// Fetches the heap tuple behind an index hit, tolerating the
    /// index→heap race window: between resolving the pointer and
    /// reading the slot, a concurrent deleter may free it
    /// (`InvalidSlot`) or a re-insert may recycle it for a different
    /// key. Both read as "gone" — the lookup then reflects the delete
    /// having happened first. The returned tuple is verified to carry
    /// `key`, so callers may cache fields extracted from it.
    pub(crate) fn fetch_verified(
        &self,
        idx: &Index,
        key: &[u8],
        ptr: u64,
    ) -> Result<Option<Vec<u8>>> {
        // Count every heap access, not just verified ones — a chase
        // that lands on a recycled or freed slot still did the I/O.
        self.heap_fetches.fetch_add(1, Ordering::Relaxed);
        match self.heap.get(RecordId::from_u64(ptr)) {
            Ok(tuple) if idx.spec.key.extract(&tuple) == key => Ok(Some(tuple)),
            Ok(_) => Ok(None),
            Err(StorageError::InvalidSlot { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Full-tuple point lookup through an index (index → heap).
    ///
    /// Compatibility wrapper: resolves the index name on every call.
    /// Hot paths should resolve once via [`Table::index`] and use
    /// [`crate::query::IndexRef::get`].
    pub fn get_via_index(&self, index: &str, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let idx = self.find_index(index)?;
        self.get_with(&idx, key)
    }

    pub(crate) fn get_with(&self, idx: &Index, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let Some(ptr) = idx.tree.get(key)? else { return Ok(None) };
        self.fetch_verified(idx, key, ptr)
    }

    /// Projection query over the cached fields (§2.1's hot path):
    /// answered from the index cache when possible, otherwise fetches
    /// the heap tuple and populates the cache.
    ///
    /// Compatibility wrapper over [`crate::query::IndexRef::project`];
    /// see [`Table::index`].
    pub fn project_via_index(&self, index: &str, key: &[u8]) -> Result<Option<Projection>> {
        let idx = self.find_index(index)?;
        self.project_with(&idx, key)
    }

    pub(crate) fn project_with(&self, idx: &Index, key: &[u8]) -> Result<Option<Projection>> {
        if idx.spec.cached_fields.is_empty() {
            // No cache: plain index -> heap -> project.
            let Some(tuple) = self.get_with(idx, key)? else { return Ok(None) };
            return Ok(Some(Projection {
                payload: idx.extract_payload(&tuple),
                index_only: false,
            }));
        }
        let m = idx.tree.lookup_cached(key)?;
        let Some(ptr) = m.value else { return Ok(None) };
        if let Some(payload) = m.payload {
            self.index_only_answers.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(Projection { payload, index_only: true }));
        }
        let Some(tuple) = self.fetch_verified(idx, key, ptr)? else { return Ok(None) };
        let payload = idx.extract_payload(&tuple);
        idx.tree.cache_populate(m.leaf, ptr, &payload, m.token)?;
        Ok(Some(Projection { payload, index_only: false }))
    }

    /// Updates the tuple with index key `key` (via `index`) to `tuple`.
    ///
    /// Handles the §2.1.2 consistency duties: indexes whose cached
    /// fields changed get an invalidation predicate; indexes whose key
    /// bytes changed get a delete+insert.
    ///
    /// Compatibility wrapper over [`crate::query::IndexRef::update`];
    /// see [`Table::index`].
    pub fn update_via_index(&self, index: &str, key: &[u8], tuple: &[u8]) -> Result<bool> {
        let idx = self.find_index(index)?;
        self.update_with(&idx, key, tuple)
    }

    pub(crate) fn update_with(&self, idx: &Index, key: &[u8], tuple: &[u8]) -> Result<bool> {
        self.check_tuple(tuple)?;
        let Some(ptr) = idx.tree.get(key)? else { return Ok(false) };
        let rid = RecordId::from_u64(ptr);
        let old = self.heap.get(rid)?;
        self.heap.update(rid, tuple)?;
        for other in self.indexes.read().values() {
            let old_key = other.spec.key.extract(&old);
            let new_key = other.spec.key.extract(tuple);
            if old_key != new_key {
                other.tree.delete(old_key)?;
                other.tree.insert(new_key, ptr)?;
                continue;
            }
            if !other.spec.cached_fields.is_empty()
                && other.extract_payload(&old) != other.extract_payload(tuple)
            {
                other.tree.invalidate(new_key, ptr)?;
            }
        }
        self.updates.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Deletes the tuple with index key `key` (via `index`).
    ///
    /// Compatibility wrapper over [`crate::query::IndexRef::delete`];
    /// see [`Table::index`].
    pub fn delete_via_index(&self, index: &str, key: &[u8]) -> Result<bool> {
        let idx = self.find_index(index)?;
        self.delete_with(&idx, key)
    }

    pub(crate) fn delete_with(&self, idx: &Index, key: &[u8]) -> Result<bool> {
        let Some(ptr) = idx.tree.get(key)? else { return Ok(false) };
        let rid = RecordId::from_u64(ptr);
        let tuple = self.heap.get(rid)?;
        for other in self.indexes.read().values() {
            let k = other.spec.key.extract(&tuple);
            other.tree.delete(k)?;
            // Drop any cached entry for this pointer (RID reuse safety).
            other.tree.invalidate(k, ptr)?;
        }
        self.heap.delete(rid)?;
        self.deletes.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Batched full-tuple lookup; see
    /// [`crate::query::IndexRef::get_many`], which this implements.
    pub(crate) fn get_many_with<K: AsRef<[u8]>>(
        &self,
        idx: &Index,
        keys: &[K],
    ) -> Result<Vec<Option<Vec<u8>>>> {
        let ptrs = idx.tree.get_many(keys)?;
        let mut positions = Vec::new();
        let mut rids = Vec::new();
        for (i, ptr) in ptrs.iter().enumerate() {
            if let Some(p) = ptr {
                positions.push(i);
                rids.push(RecordId::from_u64(*p));
            }
        }
        self.heap_fetches.fetch_add(rids.len() as u64, Ordering::Relaxed);
        let tuples = self.heap.get_many(&rids)?;
        let mut out: Vec<Option<Vec<u8>>> = keys.iter().map(|_| None).collect();
        for (&i, tuple) in positions.iter().zip(tuples) {
            // Same re-verification as the point path: a racing
            // delete/re-insert reads as absent.
            if let Some(t) = tuple {
                if idx.spec.key.extract(&t) == keys[i].as_ref() {
                    out[i] = Some(t);
                }
            }
        }
        Ok(out)
    }

    /// Batched projection; see
    /// [`crate::query::IndexRef::project_many`], which this implements.
    pub(crate) fn project_many_with<K: AsRef<[u8]>>(
        &self,
        idx: &Index,
        keys: &[K],
    ) -> Result<Vec<Option<Projection>>> {
        if idx.spec.cached_fields.is_empty() {
            return Ok(self
                .get_many_with(idx, keys)?
                .into_iter()
                .map(|t| {
                    t.map(|tuple| Projection {
                        payload: idx.extract_payload(&tuple),
                        index_only: false,
                    })
                })
                .collect());
        }
        let lookups = idx.tree.lookup_cached_many(keys)?;
        let mut out: Vec<Option<Projection>> = keys.iter().map(|_| None).collect();
        // (position, ptr, leaf, token) per cache miss that needs a heap
        // chase; all the chases share one batched heap read.
        let mut misses = Vec::new();
        let mut rids = Vec::new();
        let mut served = 0u64;
        for (i, m) in lookups.into_iter().enumerate() {
            let Some(ptr) = m.value else { continue };
            match m.payload {
                Some(payload) => {
                    served += 1;
                    out[i] = Some(Projection { payload, index_only: true });
                }
                None => {
                    misses.push((i, ptr, m.leaf, m.token));
                    rids.push(RecordId::from_u64(ptr));
                }
            }
        }
        self.index_only_answers.fetch_add(served, Ordering::Relaxed);
        self.heap_fetches.fetch_add(rids.len() as u64, Ordering::Relaxed);
        let tuples = self.heap.get_many(&rids)?;
        for ((i, ptr, leaf, token), tuple) in misses.into_iter().zip(tuples) {
            let Some(t) = tuple else { continue };
            if idx.spec.key.extract(&t) != keys[i].as_ref() {
                continue;
            }
            let payload = idx.extract_payload(&t);
            idx.tree.cache_populate(leaf, ptr, &payload, token)?;
            out[i] = Some(Projection { payload, index_only: false });
        }
        Ok(out)
    }

    /// Relocates the tuple at `rid` to the heap tail (the §3.1
    /// clustering primitive), patching every index.
    pub fn relocate(&self, rid: RecordId) -> Result<RecordId> {
        let tuple = self.heap.get(rid)?;
        let new_rid = self.heap.relocate(rid)?;
        for idx in self.indexes.read().values() {
            let k = idx.spec.key.extract(&tuple);
            idx.tree.update_value(k, new_rid.to_u64())?;
        }
        Ok(new_rid)
    }

    /// Visits every live tuple. The callback returns `true` to keep
    /// walking; returning `false` stops the scan without touching the
    /// remaining heap pages (e.g. sampling scans stop after N rows
    /// instead of paying for the whole table).
    pub fn scan(&self, f: impl FnMut(RecordId, &[u8]) -> bool) -> Result<()> {
        self.heap.scan(f)
    }

    /// Records a query answered entirely from an index cache (used by
    /// the range cursors, whose hits bypass `project_with`).
    pub(crate) fn note_index_only_answer(&self) {
        self.index_only_answers.fetch_add(1, Ordering::Relaxed);
    }

    /// Access counters.
    pub fn stats(&self) -> TableStats {
        TableStats {
            index_only_answers: self.index_only_answers.load(Ordering::Relaxed),
            heap_fetches: self.heap_fetches.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
        }
    }
}

/// Borrow-friendly handle exposing an index's tree.
pub struct IndexHandle {
    idx: Arc<Index>,
}

impl IndexHandle {
    /// The underlying B+Tree.
    pub fn tree(&self) -> &BTree {
        &self.idx.tree
    }

    /// The index declaration.
    pub fn spec(&self) -> &IndexSpec {
        &self.idx.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbb_storage::{DiskManager, InMemoryDisk};

    fn pools() -> (Arc<BufferPool>, Arc<BufferPool>) {
        let d1: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        let d2: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(4096));
        (Arc::new(BufferPool::new(d1, 128)), Arc::new(BufferPool::new(d2, 128)))
    }

    /// 32-byte tuple: id(8) | group(8) | value(8) | blob(8)
    fn tuple(id: u64, group: u64, value: u64) -> Vec<u8> {
        let mut t = Vec::with_capacity(32);
        t.extend_from_slice(&id.to_be_bytes());
        t.extend_from_slice(&group.to_be_bytes());
        t.extend_from_slice(&value.to_le_bytes());
        t.extend_from_slice(&[0xAB; 8]);
        t
    }

    fn table_with_cached_index() -> Table {
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        t.create_index(IndexSpec::cached(
            "by_id",
            FieldSpec::new(0, 8),
            vec![FieldSpec::new(16, 8)], // cache `value`
        ))
        .unwrap();
        t
    }

    #[test]
    fn insert_and_lookup() {
        let t = table_with_cached_index();
        t.insert(&tuple(1, 10, 100)).unwrap();
        t.insert(&tuple(2, 20, 200)).unwrap();
        let got = t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap();
        assert_eq!(got, tuple(1, 10, 100));
        assert!(t.get_via_index("by_id", &3u64.to_be_bytes()).unwrap().is_none());
    }

    #[test]
    fn projection_becomes_index_only_on_second_access() {
        let t = table_with_cached_index();
        t.insert(&tuple(1, 10, 100)).unwrap();
        let p1 = t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap();
        assert!(!p1.index_only, "first access must fetch the heap");
        assert_eq!(p1.payload, 100u64.to_le_bytes());
        let p2 = t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap();
        assert!(p2.index_only, "second access must be answered by the cache");
        assert_eq!(p2.payload, 100u64.to_le_bytes());
        let s = t.stats();
        assert_eq!(s.heap_fetches, 1);
        assert_eq!(s.index_only_answers, 1);
    }

    #[test]
    fn update_invalidates_cached_projection() {
        let t = table_with_cached_index();
        t.insert(&tuple(1, 10, 100)).unwrap();
        // warm the cache
        t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap();
        t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap();
        // update the cached field
        assert!(t.update_via_index("by_id", &1u64.to_be_bytes(), &tuple(1, 10, 999)).unwrap());
        let p = t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap();
        assert_eq!(p.payload, 999u64.to_le_bytes(), "must never serve the stale 100");
    }

    #[test]
    fn update_of_uncached_field_keeps_cache_warm() {
        let t = table_with_cached_index();
        t.insert(&tuple(1, 10, 100)).unwrap();
        t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap();
        assert!(t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap().index_only);
        // group (uncached) changes; value stays.
        t.update_via_index("by_id", &1u64.to_be_bytes(), &tuple(1, 77, 100)).unwrap();
        let p = t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap();
        assert!(p.index_only, "unrelated updates must not invalidate the cache");
        assert_eq!(p.payload, 100u64.to_le_bytes());
    }

    #[test]
    fn delete_then_rid_reuse_never_serves_stale_cache() {
        let t = table_with_cached_index();
        t.insert(&tuple(1, 10, 100)).unwrap();
        t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap();
        t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap();
        assert!(t.delete_via_index("by_id", &1u64.to_be_bytes()).unwrap());
        assert!(t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().is_none());
        // New tuple reuses the heap slot (same rid) with a new id.
        t.insert(&tuple(2, 20, 222)).unwrap();
        let p = t.project_via_index("by_id", &2u64.to_be_bytes()).unwrap().unwrap();
        assert_eq!(p.payload, 222u64.to_le_bytes());
        assert!(t.project_via_index("by_id", &1u64.to_be_bytes()).unwrap().is_none());
    }

    #[test]
    fn multiple_indexes_stay_consistent() {
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        t.create_index(IndexSpec::cached(
            "by_id",
            FieldSpec::new(0, 8),
            vec![FieldSpec::new(16, 8)],
        ))
        .unwrap();
        t.create_index(IndexSpec::plain("by_group", FieldSpec::new(8, 8))).unwrap();
        t.insert(&tuple(1, 10, 100)).unwrap();
        assert_eq!(
            t.get_via_index("by_group", &10u64.to_be_bytes()).unwrap().unwrap(),
            tuple(1, 10, 100)
        );
        // Key change on the group index via an update through by_id.
        t.update_via_index("by_id", &1u64.to_be_bytes(), &tuple(1, 33, 100)).unwrap();
        assert!(t.get_via_index("by_group", &10u64.to_be_bytes()).unwrap().is_none());
        assert_eq!(
            t.get_via_index("by_group", &33u64.to_be_bytes()).unwrap().unwrap(),
            tuple(1, 33, 100)
        );
    }

    #[test]
    fn backfill_indexes_existing_tuples() {
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        for i in 0..200u64 {
            t.insert(&tuple(i, i % 5, i * 2)).unwrap();
        }
        t.create_index(IndexSpec::plain("late", FieldSpec::new(0, 8))).unwrap();
        for i in (0..200u64).step_by(17) {
            assert_eq!(
                t.get_via_index("late", &i.to_be_bytes()).unwrap().unwrap(),
                tuple(i, i % 5, i * 2)
            );
        }
    }

    #[test]
    fn relocate_patches_indexes() {
        let t = table_with_cached_index();
        let rid = t.insert(&tuple(1, 10, 100)).unwrap();
        // Enough tuples that the heap spans several pages and the tail
        // is a different page from `rid`'s.
        for i in 2..400u64 {
            t.insert(&tuple(i, 0, 0)).unwrap();
        }
        let new_rid = t.relocate(rid).unwrap();
        assert_ne!(rid, new_rid);
        assert_eq!(
            t.get_via_index("by_id", &1u64.to_be_bytes()).unwrap().unwrap(),
            tuple(1, 10, 100)
        );
    }

    #[test]
    fn bad_specs_rejected() {
        let (hp, ip) = pools();
        let t = Table::create("t", 32, hp, ip).unwrap();
        assert!(t.create_index(IndexSpec::plain("oob", FieldSpec::new(30, 8))).is_err());
        assert!(t.insert(&[0u8; 10]).is_err());
        assert!(t.get_via_index("nope", &[0u8; 8]).is_err());
    }

    #[test]
    fn stress_mixed_workload_against_model() {
        use std::collections::HashMap;
        let t = table_with_cached_index();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut x = 42u64;
        for step in 0..8000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let id = x % 300;
            match x % 7 {
                0 => {
                    if model.contains_key(&id) {
                        let v = x % 10_000;
                        t.update_via_index("by_id", &id.to_be_bytes(), &tuple(id, 0, v)).unwrap();
                        model.insert(id, v);
                    }
                }
                1 => {
                    let existed = t.delete_via_index("by_id", &id.to_be_bytes()).unwrap();
                    assert_eq!(existed, model.remove(&id).is_some(), "step {step}");
                }
                2 => {
                    model.entry(id).or_insert_with(|| {
                        let v = x % 10_000;
                        t.insert(&tuple(id, 0, v)).unwrap();
                        v
                    });
                }
                _ => {
                    let got = t.project_via_index("by_id", &id.to_be_bytes()).unwrap();
                    match (got, model.get(&id)) {
                        (Some(p), Some(v)) => {
                            assert_eq!(p.payload, v.to_le_bytes(), "step {step} id {id}")
                        }
                        (None, None) => {}
                        (g, m) => panic!("step {step} id {id}: {g:?} vs {m:?}"),
                    }
                }
            }
        }
        let s = t.stats();
        assert!(s.index_only_answers > 0, "cache must contribute: {s:?}");
    }
}
