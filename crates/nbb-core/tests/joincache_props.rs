//! Model check for the §2.2 join cache: under arbitrary op sequences,
//! lookups only ever return the most recently inserted payload for that
//! (page, fk), and per-page budgets are never exceeded.

use nbb_core::joincache::JoinCache;
use nbb_storage::PageId;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn join_cache_matches_model(
        ops in prop::collection::vec((0u8..5, 0u64..4, 0u64..20, 0usize..40), 1..300)
    ) {
        let mut jc = JoinCache::new();
        // Model: only what we *know* must hold — a hit's payload equals
        // the last insert for that key; evicted keys simply miss.
        let mut last_insert: HashMap<(u64, u64), Vec<u8>> = HashMap::new();
        let mut budgets: HashMap<u64, usize> = HashMap::new();
        for (op, page, fk, len) in ops {
            let pid = PageId(page);
            match op {
                0 => {
                    let budget = len * 4;
                    jc.set_budget(pid, budget);
                    budgets.insert(page, budget);
                }
                1 => {
                    let payload = vec![(fk as u8).wrapping_add(len as u8); len];
                    if jc.insert(pid, fk, &payload) {
                        last_insert.insert((page, fk), payload);
                    } else {
                        // Rejected: oversized for the budget.
                        prop_assert!(8 + len > budgets.get(&page).copied().unwrap_or(0));
                    }
                }
                2 => {
                    if let Some(got) = jc.lookup(pid, fk) {
                        let expect = last_insert.get(&(page, fk));
                        prop_assert_eq!(Some(&got), expect,
                            "hit returned bytes that were never the last insert");
                    }
                }
                3 => {
                    jc.invalidate_fk(fk);
                    for p in 0u64..4 {
                        last_insert.remove(&(p, fk));
                    }
                }
                _ => {
                    jc.invalidate_page(pid);
                    last_insert.retain(|(p, _), _| *p != page);
                }
            }
            // Budget invariant.
            for (p, b) in &budgets {
                prop_assert!(jc.used_bytes(PageId(*p)) <= *b,
                    "page {} over budget: {} > {}", p, jc.used_bytes(PageId(*p)), b);
            }
        }
    }
}

#[test]
fn join_cache_realistic_fk_join_flow() {
    // Simulate a small FK join: referencing rows on 3 pages join a
    // 10-row inner table; inner row 5 gets updated mid-stream.
    let mut jc = JoinCache::new();
    let inner: Vec<String> = (0..10).map(|i| format!("dim-row-{i}")).collect();
    for p in 0..3u64 {
        jc.set_budget(PageId(p), 256);
    }
    let mut inner_fetches = 0;
    fn join(jc: &mut JoinCache, fetches: &mut u32, page: u64, fk: u64, inner: &[String]) -> String {
        if let Some(hit) = jc.lookup(PageId(page), fk) {
            return String::from_utf8(hit).unwrap();
        }
        *fetches += 1;
        let row = inner[fk as usize].clone();
        jc.insert(PageId(page), fk, row.as_bytes());
        row
    }
    // First pass: all misses.
    for page in 0..3u64 {
        for fk in 0..10u64 {
            assert_eq!(join(&mut jc, &mut inner_fetches, page, fk, &inner), inner[fk as usize]);
        }
    }
    assert_eq!(inner_fetches, 30);
    // Second pass: all hits (no inner fetches).
    for page in 0..3u64 {
        for fk in 0..10u64 {
            assert_eq!(join(&mut jc, &mut inner_fetches, page, fk, &inner), inner[fk as usize]);
        }
    }
    assert_eq!(inner_fetches, 30, "second pass must be answered by the cache");
    // Update inner row 5 -> invalidate across pages -> refetches only it.
    let mut inner2 = inner.clone();
    inner2[5] = "dim-row-5-v2".to_string();
    jc.invalidate_fk(5);
    for page in 0..3u64 {
        for fk in 0..10u64 {
            assert_eq!(join(&mut jc, &mut inner_fetches, page, fk, &inner2), inner2[fk as usize]);
        }
    }
    assert_eq!(inner_fetches, 33, "only the invalidated fk refetches");
}
