//! # nbb-client — a pipelined client for the nbb wire protocol
//!
//! Keeps up to [`ClientConfig::depth`] requests in flight on one
//! connection. [`Client::submit`] assigns a request id, registers it in
//! the pending table, and writes the frame; a background reader thread
//! completes pending entries as responses arrive — **in whatever order
//! the server finishes them** — and [`Client::redeem`] blocks until a
//! specific ticket's response lands. Pipelining is therefore free at
//! the call site: submit K tickets, then wait on them in any order.
//!
//! Depth gating is the client-side half of the end-to-end backpressure
//! story: `submit` parks while `depth` requests are unresolved, so a
//! slow server throttles producers instead of growing an unbounded
//! pending table.
//!
//! ## Lock discipline
//!
//! Two locks, ranked in the workspace lattice's client band
//! ([`nbb_storage::lockrank::CLIENT_PENDING`],
//! [`nbb_storage::lockrank::CLIENT_WRITE`]): the pending table is
//! **always released before** the socket write. Holding it across
//! `write_all` could deadlock distributed backpressure: a full TCP send
//! buffer blocks the writer while the reader thread needs the pending
//! lock to drain responses and free the send window.

#![warn(missing_docs)]

use nbb_proto::{Framer, Request, RequestOp, Response, ResponseBody, WireServerStats};
use nbb_storage::lockrank;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure.
    Io(String),
    /// The peer sent bytes that do not decode as the protocol.
    Protocol(String),
    /// The server executed the request and reported an error
    /// ([`ResponseBody::Error`]), e.g. an unknown table name.
    Server(String),
    /// The connection is gone (EOF, reset, or a prior protocol error);
    /// the message says why.
    Closed(String),
    /// The server answered with a body of the wrong kind for the
    /// request (a typed-helper mismatch — indicates a server bug).
    UnexpectedBody,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "io error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Closed(m) => write!(f, "connection closed: {m}"),
            ClientError::UnexpectedBody => write!(f, "response body kind mismatched the request"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Result alias for client calls.
pub type Result<T> = std::result::Result<T, ClientError>;

/// Tuning knobs for [`Client::connect`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Max requests in flight before [`Client::submit`] parks.
    pub depth: usize,
    /// Frame payload cap enforced on inbound responses.
    pub max_frame: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig { depth: 16, max_frame: nbb_proto::DEFAULT_MAX_FRAME }
    }
}

/// A submitted request's claim ticket; redeem with [`Client::redeem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

impl Ticket {
    /// The request id this ticket rides on.
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// One pending entry: `None` while in flight, `Some` once the reader
/// thread delivered the response.
struct Pending {
    map: HashMap<u64, Option<Response>>,
    in_flight: usize,
    next_id: u64,
    closed: Option<String>,
}

struct Shared {
    pending: Mutex<Pending>,
    pending_cv: Condvar,
    write: Mutex<TcpStream>,
    depth: usize,
}

/// A pipelined connection to an `nbb-server`.
pub struct Client {
    shared: Arc<Shared>,
    stream: TcpStream,
    reader: Option<JoinHandle<()>>,
}

impl Client {
    /// Connects and spawns the response-reader thread.
    pub fn connect<A: ToSocketAddrs>(addr: A, cfg: ClientConfig) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError::Io(e.to_string()))?;
        // A depth-K pipeline writes K small frames back to back; with
        // Nagle on, frames after the first sit in the kernel buffer
        // until the server's (possibly delayed) ACK, serializing the
        // pipeline. Disable it so every submit hits the wire at once.
        stream.set_nodelay(true).map_err(|e| ClientError::Io(e.to_string()))?;
        let write_half = stream.try_clone().map_err(|e| ClientError::Io(e.to_string()))?;
        let read_half = stream.try_clone().map_err(|e| ClientError::Io(e.to_string()))?;

        let shared = Arc::new(Shared {
            pending: Mutex::with_rank(
                lockrank::CLIENT_PENDING,
                Pending { map: HashMap::new(), in_flight: 0, next_id: 1, closed: None },
            ),
            pending_cv: Condvar::new(),
            write: Mutex::with_rank(lockrank::CLIENT_WRITE, write_half),
            depth: cfg.depth.max(1),
        });

        let reader = {
            let s = Arc::clone(&shared);
            let max_frame = cfg.max_frame;
            std::thread::Builder::new()
                .name("nbb-client-read".to_string())
                .spawn(move || reader_loop(&s, read_half, max_frame))
                .map_err(|e| ClientError::Io(e.to_string()))?
        };

        Ok(Client { shared, stream, reader: Some(reader) })
    }

    /// Sends one request without waiting for its response. Parks while
    /// the configured depth of requests is already in flight.
    pub fn submit(&self, op: RequestOp) -> Result<Ticket> {
        let id = {
            let mut pending = self.shared.pending.lock();
            while pending.closed.is_none() && pending.in_flight >= self.shared.depth {
                self.shared.pending_cv.wait(&mut pending);
            }
            if let Some(why) = &pending.closed {
                return Err(ClientError::Closed(why.clone()));
            }
            let id = pending.next_id;
            pending.next_id += 1;
            pending.map.insert(id, None);
            pending.in_flight += 1;
            id
        };
        // The pending lock is released before this blocking write (see
        // the module docs for the deadlock it would otherwise create).
        let frame = nbb_proto::encode_request(&Request { id, op });
        let write_result = {
            let mut stream = self.shared.write.lock();
            stream.write_all(&frame)
        };
        if let Err(e) = write_result {
            let mut pending = self.shared.pending.lock();
            pending.map.remove(&id);
            pending.in_flight = pending.in_flight.saturating_sub(1);
            self.shared.pending_cv.notify_all();
            return Err(ClientError::Io(e.to_string()));
        }
        Ok(Ticket(id))
    }

    /// Blocks until `ticket`'s response arrives and returns its body.
    pub fn redeem(&self, ticket: Ticket) -> Result<ResponseBody> {
        let mut pending = self.shared.pending.lock();
        loop {
            match pending.map.get(&ticket.0) {
                Some(Some(_)) => {
                    // Completed: take it out of the table.
                    let resp = pending
                        .map
                        .remove(&ticket.0)
                        .flatten()
                        .ok_or(ClientError::UnexpectedBody)?;
                    return Ok(resp.body);
                }
                Some(None) => {
                    if let Some(why) = &pending.closed {
                        return Err(ClientError::Closed(why.clone()));
                    }
                    self.shared.pending_cv.wait(&mut pending);
                }
                None => {
                    return Err(ClientError::Closed(
                        "ticket unknown: already redeemed or never submitted".to_string(),
                    ))
                }
            }
        }
    }

    /// [`Client::submit`] + [`Client::redeem`] in one round trip.
    pub fn call(&self, op: RequestOp) -> Result<ResponseBody> {
        let t = self.submit(op)?;
        self.redeem(t)
    }

    /// Unwraps an ok body, promoting a wire error to [`ClientError::Server`].
    fn expect_ok(body: ResponseBody) -> Result<ResponseBody> {
        match body {
            ResponseBody::Error { message } => Err(ClientError::Server(message)),
            ok => Ok(ok),
        }
    }

    /// Batched point lookup: tuples per key, `None` when absent.
    pub fn get_many(
        &self,
        table: &str,
        index: &str,
        keys: Vec<Vec<u8>>,
    ) -> Result<Vec<Option<Vec<u8>>>> {
        let body = self.call(RequestOp::GetMany {
            table: table.to_string(),
            index: index.to_string(),
            keys,
        })?;
        match Self::expect_ok(body)? {
            ResponseBody::GetMany { rows } => Ok(rows),
            _ => Err(ClientError::UnexpectedBody),
        }
    }

    /// Batched heap insert; returns packed record ids.
    pub fn insert_many(&self, table: &str, tuples: Vec<Vec<u8>>) -> Result<Vec<u64>> {
        let body = self.call(RequestOp::InsertMany { table: table.to_string(), tuples })?;
        match Self::expect_ok(body)? {
            ResponseBody::InsertMany { rids } => Ok(rids),
            _ => Err(ClientError::UnexpectedBody),
        }
    }

    /// Batched upsert through `index`; returns packed record ids.
    pub fn put_many(&self, table: &str, index: &str, tuples: Vec<Vec<u8>>) -> Result<Vec<u64>> {
        let body = self.call(RequestOp::PutMany {
            table: table.to_string(),
            index: index.to_string(),
            tuples,
        })?;
        match Self::expect_ok(body)? {
            ResponseBody::PutMany { rids } => Ok(rids),
            _ => Err(ClientError::UnexpectedBody),
        }
    }

    /// One page of an ordered range scan; returns `(rows, more, resume)`.
    #[allow(clippy::type_complexity)]
    pub fn range(
        &self,
        table: &str,
        index: &str,
        lo: nbb_proto::WireBound,
        hi: nbb_proto::WireBound,
        limit: u32,
    ) -> Result<(Vec<(Vec<u8>, Vec<u8>)>, bool, Option<Vec<u8>>)> {
        let body = self.call(RequestOp::Range {
            table: table.to_string(),
            index: index.to_string(),
            lo,
            hi,
            limit,
        })?;
        match Self::expect_ok(body)? {
            ResponseBody::Range { rows, more, resume } => Ok((rows, more, resume)),
            _ => Err(ClientError::UnexpectedBody),
        }
    }

    /// The server's counter snapshot.
    pub fn stats(&self) -> Result<WireServerStats> {
        match Self::expect_ok(self.call(RequestOp::Stats)?)? {
            ResponseBody::Stats(s) => Ok(s),
            _ => Err(ClientError::UnexpectedBody),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// Completes pending entries as response frames arrive, in arrival
/// order (which is the server's completion order, not submit order).
fn reader_loop(shared: &Arc<Shared>, mut stream: TcpStream, max_frame: usize) {
    let mut framer = Framer::with_max(max_frame);
    let mut buf = vec![0u8; 64 * 1024];
    let why = 'read: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                break 'read match framer.eof_error() {
                    Some(e) => format!("eof mid-frame: {e}"),
                    None => "server closed the connection".to_string(),
                }
            }
            Ok(n) => n,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => break 'read format!("read failed: {e}"),
        };
        framer.extend(&buf[..n]);
        loop {
            match framer.next_payload() {
                Ok(None) => break,
                Ok(Some(payload)) => match nbb_proto::decode_response(&payload) {
                    Ok(resp) => {
                        let mut pending = shared.pending.lock();
                        if let Some(slot) = pending.map.get_mut(&resp.id) {
                            let was_in_flight = slot.is_none();
                            *slot = Some(resp);
                            if was_in_flight {
                                pending.in_flight = pending.in_flight.saturating_sub(1);
                            }
                            shared.pending_cv.notify_all();
                        }
                        // An unknown id is ignored: its waiter already
                        // gave up (or it is server misbehavior that
                        // harms nothing).
                    }
                    Err(e) => break 'read format!("undecodable response: {e}"),
                },
                Err(e) => break 'read format!("bad frame: {e}"),
            }
        }
    };
    let mut pending = shared.pending.lock();
    pending.closed = Some(why);
    shared.pending_cv.notify_all();
}
