//! Horizontal hot/cold clustering (§3.1).
//!
//! Two mechanisms, exactly as in Figure 3:
//!
//! * [`cluster_hot_tuples`] — *clustering*: relocate hot tuples to the
//!   tail of the same heap ("relocates hot tuples by deleting then
//!   appending them to the end of the table"), so they share pages
//!   instead of being scattered one per page. The 0%/54%/100% curves
//!   vary the fraction relocated.
//! * [`HotColdStore`] — *partitioning*: a separate heap (and hence a
//!   separate, much smaller index) for hot tuples — the `Partition` bar,
//!   whose 8.4× win comes from the hot index fitting in RAM.
//!
//! Relocation changes physical addresses; callers receive every move via
//! a callback to patch indexes, and a
//! [`ForwardingTable`](crate::forwarding::ForwardingTable) covers
//! stragglers.

use nbb_storage::error::Result;
use nbb_storage::heap::HeapFile;
use nbb_storage::rid::RecordId;

/// Which partition a tuple lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Temperature {
    /// Frequently accessed partition.
    Hot,
    /// Rarely accessed partition.
    Cold,
}

/// A tuple address qualified by partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// The partition.
    pub temp: Temperature,
    /// The address within that partition's heap.
    pub rid: RecordId,
}

/// Relocates `fraction` of the given hot tuples to the tail of `heap`.
///
/// Tuples are processed in the given order; for each move the callback
/// receives `(old_rid, new_rid)` so the caller can patch its indexes.
/// Returns the number of tuples moved.
pub fn cluster_hot_tuples(
    heap: &HeapFile,
    hot: &[RecordId],
    fraction: f64,
    mut on_move: impl FnMut(RecordId, RecordId),
) -> Result<usize> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
    let n = (hot.len() as f64 * fraction).round() as usize;
    for rid in hot.iter().take(n) {
        let new_rid = heap.relocate(*rid)?;
        on_move(*rid, new_rid);
    }
    Ok(n)
}

/// Two-heap hot/cold store: the paper's `Partition` configuration.
pub struct HotColdStore {
    hot: HeapFile,
    cold: HeapFile,
}

impl HotColdStore {
    /// Builds a store from two (possibly differently-provisioned) heaps.
    ///
    /// Giving the hot heap its own buffer pool models the paper's
    /// setup where the 1.4 GB hot index fits in RAM while the 27.1 GB
    /// full-table index does not.
    pub fn new(hot: HeapFile, cold: HeapFile) -> Self {
        HotColdStore { hot, cold }
    }

    /// The hot heap.
    pub fn hot(&self) -> &HeapFile {
        &self.hot
    }

    /// The cold heap.
    pub fn cold(&self) -> &HeapFile {
        &self.cold
    }

    fn heap(&self, temp: Temperature) -> &HeapFile {
        match temp {
            Temperature::Hot => &self.hot,
            Temperature::Cold => &self.cold,
        }
    }

    /// Inserts a tuple into the chosen partition.
    pub fn insert(&self, temp: Temperature, tuple: &[u8]) -> Result<Loc> {
        Ok(Loc { temp, rid: self.heap(temp).insert(tuple)? })
    }

    /// Reads a tuple.
    pub fn get(&self, loc: Loc) -> Result<Vec<u8>> {
        self.heap(loc.temp).get(loc.rid)
    }

    /// Deletes a tuple.
    pub fn delete(&self, loc: Loc) -> Result<()> {
        self.heap(loc.temp).delete(loc.rid)
    }

    /// Moves a tuple between partitions (delete + append), returning its
    /// new location. This is the §3.1 policy hook: "newly inserted
    /// revision tuples can replace the previously hot tuple for the same
    /// page, which is then moved to the cold partition".
    pub fn migrate(&self, loc: Loc) -> Result<Loc> {
        let bytes = self.get(loc)?;
        let target = match loc.temp {
            Temperature::Hot => Temperature::Cold,
            Temperature::Cold => Temperature::Hot,
        };
        let new_rid = self.heap(target).insert(&bytes)?;
        self.heap(loc.temp).delete(loc.rid)?;
        Ok(Loc { temp: target, rid: new_rid })
    }

    /// `(hot pages, cold pages)` — the size asymmetry driving Figure 3.
    pub fn page_counts(&self) -> (usize, usize) {
        (self.hot.page_count(), self.cold.page_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbb_storage::buffer::BufferPool;
    use nbb_storage::disk::{DiskManager, InMemoryDisk};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn heap() -> HeapFile {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(512));
        HeapFile::create(Arc::new(BufferPool::new(disk, 64))).unwrap()
    }

    #[test]
    fn clustering_moves_requested_fraction() {
        let h = heap();
        // 100 tuples; every 10th is hot (scattered).
        let mut rids = Vec::new();
        for i in 0..100u64 {
            rids.push(h.insert(&i.to_le_bytes()).unwrap());
        }
        let hot: Vec<_> = rids.iter().copied().step_by(10).collect();
        let mut moves = HashMap::new();
        let moved = cluster_hot_tuples(&h, &hot, 0.5, |o, n| {
            moves.insert(o, n);
        })
        .unwrap();
        assert_eq!(moved, 5);
        assert_eq!(moves.len(), 5);
        // Moved tuples readable at new location, dead at old.
        for (old, new) in &moves {
            assert!(h.get(*old).is_err());
            let v = h.get(*new).unwrap();
            assert_eq!(v.len(), 8);
        }
    }

    #[test]
    fn full_clustering_collocates_hot_tuples() {
        let h = heap();
        let mut rids = Vec::new();
        for i in 0..500u64 {
            rids.push(h.insert(&[i as u8; 40]).unwrap());
        }
        // 1 hot tuple per ~10 → scattered across many pages.
        let hot: Vec<_> = rids.iter().copied().step_by(10).collect();
        let pages_before: std::collections::HashSet<_> = hot.iter().map(|r| r.page).collect();
        let mut new_rids = Vec::new();
        cluster_hot_tuples(&h, &hot, 1.0, |_, n| new_rids.push(n)).unwrap();
        let pages_after: std::collections::HashSet<_> = new_rids.iter().map(|r| r.page).collect();
        assert!(
            pages_after.len() < pages_before.len() / 2,
            "clustering must densify: {} pages -> {}",
            pages_before.len(),
            pages_after.len()
        );
    }

    #[test]
    fn zero_fraction_moves_nothing() {
        let h = heap();
        let rid = h.insert(b"x").unwrap();
        let moved = cluster_hot_tuples(&h, &[rid], 0.0, |_, _| panic!("no moves")).unwrap();
        assert_eq!(moved, 0);
        assert_eq!(h.get(rid).unwrap(), b"x");
    }

    #[test]
    fn hot_cold_store_basic_flow() {
        let store = HotColdStore::new(heap(), heap());
        let cold_loc = store.insert(Temperature::Cold, b"old-revision").unwrap();
        let hot_loc = store.insert(Temperature::Hot, b"latest-revision").unwrap();
        assert_eq!(store.get(cold_loc).unwrap(), b"old-revision");
        assert_eq!(store.get(hot_loc).unwrap(), b"latest-revision");
    }

    #[test]
    fn migrate_swaps_partition() {
        let store = HotColdStore::new(heap(), heap());
        let loc = store.insert(Temperature::Hot, b"was-hot").unwrap();
        let moved = store.migrate(loc).unwrap();
        assert_eq!(moved.temp, Temperature::Cold);
        assert_eq!(store.get(moved).unwrap(), b"was-hot");
        assert!(store.get(loc).is_err(), "old location must be dead");
        // And back.
        let back = store.migrate(moved).unwrap();
        assert_eq!(back.temp, Temperature::Hot);
        assert_eq!(store.get(back).unwrap(), b"was-hot");
    }

    #[test]
    fn partition_keeps_hot_heap_small() {
        let store = HotColdStore::new(heap(), heap());
        for i in 0..1000u64 {
            store.insert(Temperature::Cold, &[i as u8; 32]).unwrap();
        }
        for i in 0..50u64 {
            store.insert(Temperature::Hot, &[i as u8; 32]).unwrap();
        }
        let (hot_pages, cold_pages) = store.page_counts();
        assert!(
            hot_pages * 10 < cold_pages,
            "hot partition should be tiny: {hot_pages} vs {cold_pages}"
        );
    }
}
